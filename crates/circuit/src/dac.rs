//! Binary-weighted D/A converter.
//!
//! The DNA chip's periphery contains "D/A-converters to provide the
//! required voltages for the electrochemical operation" (paper Section 2):
//! the working-electrode potential, the redox-cycling collector potential,
//! and the counter-electrode bias all come from on-chip DACs referenced to
//! the bandgap.

use crate::error::{require_in_range, require_positive, CircuitError};
use crate::noise::GaussianSampler;
use bsa_units::Volt;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Binary-weighted voltage DAC with per-element mismatch.
///
/// Output for code `d`: `v_lo + (v_hi − v_lo) · Σ w_k·b_k / Σ w_k` where the
/// weights `w_k = 2^k·(1 + ε_k)` carry static element errors, giving the
/// converter realistic INL/DNL.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dac {
    bits: u8,
    v_lo: Volt,
    v_hi: Volt,
    weights: Vec<f64>,
}

impl Dac {
    /// Creates an ideal DAC with `bits` resolution over `[v_lo, v_hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if `bits` is 0 or above 24, or the range is
    /// empty.
    pub fn new(bits: u8, v_lo: Volt, v_hi: Volt) -> Result<Self, CircuitError> {
        require_in_range("dac bits", bits as f64, 1.0, 24.0)?;
        require_positive("dac range", (v_hi - v_lo).value())?;
        let weights = (0..bits).map(|k| (1u64 << k) as f64).collect();
        Ok(Self {
            bits,
            v_lo,
            v_hi,
            weights,
        })
    }

    /// Applies Gaussian element mismatch with relative sigma
    /// `sigma_rel/√(weight)` per element (larger elements match better, as
    /// for unit-element layouts).
    #[must_use]
    pub fn with_element_mismatch<R: Rng>(mut self, sigma_rel: f64, rng: &mut R) -> Self {
        let mut g = GaussianSampler::new();
        for (k, w) in self.weights.iter_mut().enumerate() {
            let ideal = (1u64 << k) as f64;
            let sigma = sigma_rel / ideal.sqrt();
            *w = ideal * (1.0 + sigma * g.sample(rng));
        }
        self
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of codes, 2^bits.
    pub fn codes(&self) -> u32 {
        1u32 << self.bits
    }

    /// Ideal LSB size.
    pub fn lsb(&self) -> Volt {
        (self.v_hi - self.v_lo) / (self.codes() - 1) as f64
    }

    /// Output voltage for a code.
    ///
    /// # Panics
    ///
    /// Panics if `code >= 2^bits`.
    pub fn output(&self, code: u32) -> Volt {
        assert!(code < self.codes(), "DAC code {code} out of range");
        let total: f64 = self.weights.iter().sum();
        let mut acc = 0.0;
        for (k, w) in self.weights.iter().enumerate() {
            if code & (1 << k) != 0 {
                acc += w;
            }
        }
        self.v_lo + (self.v_hi - self.v_lo) * (acc / total)
    }

    /// Code whose output is closest to the requested voltage.
    pub fn code_for(&self, v: Volt) -> u32 {
        let ideal = ((v - self.v_lo) / self.lsb()).round();
        (ideal.max(0.0) as u32).min(self.codes() - 1)
    }

    /// Integral nonlinearity per code, in LSB.
    pub fn inl(&self) -> Vec<f64> {
        let lsb = self.lsb().value();
        (0..self.codes())
            .map(|c| {
                let ideal = self.v_lo.value() + lsb * c as f64;
                (self.output(c).value() - ideal) / lsb
            })
            .collect()
    }

    /// Differential nonlinearity per code transition, in LSB.
    pub fn dnl(&self) -> Vec<f64> {
        let lsb = self.lsb().value();
        (1..self.codes())
            .map(|c| (self.output(c).value() - self.output(c - 1).value()) / lsb - 1.0)
            .collect()
    }

    /// Worst-case |INL| in LSB.
    pub fn max_inl(&self) -> f64 {
        self.inl().iter().fold(0.0, |m, x| m.max(x.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_dac_endpoints() {
        let d = Dac::new(8, Volt::ZERO, Volt::new(2.55)).unwrap();
        assert_eq!(d.output(0), Volt::ZERO);
        assert!((d.output(255) - Volt::new(2.55)).abs().value() < 1e-12);
    }

    #[test]
    fn ideal_dac_is_monotone_with_uniform_steps() {
        let d = Dac::new(6, Volt::ZERO, Volt::new(1.0)).unwrap();
        let dnl = d.dnl();
        assert!(dnl.iter().all(|x| x.abs() < 1e-9));
        assert!(d.max_inl() < 1e-9);
    }

    #[test]
    fn code_for_inverts_output() {
        let d = Dac::new(10, Volt::new(0.5), Volt::new(4.5)).unwrap();
        for code in [0u32, 17, 511, 1023] {
            let v = d.output(code);
            assert_eq!(d.code_for(v), code);
        }
    }

    #[test]
    fn code_for_clamps() {
        let d = Dac::new(8, Volt::new(1.0), Volt::new(2.0)).unwrap();
        assert_eq!(d.code_for(Volt::ZERO), 0);
        assert_eq!(d.code_for(Volt::new(5.0)), 255);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn output_rejects_bad_code() {
        let d = Dac::new(4, Volt::ZERO, Volt::new(1.0)).unwrap();
        d.output(16);
    }

    #[test]
    fn mismatch_creates_bounded_inl() {
        let mut rng = SmallRng::seed_from_u64(21);
        let d = Dac::new(8, Volt::ZERO, Volt::new(2.5))
            .unwrap()
            .with_element_mismatch(0.01, &mut rng);
        let inl = d.max_inl();
        assert!(inl > 0.0, "mismatch must produce nonzero INL");
        assert!(
            inl < 4.0,
            "1 % elements keep INL within a few LSB, got {inl}"
        );
    }

    #[test]
    fn mismatch_is_static_per_instance() {
        let mut rng = SmallRng::seed_from_u64(22);
        let d = Dac::new(8, Volt::ZERO, Volt::new(2.5))
            .unwrap()
            .with_element_mismatch(0.01, &mut rng);
        assert_eq!(d.output(100), d.output(100));
    }

    #[test]
    fn rejects_invalid_construction() {
        assert!(Dac::new(0, Volt::ZERO, Volt::new(1.0)).is_err());
        assert!(Dac::new(25, Volt::ZERO, Volt::new(1.0)).is_err());
        assert!(Dac::new(8, Volt::new(1.0), Volt::new(1.0)).is_err());
        assert!(Dac::new(8, Volt::new(2.0), Volt::new(1.0)).is_err());
    }

    #[test]
    fn lsb_matches_range() {
        let d = Dac::new(8, Volt::ZERO, Volt::new(2.55)).unwrap();
        assert!((d.lsb().as_milli() - 10.0).abs() < 1e-9);
    }
}
