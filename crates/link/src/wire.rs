//! Panic-free little-endian cursor primitives used by the message codec.
//!
//! `Reader` never indexes past the buffer: every access goes through
//! `take`, which returns [`ProtocolError::Truncated`] instead of slicing
//! out of bounds. `Writer` is a thin `Vec<u8>` builder.

use crate::error::ProtocolError;

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let truncated = ProtocolError::Truncated {
            needed: n,
            available: self.remaining(),
        };
        let end = self.pos.checked_add(n).ok_or(truncated)?;
        match self.buf.get(self.pos..end) {
            Some(slice) => {
                self.pos = end;
                Ok(slice)
            }
            None => Err(ProtocolError::Truncated {
                needed: n,
                available: self.remaining(),
            }),
        }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ProtocolError> {
        let bytes = self.take(1)?;
        bytes.first().copied().ok_or(ProtocolError::Truncated {
            needed: 1,
            available: 0,
        })
    }

    pub(crate) fn u16(&mut self) -> Result<u16, ProtocolError> {
        let bytes = self.take(2)?;
        let arr: [u8; 2] = bytes
            .try_into()
            .map_err(|_| ProtocolError::InvalidValue { what: "u16" })?;
        Ok(u16::from_le_bytes(arr))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ProtocolError> {
        let bytes = self.take(4)?;
        let arr: [u8; 4] = bytes
            .try_into()
            .map_err(|_| ProtocolError::InvalidValue { what: "u32" })?;
        Ok(u32::from_le_bytes(arr))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ProtocolError> {
        let bytes = self.take(8)?;
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| ProtocolError::InvalidValue { what: "u64" })?;
        Ok(u64::from_le_bytes(arr))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn bool(&mut self) -> Result<bool, ProtocolError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ProtocolError::InvalidValue { what: "bool" }),
        }
    }

    /// Length-prefixed UTF-8 string (u32 length, then bytes).
    pub(crate) fn string(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    /// Reads a u32 element count and validates it against the bytes left
    /// in the buffer, so a corrupted count cannot trigger a huge
    /// allocation. `min_elem_bytes` is the smallest possible encoding of
    /// one element (use 1 for variable-size elements).
    pub(crate) fn count(
        &mut self,
        min_elem_bytes: usize,
        what: &'static str,
    ) -> Result<usize, ProtocolError> {
        let n = self.u32()? as usize;
        let floor = n.saturating_mul(min_elem_bytes.max(1));
        if floor > self.remaining() {
            return Err(ProtocolError::InvalidValue { what });
        }
        Ok(n)
    }

    /// Errors with [`ProtocolError::TrailingBytes`] if input remains.
    pub(crate) fn finish(&self) -> Result<(), ProtocolError> {
        match self.remaining() {
            0 => Ok(()),
            count => Err(ProtocolError::TrailingBytes { count }),
        }
    }
}

#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    pub(crate) fn string(&mut self, s: &str) {
        // Strings on this protocol are probe sequences and status text;
        // a >4 GiB string is a caller bug, not a wire condition.
        debug_assert!(s.len() <= u32::MAX as usize);
        let bytes = s.as_bytes();
        let len = u32::try_from(bytes.len()).unwrap_or(u32::MAX) as usize;
        self.u32(len as u32);
        self.buf
            .extend_from_slice(bytes.get(..len).unwrap_or(bytes));
    }

    pub(crate) fn count(&mut self, n: usize) {
        self.u32(u32::try_from(n).unwrap_or(u32::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u16(0x1234);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.f64(-2.5);
        w.bool(true);
        w.string("ACGT");
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.f64().unwrap(), -2.5);
        assert!(r.bool().unwrap());
        assert_eq!(r.string().unwrap(), "ACGT");
        assert!(r.finish().is_ok());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut r = Reader::new(&[0x01, 0x02]);
        assert!(matches!(r.u32(), Err(ProtocolError::Truncated { .. })));
    }

    #[test]
    fn oversized_count_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // claims 4 billion elements in an empty buffer
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.count(8, "samples"),
            Err(ProtocolError::InvalidValue { .. })
        ));
    }

    #[test]
    fn bad_bool_rejected() {
        let mut r = Reader::new(&[7]);
        assert!(matches!(r.bool(), Err(ProtocolError::InvalidValue { .. })));
    }

    #[test]
    fn trailing_bytes_reported() {
        let r = Reader::new(&[1, 2, 3]);
        assert!(matches!(
            r.finish(),
            Err(ProtocolError::TrailingBytes { count: 3 })
        ));
    }
}
