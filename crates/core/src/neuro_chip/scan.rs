//! The parallel, allocation-free scan engine behind [`NeuroChip::record`].
//!
//! The paper's readout hardware is parallel by construction: the 128
//! columns leave the chip over 16 independent output channels (Fig. 6),
//! each serving 8 columns through its own 8-to-1 multiplexer and gain
//! chain. This module exploits exactly that structure:
//!
//! * **Per-channel scan plans** ([`ScanPlan`]) precompute everything that
//!   is loop-invariant across frames — pixel indices, electrode positions,
//!   within-frame sample-time offsets, clip-limit fault lookups and
//!   lost-channel flags — so the per-sample inner loop touches no
//!   geometry or fault tables.
//! * **Deterministic per-channel RNG streams**
//!   ([`channel_stream_seed`](crate::scan::channel_stream_seed)): each
//!   channel chain owns a `SmallRng` seeded from the die seed and its
//!   channel index, replacing the single shared frame RNG that serialized
//!   the old scan. Output is therefore identical for any thread count,
//!   including fully serial execution.
//! * **Channel fan-out** over the vendored rayon subset (`parallel`
//!   feature, on by default): one scoped task per channel, work-stolen by
//!   the pool, so no worker idles while another drags a quantized group.
//!   A lost multiplexer channel short-circuits to a `fill(0.0)` without
//!   evaluating a single pixel or culture sample.
//! * **A reusable frame arena** ([`FrameArena`](crate::scan::FrameArena)):
//!   frame buffers are acquired from a pool and recycled from finished
//!   [`Recording`]s, so a steady-state record loop performs zero
//!   per-frame heap allocations.
//!
//! [`NeuroChip::record`]: super::NeuroChip::record
//! [`Recording`]: super::Recording

use super::chain::ChannelChain;
use super::pixel::NeuroPixel;
use crate::array::{ArrayGeometry, PixelAddress};
use bsa_faults::CompiledFaults;
use bsa_neuro::culture::Culture;
use bsa_units::{Meter, Seconds, Volt};
use rand::rngs::SmallRng;

/// Applies an injected gain-chain clipping limit to one output sample.
pub(super) fn clipped(limit: Option<Volt>, v: Volt) -> f64 {
    match limit {
        Some(l) => v.value().clamp(-l.value().abs(), l.value().abs()),
        None => v.value(),
    }
}

/// Everything the inner loop needs about one pixel, precomputed once.
#[derive(Debug, Clone, Copy)]
pub(super) struct PlanEntry {
    /// Row-major pixel index into the pixel array and the frame buffer.
    pub idx: usize,
    /// Electrode x position.
    pub x: Meter,
    /// Electrode y position.
    pub y: Meter,
    /// Sample-time offset from the frame start (rolling shutter + mux
    /// slot), in seconds.
    pub dt: f64,
    /// Injected gain-chain clip limit of this pixel, if any.
    pub clip: Option<Volt>,
}

/// One channel's precomputed scan order: its column stripe across all
/// rows, in (row, mux-slot) order.
#[derive(Debug, Clone)]
pub(super) struct ChannelPlan {
    /// `true` if the multiplexer channel is lost to an injected fault; the
    /// scan then writes zeros without evaluating pixels or the culture.
    pub lost: bool,
    /// `rows × columns_per_channel` entries in scan order.
    pub entries: Vec<PlanEntry>,
}

/// Precomputed per-channel scan plans for a die (rebuilt when faults are
/// injected).
#[derive(Debug, Clone)]
pub(super) struct ScanPlan {
    pub channels: Vec<ChannelPlan>,
    pub rows: usize,
    pub cols_per_channel: usize,
}

impl ScanPlan {
    /// Builds the plan from the die's geometry, timing, faults and pixels.
    pub fn build(
        geometry: ArrayGeometry,
        row_period: Seconds,
        pixel_dwell: Seconds,
        channels: usize,
        faults: &CompiledFaults,
        pixels: &[NeuroPixel],
    ) -> Self {
        let rows = geometry.rows();
        let cols = geometry.cols();
        let cpc = cols / channels;
        let plans = (0..channels)
            .map(|ch| {
                let mut entries = Vec::with_capacity(rows * cpc);
                for row in 0..rows {
                    for slot in 0..cpc {
                        let col = ch * cpc + slot;
                        let idx = row * cols + col;
                        let (x, y) = geometry.position_of(PixelAddress::new(row, col));
                        entries.push(PlanEntry {
                            idx,
                            x,
                            y,
                            dt: row as f64 * row_period.value() + slot as f64 * pixel_dwell.value(),
                            clip: pixels[idx].faults().clip_limit,
                        });
                    }
                }
                ChannelPlan {
                    lost: faults.channel_lost(ch),
                    entries,
                }
            })
            .collect();
        Self {
            channels: plans,
            rows,
            cols_per_channel: cpc,
        }
    }
}

/// Scans one channel's column stripe for a chunk of frames.
///
/// `out` is channel-major: `frame_starts.len() × rows × cols_per_channel`
/// samples, frame-major then scan order. A lost channel writes zeros and
/// returns immediately — no pixel read, no culture evaluation, no RNG
/// draw (its stream stays aligned because the stream is per-channel and
/// never observed elsewhere).
#[allow(clippy::too_many_arguments)]
fn scan_channel(
    plan: &ChannelPlan,
    chain: &mut ChannelChain,
    rng: &mut SmallRng,
    pixels: &[NeuroPixel],
    culture: &Culture,
    dwell: Seconds,
    frame_starts: &[f64],
    rows: usize,
    cols_per_channel: usize,
    out: &mut [f64],
) {
    if plan.lost {
        out.fill(0.0);
        return;
    }
    let frame_len = rows * cols_per_channel;
    for (fi, &fs) in frame_starts.iter().enumerate() {
        let frame_out = &mut out[fi * frame_len..(fi + 1) * frame_len];
        let mut k = 0usize;
        for _row in 0..rows {
            chain.reset_settling();
            for _slot in 0..cols_per_channel {
                let e = &plan.entries[k];
                let t = Seconds::new(fs + e.dt);
                let v_cleft = culture.cleft_voltage_at(e.x, e.y, t);
                let i_diff = pixels[e.idx].read(v_cleft, t);
                let v = chain.process_sample(i_diff, dwell, rng);
                frame_out[k] = clipped(e.clip, v);
                k += 1;
            }
        }
    }
}

/// Scans a chunk of frames across all channels, fanning the channels out
/// over `threads` workers. `stripe` must hold
/// `channels × frame_starts.len() × rows × cols_per_channel` samples and
/// is filled channel-major.
#[allow(clippy::too_many_arguments)]
pub(super) fn scan_chunk(
    plan: &ScanPlan,
    pixels: &[NeuroPixel],
    channels: &mut [ChannelChain],
    rngs: &mut [SmallRng],
    culture: &Culture,
    dwell: Seconds,
    frame_starts: &[f64],
    stripe: &mut [f64],
    threads: usize,
) {
    let rows = plan.rows;
    let cpc = plan.cols_per_channel;
    let block = frame_starts.len() * rows * cpc;
    debug_assert_eq!(stripe.len(), channels.len() * block);

    let mut work: Vec<(&ChannelPlan, &mut ChannelChain, &mut SmallRng, &mut [f64])> = plan
        .channels
        .iter()
        .zip(channels.iter_mut())
        .zip(rngs.iter_mut())
        .zip(stripe.chunks_mut(block))
        .map(|(((cp, chain), rng), out)| (cp, chain, rng, out))
        .collect();

    if threads <= 1 {
        for (cp, chain, rng, out) in &mut work {
            scan_channel(
                cp,
                chain,
                rng,
                pixels,
                culture,
                dwell,
                frame_starts,
                rows,
                cpc,
                out,
            );
        }
        return;
    }

    // One scoped task per channel, work-stolen by the pool. The previous
    // contiguous grouping (`chunks_mut(channels/threads)`) quantized badly —
    // 16 channels over 3 workers ran as 6+6+4, capping the speedup at 2.67×
    // and collapsing to ~1× whenever the pool was smaller than the group
    // count assumed — whereas per-channel tasks keep every worker busy
    // until the tail.
    #[cfg(feature = "parallel")]
    rayon::scope(|s| {
        for (cp, chain, rng, out) in work {
            s.spawn(move |_| {
                scan_channel(
                    cp,
                    chain,
                    rng,
                    pixels,
                    culture,
                    dwell,
                    frame_starts,
                    rows,
                    cpc,
                    out,
                );
            });
        }
    });
    #[cfg(not(feature = "parallel"))]
    for (cp, chain, rng, out) in &mut work {
        scan_channel(
            cp,
            chain,
            rng,
            pixels,
            culture,
            dwell,
            frame_starts,
            rows,
            cpc,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuro_chip::chain::ChainConfig;
    use rand::SeedableRng;

    #[test]
    fn lost_channel_does_zero_pixel_and_culture_work() {
        // The plan's entries point at pixel indices that do not exist: if
        // the scan evaluated any pixel or culture sample for a lost
        // channel, it would index out of bounds and panic. It must instead
        // short-circuit to a zero fill.
        let plan = ChannelPlan {
            lost: true,
            entries: vec![PlanEntry {
                idx: usize::MAX, // would panic if ever dereferenced
                x: Meter::ZERO,
                y: Meter::ZERO,
                dt: 0.0,
                clip: None,
            }],
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let mut chain = ChannelChain::sample(ChainConfig::default(), &mut rng);
        let culture = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
        let no_pixels: Vec<NeuroPixel> = Vec::new();
        let mut out = vec![42.0; 4];
        scan_channel(
            &plan,
            &mut chain,
            &mut rng,
            &no_pixels,
            &culture,
            Seconds::from_nano(488.0),
            &[0.0, 1.0],
            1,
            2,
            &mut out,
        );
        assert_eq!(out, vec![0.0; 4], "lost channel must read flat zero");
    }
}
