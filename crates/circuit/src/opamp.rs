//! Single-pole operational amplifier model.
//!
//! Used for the electrode-potential regulation loop of the DNA pixel
//! (paper Fig. 3: "regulation loop" around the sensor electrode) and the
//! difference-current nulling loop A/M3/M4 of the neural pixel (Fig. 6).

use crate::error::{require_positive, CircuitError};
use bsa_units::{Hertz, Seconds, Volt};
use serde::{Deserialize, Serialize};

/// Behavioural op-amp: finite DC gain, single-pole dynamics set by the
/// gain–bandwidth product, slew-rate limiting, output clamping and input
/// offset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpAmp {
    dc_gain: f64,
    gbw: Hertz,
    slew_rate_v_per_s: f64,
    v_out_min: Volt,
    v_out_max: Volt,
    offset: Volt,
    v_out: Volt,
}

/// Builder-style configuration for [`OpAmp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpAmpSpec {
    /// Open-loop DC gain (V/V).
    pub dc_gain: f64,
    /// Gain–bandwidth product.
    pub gbw: Hertz,
    /// Slew rate in V/s.
    pub slew_rate_v_per_s: f64,
    /// Lower output rail.
    pub v_out_min: Volt,
    /// Upper output rail.
    pub v_out_max: Volt,
    /// Input-referred offset voltage.
    pub offset: Volt,
}

impl Default for OpAmpSpec {
    /// A modest 5 V-rail amplifier: 80 dB gain, 10 MHz GBW, 5 V/µs slew.
    fn default() -> Self {
        Self {
            dc_gain: 10_000.0,
            gbw: Hertz::from_mega(10.0),
            slew_rate_v_per_s: 5e6,
            v_out_min: Volt::ZERO,
            v_out_max: Volt::new(5.0),
            offset: Volt::ZERO,
        }
    }
}

impl OpAmp {
    /// Creates an op-amp from its specification.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if gain, GBW or slew rate are not positive,
    /// or if the output rails are inverted.
    pub fn new(spec: OpAmpSpec) -> Result<Self, CircuitError> {
        require_positive("dc gain", spec.dc_gain)?;
        require_positive("gain-bandwidth product", spec.gbw.value())?;
        require_positive("slew rate", spec.slew_rate_v_per_s)?;
        if spec.v_out_min >= spec.v_out_max {
            return Err(CircuitError::OutOfRange {
                name: "output rails",
                value: spec.v_out_min.value(),
                min: f64::NEG_INFINITY,
                max: spec.v_out_max.value(),
            });
        }
        let start = Volt::new(0.5 * (spec.v_out_min.value() + spec.v_out_max.value()));
        Ok(Self {
            dc_gain: spec.dc_gain,
            gbw: spec.gbw,
            slew_rate_v_per_s: spec.slew_rate_v_per_s,
            v_out_min: spec.v_out_min,
            v_out_max: spec.v_out_max,
            offset: spec.offset,
            v_out: start,
        })
    }

    /// Present output voltage.
    pub fn output(&self) -> Volt {
        self.v_out
    }

    /// Forces the output state (e.g. at power-up).
    pub fn set_output(&mut self, v: Volt) {
        self.v_out = v.clamp(self.v_out_min, self.v_out_max);
    }

    /// The input-referred offset.
    pub fn offset(&self) -> Volt {
        self.offset
    }

    /// Advances the amplifier by `dt` with the given differential input,
    /// returning the new output voltage.
    ///
    /// The open-loop dynamics are first-order with time constant
    /// τ = A₀ / (2π·GBW); the target A₀·(v_p − v_n + offset) is approached
    /// exponentially, limited by the slew rate and clamped to the rails.
    pub fn step(&mut self, v_plus: Volt, v_minus: Volt, dt: Seconds) -> Volt {
        let vid = v_plus - v_minus + self.offset;
        // The unclamped small-signal target A₀·vid: clamping happens at the
        // output stage, not here, so a large differential input produces
        // the full 2π·GBW·vid ramp rate and can hit the slew limit.
        let target = self.dc_gain * vid.value();
        let tau = self.dc_gain / (2.0 * std::f64::consts::PI * self.gbw.value());
        let alpha = 1.0 - (-dt.value() / tau).exp();
        let mut dv = (target - self.v_out.value()) * alpha;
        // Slew limiting.
        let max_dv = self.slew_rate_v_per_s * dt.value();
        dv = dv.clamp(-max_dv, max_dv);
        self.v_out = Volt::new(
            (self.v_out.value() + dv).clamp(self.v_out_min.value(), self.v_out_max.value()),
        );
        self.v_out
    }

    /// Ideal closed-loop settled output for a follower-style loop where the
    /// amplifier drives a plant with feedback factor `beta`: the steady
    /// state of `step` iterated to convergence, without simulating.
    ///
    /// v_out = A·(v_in − β·v_out + offset) ⇒
    /// v_out = A·(v_in + offset) / (1 + A·β), clamped to the rails.
    pub fn settled_output(&self, v_in: Volt, beta: f64) -> Volt {
        let a = self.dc_gain;
        let v = a * (v_in.value() + self.offset.value()) / (1.0 + a * beta);
        Volt::new(v.clamp(self.v_out_min.value(), self.v_out_max.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amp() -> OpAmp {
        OpAmp::new(OpAmpSpec::default()).unwrap()
    }

    #[test]
    fn rejects_inverted_rails() {
        let spec = OpAmpSpec {
            v_out_min: Volt::new(5.0),
            v_out_max: Volt::new(0.0),
            ..OpAmpSpec::default()
        };
        assert!(OpAmp::new(spec).is_err());
    }

    #[test]
    fn unity_follower_settles_to_input() {
        // v_minus tied to v_out: classic voltage follower.
        let mut a = amp();
        let v_in = Volt::new(1.7);
        let dt = Seconds::from_nano(10.0);
        for _ in 0..100_000 {
            let out = a.output();
            a.step(v_in, out, dt);
        }
        let err = (a.output() - v_in).abs();
        // Finite gain error ≈ v_in / A0.
        assert!(err.value() < 2.0 * v_in.value() / 10_000.0, "err = {err}");
    }

    #[test]
    fn settled_output_matches_iterated_follower() {
        let mut a = amp();
        let v_in = Volt::new(2.2);
        let analytic = a.settled_output(v_in, 1.0);
        let dt = Seconds::from_nano(10.0);
        for _ in 0..100_000 {
            let out = a.output();
            a.step(v_in, out, dt);
        }
        assert!((a.output() - analytic).abs().value() < 1e-3);
    }

    #[test]
    fn slew_rate_limits_large_steps() {
        let mut a = amp();
        a.set_output(Volt::ZERO);
        let dt = Seconds::from_micro(0.1);
        // Huge differential input: output must rise at the slew rate.
        a.step(Volt::new(5.0), Volt::ZERO, dt);
        let dv = a.output().value();
        assert!((dv - 5e6 * 0.1e-6).abs() < 1e-9, "dv = {dv}");
    }

    #[test]
    fn output_clamps_to_rails() {
        let mut a = amp();
        let dt = Seconds::from_micro(10.0);
        for _ in 0..1000 {
            a.step(Volt::new(5.0), Volt::ZERO, dt);
        }
        assert!(a.output() <= Volt::new(5.0));
        for _ in 0..1000 {
            a.step(Volt::ZERO, Volt::new(5.0), dt);
        }
        assert!(a.output() >= Volt::ZERO);
    }

    #[test]
    fn offset_appears_at_output_of_follower() {
        let spec = OpAmpSpec {
            offset: Volt::from_milli(5.0),
            ..OpAmpSpec::default()
        };
        let a = OpAmp::new(spec).unwrap();
        let out = a.settled_output(Volt::new(1.0), 1.0);
        assert!((out.value() - 1.005).abs() < 1e-3, "out = {out}");
    }

    #[test]
    fn bandwidth_sets_settling_speed() {
        // A 10× larger GBW settles in ~10× fewer steps to the same error.
        let steps_to_settle = |gbw: Hertz| -> usize {
            let mut a = OpAmp::new(OpAmpSpec {
                gbw,
                slew_rate_v_per_s: 1e12,
                ..OpAmpSpec::default()
            })
            .unwrap();
            a.set_output(Volt::ZERO);
            let dt = Seconds::from_nano(1.0);
            let target = Volt::new(1.0);
            for k in 0..10_000_000 {
                let out = a.output();
                a.step(target, out, dt);
                if (a.output() - target).abs().value() < 1e-3 {
                    return k;
                }
            }
            usize::MAX
        };
        let slow = steps_to_settle(Hertz::from_mega(1.0));
        let fast = steps_to_settle(Hertz::from_mega(10.0));
        let ratio = slow as f64 / fast as f64;
        assert!(ratio > 5.0 && ratio < 20.0, "ratio = {ratio}");
    }
}
