//! Fault-injection recovery scenarios: seeded, replayable end-to-end
//! drills shared by the integration tests and the `exp_control`
//! experiment binary.
//!
//! Each scenario attaches a chip through a live station, captures a
//! pre-fault baseline, injects an [`InjectionPlan`], and lets the
//! [`Controller`] recover. The scenario seed fixes the chip RNG, the
//! fault placement, and the policy's reattach seeds, so two runs of the
//! same scenario produce bit-identical [`RecoveryTrace`]s.

use crate::classifier::{ClassifierConfig, StateClassifier};
use crate::controller::{ChipTarget, Controller, RetryPolicy};
use crate::error::ControlError;
use crate::link::{ControlLink, StationLink};
use crate::policy::{PolicyConfig, PolicyEngine};
use crate::trace::RecoveryTrace;
use bsa_faults::{FaultKind, InjectionPlan, PlanTarget};
use bsa_link::{
    CultureSpec, DnaChipSpec, FaultEntrySpec, FaultKindSpec, FaultPlanSpec, FaultTargetSpec,
    NeuroChipSpec,
};
use bsa_station::{ClientConfig, StationClient};
use bsa_units::Volt;
use std::net::SocketAddr;
use std::time::Duration;

/// Converts an [`InjectionPlan`] into its wire form for
/// `InjectFaults`. Fault kinds the wire protocol does not model are
/// skipped (none exist today; the arm guards against future kinds).
#[must_use]
pub fn plan_to_spec(plan: &InjectionPlan) -> FaultPlanSpec {
    let entries = plan
        .entries()
        .filter_map(|(target, kind)| {
            let target = match target {
                PlanTarget::Pixel { row, col } => FaultTargetSpec::Pixel {
                    row: row as u16,
                    col: col as u16,
                },
                PlanTarget::ArrayWide { density } => FaultTargetSpec::ArrayWide { density },
                PlanTarget::Global => FaultTargetSpec::Global,
            };
            let kind = match kind {
                FaultKind::DeadPixel => FaultKindSpec::DeadPixel,
                FaultKind::StuckCount { count } => FaultKindSpec::StuckCount { count },
                FaultKind::LeakyElectrode { leakage } => FaultKindSpec::LeakyElectrode {
                    leakage_a: leakage.value(),
                },
                FaultKind::ComparatorDrift { offset } => FaultKindSpec::ComparatorDrift {
                    offset_v: offset.value(),
                },
                FaultKind::ComparatorStuck { high } => FaultKindSpec::ComparatorStuck { high },
                FaultKind::DacSaturation { limit } => FaultKindSpec::DacSaturation { limit },
                FaultKind::GainClipping { limit } => FaultKindSpec::GainClipping {
                    limit_v: limit.value(),
                },
                FaultKind::ChannelLoss { channel } => FaultKindSpec::ChannelLoss {
                    channel: channel as u32,
                },
                FaultKind::SerialBitErrors { rate } => FaultKindSpec::SerialBitErrors { rate },
                _ => return None,
            };
            Some(FaultEntrySpec { target, kind })
        })
        .collect();
    FaultPlanSpec {
        seed: plan.seed(),
        entries,
    }
}

/// Outcome of one scenario run, with its replayable trace.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Whether yield crossed the recovery target in budget.
    pub recovered: bool,
    /// Observation ticks used.
    pub ticks: u32,
    /// Baseline (pre-fault) yield in permille.
    pub pre_yield_permille: u32,
    /// Yield at exit in permille.
    pub final_yield_permille: u32,
    /// The full decision log.
    pub trace: RecoveryTrace,
}

/// Observation budget per scenario: `TICKS * FRAMES_PER_TICK` stays
/// within the issue's 32-frame recovery window.
const MAX_TICKS: u32 = 4;
const FRAMES_PER_TICK: u32 = 8;

fn neuro_target(seed: u64) -> ChipTarget {
    ChipTarget::Neuro {
        spec: NeuroChipSpec {
            rows: 32,
            cols: 32,
            channels: 8,
            seed,
            frame_rate_hz: 2_000.0,
        },
        culture: CultureSpec {
            seed: 77,
            neuron_count: 24,
            spike_duration_s: 0.1,
        },
        frames_per_tick: FRAMES_PER_TICK,
    }
}

fn dna_target(seed: u64) -> ChipTarget {
    // Deterministic probe layout: every spot gets a short synthetic
    // sequence; no analytes, so counts are pure baseline activity.
    let probes: Vec<String> = (0..128)
        .map(|i| match i % 4 {
            0 => "ACGTACGT".to_string(),
            1 => "TTGGCCAA".to_string(),
            2 => "GATTACAG".to_string(),
            _ => "CCGGTTAA".to_string(),
        })
        .collect();
    ChipTarget::Dna {
        spec: DnaChipSpec {
            rows: 8,
            cols: 16,
            seed,
            frame_time_s: 0.0,
        },
        probes,
        targets: Vec::new(),
    }
}

fn connect(addr: SocketAddr, identity: &str) -> Result<StationLink, ControlError> {
    let config = ClientConfig {
        connect_timeout: Some(Duration::from_secs(5)),
        io_timeout: Some(Duration::from_secs(30)),
    };
    let client = StationClient::connect_with(addr, identity, &config)?;
    Ok(StationLink::new(client))
}

fn run_scenario(
    name: &str,
    link: StationLink,
    target: ChipTarget,
    seed: u64,
    plan: &InjectionPlan,
) -> Result<ScenarioReport, ControlError> {
    let classifier = StateClassifier::new(ClassifierConfig::default());
    // Headroom over the default mask budget: at 15% dead density the
    // candidate set (true dead + quiet live pixels) can top 256 on a
    // 32x32 array, and masking is the path these scenarios exercise.
    let policy = PolicyEngine::new(
        seed,
        PolicyConfig {
            mask_budget: 320,
            max_recalibrations: 2,
        },
    );
    let mut controller = Controller::start(
        link,
        target,
        classifier,
        policy,
        RetryPolicy::default(),
        name,
    )?;
    let pre_yield = crate::trace::permille(controller.baseline_yield());
    let chip = controller.chip();
    let spec = plan_to_spec(plan);
    controller.link_mut().inject_faults(chip, spec)?;
    let outcome = controller.run(MAX_TICKS)?;
    Ok(ScenarioReport {
        name: name.to_string(),
        recovered: outcome.recovered,
        ticks: outcome.ticks_used,
        pre_yield_permille: pre_yield,
        final_yield_permille: outcome.final_yield_permille,
        trace: controller.into_trace(),
    })
}

/// Scenario: scattered dead pixels on a neuro chip, recovered by
/// masking + neighbor interpolation.
///
/// # Errors
///
/// Connection or control-loop failures.
pub fn dead_pixels(addr: SocketAddr, seed: u64) -> Result<ScenarioReport, ControlError> {
    let link = connect(addr, "control/dead-pixels")?;
    let plan = InjectionPlan::new(seed).array_wide(0.15, FaultKind::DeadPixel);
    run_scenario("dead-pixels", link, neuro_target(seed), seed, &plan)
}

/// Scenario: two lost readout channels on a neuro chip, recovered by
/// detaching and attaching a replacement part.
///
/// # Errors
///
/// Connection or control-loop failures.
pub fn channel_loss(addr: SocketAddr, seed: u64) -> Result<ScenarioReport, ControlError> {
    let link = connect(addr, "control/channel-loss")?;
    let plan = InjectionPlan::new(seed).lose_channel(2).lose_channel(5);
    run_scenario("channel-loss", link, neuro_target(seed), seed, &plan)
}

/// Scenario: comparator drift across a DNA array, recovered by
/// auto-recalibration.
///
/// # Errors
///
/// Connection or control-loop failures.
pub fn baseline_drift(addr: SocketAddr, seed: u64) -> Result<ScenarioReport, ControlError> {
    let link = connect(addr, "control/baseline-drift")?;
    let plan = InjectionPlan::new(seed).array_wide(
        0.15,
        FaultKind::ComparatorDrift {
            offset: Volt::from_milli(400.0),
        },
    );
    run_scenario("baseline-drift", link, dna_target(seed), seed, &plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trips_to_wire_spec() {
        let plan = InjectionPlan::new(9)
            .at(1, 2, FaultKind::DeadPixel)
            .array_wide(
                0.25,
                FaultKind::ComparatorDrift {
                    offset: Volt::from_milli(400.0),
                },
            )
            .lose_channel(3)
            .serial_bit_errors(1e-4);
        let spec = plan_to_spec(&plan);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.entries.len(), 4);
        assert_eq!(
            spec.entries.first().map(|e| e.kind.clone()),
            Some(FaultKindSpec::DeadPixel)
        );
        assert!(matches!(
            spec.entries.get(2),
            Some(FaultEntrySpec {
                target: FaultTargetSpec::Global,
                kind: FaultKindSpec::ChannelLoss { channel: 3 },
            })
        ));
    }
}
