#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! Property-based tests for the circuit substrate.

use bsa_circuit::comparator::Comparator;
use bsa_circuit::dac::Dac;
use bsa_circuit::mosfet::{Mosfet, MosfetParams};
use bsa_circuit::passive::Capacitor;
use bsa_circuit::waveform::Waveform;
use bsa_units::{Ampere, Farad, Seconds, Volt};
use proptest::prelude::*;

proptest! {
    /// The EKV drain current is finite, non-negative-leakage-bounded and
    /// monotone in V_G for any bias in the supply range.
    #[test]
    fn mosfet_current_monotone_in_vg(
        vg1 in 0.0f64..5.0,
        vg2 in 0.0f64..5.0,
        vd in 0.1f64..5.0,
    ) {
        prop_assume!((vg1 - vg2).abs() > 1e-6);
        let (lo, hi) = if vg1 < vg2 { (vg1, vg2) } else { (vg2, vg1) };
        let m = Mosfet::new(MosfetParams::n05um(10.0, 2.0));
        let i_lo = m.drain_current(Volt::new(lo), Volt::ZERO, Volt::new(vd));
        let i_hi = m.drain_current(Volt::new(hi), Volt::ZERO, Volt::new(vd));
        prop_assert!(i_lo.is_finite() && i_hi.is_finite());
        prop_assert!(i_hi >= i_lo, "I_D must grow with V_G");
    }

    /// Drain current grows (weakly) with V_D at fixed V_G.
    #[test]
    fn mosfet_current_monotone_in_vd(
        vg in 0.8f64..3.0,
        vd1 in 0.05f64..5.0,
        vd2 in 0.05f64..5.0,
    ) {
        prop_assume!((vd1 - vd2).abs() > 1e-6);
        let (lo, hi) = if vd1 < vd2 { (vd1, vd2) } else { (vd2, vd1) };
        let m = Mosfet::new(MosfetParams::n05um(10.0, 2.0));
        let i_lo = m.drain_current(Volt::new(vg), Volt::ZERO, Volt::new(lo));
        let i_hi = m.drain_current(Volt::new(vg), Volt::ZERO, Volt::new(hi));
        prop_assert!(i_hi >= i_lo);
    }

    /// The gate-voltage solver inverts drain_current wherever it brackets.
    #[test]
    fn gate_solver_inverts(
        target_exp in -10.0f64..-4.0,
        dvt_mv in -20.0f64..20.0,
    ) {
        let m = Mosfet::new(MosfetParams::n05um(10.0, 2.0))
            .with_mismatch(Volt::from_milli(dvt_mv), 0.0);
        let target = Ampere::new(10f64.powf(target_exp));
        if let Some(vg) = m.gate_voltage_for_current(
            target, Volt::ZERO, Volt::new(2.5), Volt::ZERO, Volt::new(5.0)
        ) {
            let i = m.drain_current(vg, Volt::ZERO, Volt::new(2.5));
            let rel = (i.value() - target.value()).abs() / target.value();
            prop_assert!(rel < 1e-6, "solver error {rel}");
        }
    }

    /// Charge conservation: integrate then inject cancels exactly.
    #[test]
    fn capacitor_charge_bookkeeping(
        c_ff in 1.0f64..1000.0,
        i_na in -100.0f64..100.0,
        dt_us in 0.01f64..100.0,
    ) {
        prop_assume!(i_na.abs() > 1e-6);
        let mut cap = Capacitor::new(Farad::from_femto(c_ff)).unwrap();
        let i = Ampere::from_nano(i_na);
        let dt = Seconds::from_micro(dt_us);
        cap.integrate(i, dt);
        let q = i * dt;
        cap.inject(-q);
        prop_assert!(cap.voltage().abs().value() < 1e-9, "residual {}", cap.voltage());
    }

    /// Comparator: output is high iff the input exceeded the effective
    /// threshold, for any offset/hysteresis, with zero delay.
    #[test]
    fn comparator_threshold_semantics(
        thr in 0.1f64..4.0,
        off_mv in -50.0f64..50.0,
        hys_mv in 0.0f64..100.0,
        v_in in 0.0f64..5.0,
    ) {
        let mut c = Comparator::new(
            Volt::new(thr),
            Volt::from_milli(off_mv),
            Volt::from_milli(hys_mv),
            Seconds::ZERO,
        ).unwrap();
        let out = c.evaluate(Volt::new(v_in), Seconds::ZERO);
        let rising = thr + off_mv * 1e-3 + hys_mv * 1e-3 / 2.0;
        // From the low state the rising threshold governs.
        prop_assert_eq!(out.high, v_in > rising + 1e-12 || (v_in > rising - 1e-12 && out.high));
    }

    /// DAC outputs stay within the rails for every code and mismatch seed.
    #[test]
    fn dac_stays_in_range(bits in 2u8..10, seed in 0u64..1000, sigma in 0.0f64..0.05) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let dac = Dac::new(bits, Volt::new(0.5), Volt::new(4.5))
            .unwrap()
            .with_element_mismatch(sigma, &mut rng);
        for code in 0..dac.codes() {
            let v = dac.output(code);
            prop_assert!(v >= Volt::new(0.5) - Volt::from_milli(1.0));
            prop_assert!(v <= Volt::new(4.5) + Volt::from_milli(1.0));
        }
    }

    /// Waveform interpolation never leaves the sample range.
    #[test]
    fn waveform_interpolation_bounded(
        samples in prop::collection::vec(-10.0f64..10.0, 2..50),
        t_us in -10.0f64..100.0,
    ) {
        let w = Waveform::from_samples(Seconds::from_micro(1.0), samples.clone()).unwrap();
        let v = w.sample_at(Seconds::from_micro(t_us));
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(v >= min - 1e-12 && v <= max + 1e-12, "v = {v} outside [{min}, {max}]");
    }
}
