#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! Equivalence contracts between the linearized fast path (the default
//! [`ScanMode::Linearized`]) and the full-solve reference path
//! ([`ScanMode::Reference`]).
//!
//! The two paths share the culture sum, the chain arithmetic and the
//! per-channel RNG streams bit-for-bit; their only divergence is the
//! first-order EKV expansion of the pixel current. DESIGN.md §13 bounds
//! that divergence at the chain output by
//!
//! ```text
//! |fast − reference| ≤ (G / c) · (c·v_max + ΔV_droop)² / (2 · n · U_T) · margin
//! ```
//!
//! with `G` the nominal cleft→output voltage gain, `c` the capacitive
//! coupling ratio, `n` the EKV slope factor, `U_T` the thermal voltage
//! and `ΔV_droop` the largest stored-gate droop excursion since the last
//! re-linearization (bounded by the recalibration interval). These tests
//! assert that bound (with its documented safety margin for per-pixel gm
//! spread), exact behavior at lost channels and dead arrays, and
//! determinism of both paths across thread counts.

use bsa_core::array::{ArrayGeometry, PixelAddress};
use bsa_core::neuro_chip::{NeuroChip, NeuroChipConfig, Recording};
use bsa_core::scan::{ScanMode, ScanOptions};
use bsa_faults::{FaultKind, InjectionPlan};
use bsa_neuro::culture::{Culture, CultureConfig, CulturedNeuron};
use bsa_neuro::firing::FiringPattern;
use bsa_neuro::junction::{ApTemplate, CleftJunction};
use bsa_units::consts::thermal_voltage;
use bsa_units::{Hertz, Meter, Seconds, Volt};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn small_config(seed: u64) -> NeuroChipConfig {
    NeuroChipConfig {
        geometry: ArrayGeometry::new(16, 16, Meter::from_micro(7.8)).unwrap(),
        frame_rate: Hertz::from_kilo(2.0),
        channels: 4,
        seed,
        ..NeuroChipConfig::default()
    }
}

/// A culture with one well-coupled spiking neuron over pixel (8, 8), as
/// in the frame tests — large enough signal to make linearization error
/// visible if the bound were wrong.
fn spiking_culture() -> Culture {
    let template = ApTemplate::from_hh(&CleftJunction::nominal(), Seconds::new(10e-6)).scaled(3.0);
    let mut culture = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
    let geometry = ArrayGeometry::new(16, 16, Meter::from_micro(7.8)).unwrap();
    let (x, y) = geometry.position_of(PixelAddress::new(8, 8));
    culture.push(CulturedNeuron {
        x,
        y,
        diameter: Meter::from_micro(30.0),
        pattern: FiringPattern::Silent,
        template,
        spikes: vec![Seconds::from_micro(2100.0), Seconds::from_micro(31000.0)],
    });
    culture
}

/// Largest |cleft voltage| the culture presents anywhere on the array
/// over the recording window, by dense sampling of electrode positions
/// and frame/row times.
fn peak_cleft_voltage(culture: &Culture, cfg: &NeuroChipConfig, frames: usize) -> f64 {
    let g = cfg.geometry;
    let frame_period = cfg.frame_rate.recip().value();
    let row_period = frame_period / g.rows() as f64;
    let mut vmax = 0.0f64;
    for f in 0..frames {
        for r in 0..g.rows() {
            let t = Seconds::new(f as f64 * frame_period + r as f64 * row_period);
            for c in 0..g.cols() {
                let (x, y) = g.position_of(PixelAddress::new(r, c));
                vmax = vmax.max(culture.cleft_voltage_at(x, y, t).value().abs());
            }
        }
    }
    vmax
}

/// The DESIGN.md §13 output-referred tolerance for a recording of this
/// chip: the second-order EKV term of the combined gate excursion (cleft
/// signal plus worst-case stored-gate droop since re-linearization),
/// times a 4× margin covering per-pixel gm spread around the nominal
/// gain. `duration` is the recording length, which caps the droop
/// excursion for recordings shorter than the recalibration interval.
fn output_tolerance(rec: &Recording, cfg: &NeuroChipConfig, vmax: f64, duration: Seconds) -> f64 {
    let n = cfg.pixel.sensor_fet.slope_factor;
    let ut = thermal_voltage(cfg.pixel.sensor_fet.temperature).value();
    let c = cfg.pixel.coupling_ratio;
    let g = rec.nominal_voltage_gain();
    // Per-pixel droop rates are N(0, droop_rate_v_per_s); 6σ bounds the
    // whole array with overwhelming probability.
    let dt = duration.value().min(cfg.recalibration_interval.value());
    let dv = 6.0 * cfg.pixel.droop_rate_v_per_s * dt;
    let excursion = c * vmax + dv;
    g / c * excursion * excursion / (2.0 * n * ut) * 4.0 + 1e-12
}

/// Length of a `frames`-frame recording at the config's frame rate.
fn duration(cfg: &NeuroChipConfig, frames: usize) -> Seconds {
    Seconds::new(frames as f64 * cfg.frame_rate.recip().value())
}

fn max_abs_diff(a: &Recording, b: &Recording) -> f64 {
    assert_eq!(a.len(), b.len());
    a.frames()
        .iter()
        .zip(b.frames())
        .flat_map(|(fa, fb)| fa.samples().iter().zip(fb.samples()))
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
}

fn record_pair(
    cfg: &NeuroChipConfig,
    culture: &Culture,
    frames: usize,
    faults: Option<&bsa_faults::CompiledFaults>,
) -> (Recording, Recording) {
    let mut fast_chip = NeuroChip::new(cfg.clone()).unwrap();
    let mut ref_chip = NeuroChip::new(cfg.clone()).unwrap();
    if let Some(f) = faults {
        fast_chip.inject_faults(f).unwrap();
        ref_chip.inject_faults(f).unwrap();
    }
    let fast = fast_chip.record_with(culture, Seconds::ZERO, frames, ScanOptions::default());
    let reference = ref_chip.record_with(culture, Seconds::ZERO, frames, ScanOptions::reference());
    (fast, reference)
}

#[test]
fn fast_path_matches_reference_within_documented_tolerance() {
    let cfg = small_config(0x0EE5_1281);
    let culture = spiking_culture();
    let frames = 12;
    let (fast, reference) = record_pair(&cfg, &culture, frames, None);
    let vmax = peak_cleft_voltage(&culture, &cfg, frames);
    assert!(vmax > 100e-6, "test culture must actually spike: {vmax}");
    let tol = output_tolerance(&reference, &cfg, vmax, duration(&cfg, frames));
    let diff = max_abs_diff(&fast, &reference);
    assert!(
        diff <= tol,
        "fast path diverged {diff} V from reference, tolerance {tol} V"
    );
    // The bound must be meaningful: far below the signal swing itself.
    let swing = reference.nominal_voltage_gain() * vmax;
    assert!(tol < 0.2 * swing, "tolerance {tol} vs swing {swing}");
}

#[test]
fn fast_path_stays_within_tolerance_across_recalibration_boundaries() {
    // 120 frames at 2 kHz = 60 ms > the 50 ms recalibration interval, so
    // the scan crosses a re-linearization boundary mid-recording.
    let cfg = small_config(0x0EE5_1281);
    let culture = spiking_culture();
    let frames = 120;
    let (fast, reference) = record_pair(&cfg, &culture, frames, None);
    let vmax = peak_cleft_voltage(&culture, &cfg, frames);
    let tol = output_tolerance(&reference, &cfg, vmax, duration(&cfg, frames));
    let diff = max_abs_diff(&fast, &reference);
    assert!(diff <= tol, "diff {diff} V, tolerance {tol} V");
}

#[test]
fn lost_channel_is_exactly_silent_in_both_paths() {
    let cfg = small_config(7);
    let culture = spiking_culture();
    // 16 columns over 4 channels: channel 2 serves columns 8–11 — right
    // under the spiking neuron.
    let faults = InjectionPlan::new(33).lose_channel(2).compile(16, 16);
    let (fast, reference) = record_pair(&cfg, &culture, 6, Some(&faults));
    for rec in [&fast, &reference] {
        for frame in rec.frames() {
            for row in 0..16 {
                for col in 8..12 {
                    assert_eq!(
                        frame.at(PixelAddress::new(row, col)),
                        0.0,
                        "lost channel must read exactly zero in every path"
                    );
                }
            }
        }
    }
}

#[test]
fn masked_pixel_health_and_output_match_across_paths() {
    let cfg = small_config(11);
    let culture = spiking_culture();
    let faults = InjectionPlan::new(44)
        .at(8, 8, FaultKind::DeadPixel)
        .at(3, 12, FaultKind::DeadPixel)
        .compile(16, 16);

    let mut fast_chip = NeuroChip::new(cfg.clone()).unwrap();
    let mut ref_chip = NeuroChip::new(cfg.clone()).unwrap();
    fast_chip.inject_faults(&faults).unwrap();
    ref_chip.inject_faults(&faults).unwrap();
    let frames = 8;
    let fast = fast_chip.record_with(&culture, Seconds::ZERO, frames, ScanOptions::default());
    let reference = ref_chip.record_with(&culture, Seconds::ZERO, frames, ScanOptions::reference());

    // Health classification is scan-mode independent.
    assert_eq!(
        fast_chip.health().dead_indices(),
        ref_chip.health().dead_indices(),
        "self-test masks must not depend on the scan mode"
    );
    assert!(fast_chip
        .health()
        .dead_indices()
        .contains(&(8 * 16 + 8usize)));

    // A dead pixel injects exactly zero current in both paths, so its
    // sample differs only through the shared chain state — which differs
    // only by the linearization of its live neighbors.
    let vmax = peak_cleft_voltage(&culture, &cfg, frames);
    let tol = output_tolerance(&reference, &cfg, vmax, duration(&cfg, frames));
    for addr in [PixelAddress::new(8, 8), PixelAddress::new(3, 12)] {
        let fs = fast.pixel_series(addr);
        let rs = reference.pixel_series(addr);
        for (a, b) in fs.iter().zip(&rs) {
            assert!((a - b).abs() <= tol, "masked pixel diverged: {a} vs {b}");
        }
    }
}

#[test]
fn all_dead_array_is_bitwise_identical_across_paths() {
    // With every pixel dead, both paths see identically zero currents, so
    // the recordings must agree bit for bit — any divergence would mean
    // the fast path mishandles noise streams or chain state.
    let cfg = small_config(13);
    let culture = spiking_culture();
    let faults = InjectionPlan::new(55)
        .array_wide(1.0, FaultKind::DeadPixel)
        .compile(16, 16);
    let (fast, reference) = record_pair(&cfg, &culture, 6, Some(&faults));
    assert_eq!(
        fast, reference,
        "all-dead array must be bit-identical across scan modes"
    );
}

#[test]
fn reference_mode_is_bit_identical_across_thread_counts() {
    let cfg = small_config(17);
    let culture = spiking_culture();
    let record = |opts: ScanOptions| {
        let mut chip = NeuroChip::new(cfg.clone()).unwrap();
        chip.record_with(&culture, Seconds::ZERO, 6, opts)
    };
    let serial = record(ScanOptions::serial().with_mode(ScanMode::Reference));
    for threads in [2, 3, 4, 8] {
        let parallel = record(ScanOptions::with_threads(threads).with_mode(ScanMode::Reference));
        assert_eq!(serial, parallel, "reference mode diverged at {threads}");
    }
    let auto = record(ScanOptions::reference());
    assert_eq!(serial, auto, "reference auto-thread run diverged");
}

#[test]
fn fast_mode_is_bit_identical_across_thread_counts() {
    let cfg = small_config(19);
    let culture = spiking_culture();
    let record = |opts: ScanOptions| {
        let mut chip = NeuroChip::new(cfg.clone()).unwrap();
        chip.record_with(&culture, Seconds::ZERO, 6, opts)
    };
    let serial = record(ScanOptions::serial());
    for threads in [2, 3, 4, 8] {
        let parallel = record(ScanOptions::with_threads(threads));
        assert_eq!(serial, parallel, "fast mode diverged at {threads}");
    }
}

/// Strategy for a small injected fault plan: up to three dead pixels, an
/// optional clipped pixel and an optional lost channel.
fn arb_faults() -> impl Strategy<Value = InjectionPlan> {
    (
        prop::collection::vec((0usize..16, 0usize..16), 0..3),
        (any::<bool>(), 0usize..16, 0usize..16),
        (any::<bool>(), 0usize..4),
        any::<u64>(),
    )
        .prop_map(|(dead, (clip, cr, cc), (lose, ch), seed)| {
            let mut plan = InjectionPlan::new(seed);
            for (r, c) in dead {
                plan = plan.at(r, c, FaultKind::DeadPixel);
            }
            if clip {
                plan = plan.at(
                    cr,
                    cc,
                    FaultKind::GainClipping {
                        limit: Volt::from_milli(50.0),
                    },
                );
            }
            if lose {
                plan = plan.lose_channel(ch);
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Over random cultures, die seeds and fault plans, the fast path
    /// stays inside the documented tolerance of the reference path, and
    /// remains bit-identical across thread counts.
    #[test]
    fn equivalence_over_random_cultures_and_faults(
        die_seed in any::<u64>(),
        culture_seed in any::<u64>(),
        neuron_count in 0usize..6,
        frames in 2usize..7,
        plan in arb_faults(),
    ) {
        let cfg = small_config(die_seed);
        let culture_cfg = CultureConfig {
            neuron_count,
            ..CultureConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(culture_seed);
        let mut culture = Culture::random(&culture_cfg, &mut rng);
        culture.generate_spikes(Seconds::from_milli(frames as f64 * 0.5), &mut rng);
        let faults = plan.compile(16, 16);

        let (fast, reference) = record_pair(&cfg, &culture, frames, Some(&faults));
        let vmax = peak_cleft_voltage(&culture, &cfg, frames);
        let tol = output_tolerance(&reference, &cfg, vmax, duration(&cfg, frames));
        let diff = max_abs_diff(&fast, &reference);
        prop_assert!(diff <= tol, "diff {diff} V vs tolerance {tol} V");

        let mut chip_a = NeuroChip::new(cfg.clone()).unwrap();
        let mut chip_b = NeuroChip::new(cfg.clone()).unwrap();
        chip_a.inject_faults(&faults).unwrap();
        chip_b.inject_faults(&faults).unwrap();
        let a = chip_a.record_with(&culture, Seconds::ZERO, frames, ScanOptions::serial());
        let b = chip_b.record_with(&culture, Seconds::ZERO, frames, ScanOptions::with_threads(3));
        prop_assert_eq!(a, b);
    }
}
