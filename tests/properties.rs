#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! Property-based tests over the core data structures and invariants.

use cmos_biosensor_arrays::chips::array::PixelAddress;
use cmos_biosensor_arrays::chips::dna_chip::{
    decode_frames, encode_frames, DnaPixel, DnaPixelConfig, PixelReading,
};
use cmos_biosensor_arrays::circuit::dac::Dac;
use cmos_biosensor_arrays::electrochem::hybridization::HybridizationModel;
use cmos_biosensor_arrays::electrochem::sequence::{Base, DnaSequence};
use cmos_biosensor_arrays::units::consts::ROOM_TEMPERATURE;
use cmos_biosensor_arrays::units::{format_eng, parse_eng, Ampere, Molar, Seconds, Volt};
use proptest::prelude::*;

fn arb_base() -> impl Strategy<Value = Base> {
    prop_oneof![Just(Base::A), Just(Base::C), Just(Base::G), Just(Base::T)]
}

fn arb_sequence(max_len: usize) -> impl Strategy<Value = DnaSequence> {
    prop::collection::vec(arb_base(), 1..=max_len).prop_map(DnaSequence::new)
}

proptest! {
    #[test]
    fn eng_format_parse_round_trip(value in -1e9f64..1e9, scale in -12i32..9) {
        let x = value * 10f64.powi(scale);
        let s = format_eng(x, "A");
        let back = parse_eng(&s, "A").unwrap();
        // Formatting keeps 4 significant digits.
        if x != 0.0 {
            prop_assert!(((back - x) / x).abs() < 1e-3, "{x} → {s} → {back}");
        } else {
            prop_assert_eq!(back, 0.0);
        }
    }

    #[test]
    fn quantity_arithmetic_is_consistent(a in -1e3f64..1e3, b in 0.001f64..1e3) {
        let v = Volt::new(a);
        let r = cmos_biosensor_arrays::units::Ohm::new(b);
        let i = v / r;
        prop_assert!(((i * r) - v).abs().value() < 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn reverse_complement_involution(seq in arb_sequence(60)) {
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn revcomp_is_perfect_partner(seq in arb_sequence(40)) {
        let rc = seq.reverse_complement();
        prop_assert!(seq.is_perfect_match(&rc));
        prop_assert_eq!(seq.mismatches_with(&rc), 0);
    }

    #[test]
    fn mismatch_count_bounded(seq in arb_sequence(30), n in 0usize..10) {
        let n = n.min(seq.len());
        let mutated = seq.reverse_complement().with_mismatches(n);
        let mm = seq.mismatches_with(&mutated);
        // Best-alignment matching can only find fewer or equal mismatches.
        prop_assert!(mm <= n, "asked for {n}, measured {mm}");
    }

    #[test]
    fn coverage_always_in_unit_interval(
        seq in arb_sequence(30),
        n in 0usize..6,
        log_c in -12.0f64..-3.0,
        dt in 1.0f64..1e5,
    ) {
        let n = n.min(seq.len());
        let target = seq.reverse_complement().with_mismatches(n);
        let model = HybridizationModel::default();
        let c = Molar::new(10f64.powf(log_c));
        let theta = model.coverage_after(&seq, &target, c, ROOM_TEMPERATURE, 0.0, Seconds::new(dt));
        prop_assert!((0.0..=1.0).contains(&theta), "θ = {theta}");
    }

    #[test]
    fn converter_count_monotone_in_current(
        exp_a in -12.0f64..-7.0,
        exp_b in -12.0f64..-7.0,
    ) {
        let (lo, hi) = if exp_a < exp_b { (exp_a, exp_b) } else { (exp_b, exp_a) };
        prop_assume!(hi - lo > 0.01);
        let mut pixel = DnaPixel::nominal(DnaPixelConfig::default());
        let frame = Seconds::new(10.0);
        let c_lo = pixel.convert_ideal(Ampere::new(10f64.powf(lo)), frame);
        let c_hi = pixel.convert_ideal(Ampere::new(10f64.powf(hi)), frame);
        prop_assert!(c_hi >= c_lo, "count must grow with current");
    }

    #[test]
    fn converter_estimate_inverts_within_quantization(
        exp in -11.0f64..-7.0,
    ) {
        let mut pixel = DnaPixel::nominal(DnaPixelConfig::default());
        let i = Ampere::new(10f64.powf(exp));
        let frame = Seconds::new(10.0);
        let count = pixel.convert_ideal(i, frame);
        prop_assume!(count > 0);
        let est = pixel.estimate_current(count, frame);
        let rel = (est.value() - i.value()).abs() / i.value();
        // ±1-count quantization bounds the error.
        prop_assert!(rel <= 1.2 / count as f64 + 1e-6, "rel = {rel}, count = {count}");
    }

    #[test]
    fn serial_round_trip_any_readings(
        rows in prop::collection::vec((0usize..8, 0usize..16, 0u64..0xFF_FFFF), 0..64)
    ) {
        let readings: Vec<PixelReading> = rows
            .into_iter()
            .map(|(r, c, count)| PixelReading {
                address: PixelAddress::new(r, c),
                count,
            })
            .collect();
        let bits = encode_frames(&readings);
        let decoded = decode_frames(&bits).unwrap();
        prop_assert_eq!(decoded, readings);
    }

    #[test]
    fn ideal_dac_is_monotone(bits in 2u8..10) {
        let dac = Dac::new(bits, Volt::ZERO, Volt::new(2.5)).unwrap();
        let mut last = Volt::new(-1.0);
        for code in 0..dac.codes() {
            let v = dac.output(code);
            prop_assert!(v > last);
            last = v;
        }
    }

    #[test]
    fn dac_code_lookup_inverts_output(bits in 2u8..12, code_frac in 0.0f64..1.0) {
        let dac = Dac::new(bits, Volt::new(0.5), Volt::new(4.5)).unwrap();
        let code = (code_frac * (dac.codes() - 1) as f64) as u32;
        prop_assert_eq!(dac.code_for(dac.output(code)), code);
    }

    #[test]
    fn gc_content_in_unit_interval(seq in arb_sequence(100)) {
        let gc = seq.gc_content();
        prop_assert!((0.0..=1.0).contains(&gc));
    }

    #[test]
    fn more_mismatches_never_stabilize(seq in arb_sequence(25), n in 0usize..5) {
        let n = n.min(seq.len().saturating_sub(1));
        let model = HybridizationModel::default();
        let rc = seq.reverse_complement();
        let t_n = rc.with_mismatches(n);
        let t_n1 = rc.with_mismatches(n + 1);
        let dg_n = model.duplex_dg_kcal(&seq, &t_n, ROOM_TEMPERATURE);
        let dg_n1 = model.duplex_dg_kcal(&seq, &t_n1, ROOM_TEMPERATURE);
        prop_assert!(dg_n1 >= dg_n - 1e-9, "ΔG must not drop with more mismatches");
    }
}
