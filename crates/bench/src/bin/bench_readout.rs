// Experiment binaries abort on broken I/O or impossible configs by design.
#![allow(clippy::unwrap_used)]
//! Benchmark-regression harness for the readout engine (experiment
//! E-PERF): times the neuro chip's frame scan serial vs parallel and the
//! DNA chip's 16×8 current-to-frequency conversion, and the station's
//! TCP loopback streaming path, then emits machine-readable JSON
//! (`BENCH_neuro.json`, `BENCH_dna.json`, `BENCH_station.json`) so CI
//! can track throughput across commits.
//!
//! The paper's neural chip streams 2 000 frames/s from 128×128 pixels;
//! `realtime_factor` reports how far the simulation is from that rate.
//! The DNA chip integrates for 10 s per measurement frame, so its
//! realtime reference is 0.1 frames/s.
//!
//! Usage: `bench_readout [--quick] [--frames N] [--threads N] [--out DIR]`

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use bsa_bench::banner;
use bsa_core::array::ArrayGeometry;
use bsa_core::dna_chip::{DnaChip, DnaChipConfig};
use bsa_core::neuro_chip::{NeuroChip, NeuroChipConfig};
use bsa_core::{ScanMode, ScanOptions};
use bsa_neuro::culture::{Culture, CultureConfig};
use bsa_units::{Ampere, Meter, Seconds};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The paper's full-array neural frame rate (§3).
const NEURO_REALTIME_HZ: f64 = 2000.0;

struct Args {
    quick: bool,
    frames: Option<usize>,
    threads: Option<usize>,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        frames: None,
        threads: None,
        out: PathBuf::from("."),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--frames" => {
                let v = it.next().expect("--frames needs a value");
                args.frames = Some(v.parse().expect("--frames must be a positive integer"));
            }
            "--threads" => {
                let v = it.next().expect("--threads needs a value");
                args.threads = Some(v.parse().expect("--threads must be a positive integer"));
            }
            "--out" => {
                let v = it.next().expect("--out needs a directory");
                args.out = PathBuf::from(v);
            }
            other => panic!("unknown argument {other:?} (try --quick/--frames/--threads/--out)"),
        }
    }
    args
}

/// A finite f64 as a JSON number (non-finite values would break parsers).
fn jnum(x: f64) -> String {
    assert!(x.is_finite(), "benchmark produced a non-finite number");
    format!("{x}")
}

/// Best-of-`reps` wall time of one warm-arena record call, in seconds.
fn time_neuro(
    chip: &mut NeuroChip,
    culture: &Culture,
    frames: usize,
    opts: ScanOptions,
    reps: usize,
) -> f64 {
    // Warm-up fills the arena so timed runs reuse every frame buffer.
    let warm = chip.record_with(culture, Seconds::ZERO, frames, opts);
    chip.recycle(warm);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let recording = chip.record_with(culture, Seconds::ZERO, frames, opts);
        best = best.min(start.elapsed().as_secs_f64());
        chip.recycle(recording);
    }
    best
}

fn bench_neuro(args: &Args) -> String {
    let (rows, channels, frames, reps) = if args.quick {
        (16usize, 4usize, args.frames.unwrap_or(16), 3usize)
    } else {
        // 128 frames = 64 ms of data: long enough to amortize the
        // per-recalibration-interval calibrate + re-linearize over the
        // steady-state inner loop, as a live acquisition loop would.
        // Five reps (min taken) because the realtime-factor headline is
        // gated in CI and single-core runners see multi-ms steal bursts.
        (128, 16, args.frames.unwrap_or(128), 5)
    };
    // The full EKV solve is ~30× slower per frame; cap its timed run so
    // the reference numbers stay affordable and compare per-frame rates.
    let ref_frames = frames.min(32);
    let config = NeuroChipConfig {
        geometry: ArrayGeometry::new(rows, rows, Meter::from_micro(7.8)).unwrap(),
        channels,
        ..NeuroChipConfig::default()
    };
    let mut rng = SmallRng::seed_from_u64(7);
    let cfg = CultureConfig {
        neuron_count: if args.quick { 5 } else { 20 },
        mean_rate_hz: 20.0,
        ..CultureConfig::default()
    };
    let mut culture = Culture::random(&cfg, &mut rng);
    culture.generate_spikes(Seconds::from_milli(100.0), &mut rng);

    let mut chip = NeuroChip::new(config).unwrap();
    chip.calibrate(Seconds::ZERO);
    let parallel_opts = match args.threads {
        Some(n) => ScanOptions::with_threads(n),
        None => ScanOptions::default(),
    };
    let threads_resolved = chip.resolved_scan_threads(parallel_opts);

    let fast_serial_s = time_neuro(&mut chip, &culture, frames, ScanOptions::serial(), reps);
    let fast_parallel_s = time_neuro(&mut chip, &culture, frames, parallel_opts, reps);
    let ref_serial_s = time_neuro(
        &mut chip,
        &culture,
        ref_frames,
        ScanOptions::serial().with_mode(ScanMode::Reference),
        reps,
    );
    let ref_parallel_s = time_neuro(
        &mut chip,
        &culture,
        ref_frames,
        parallel_opts.with_mode(ScanMode::Reference),
        reps,
    );

    // Per-stage costs of the fast path's setup work, measured through the
    // public stage entry points on warm buffers.
    let stage_calibrate_s = {
        let start = Instant::now();
        chip.calibrate(Seconds::ZERO);
        start.elapsed().as_secs_f64()
    };
    let stage_linearize_s = {
        chip.relinearize(Seconds::ZERO); // warm the coefficient tables
        let start = Instant::now();
        chip.relinearize(Seconds::ZERO);
        start.elapsed().as_secs_f64()
    };
    let (stage_culture_compile_s, culture_pairs) = {
        chip.compile_culture_sources(&culture); // warm the source tables
        let start = Instant::now();
        let pairs = chip.compile_culture_sources(&culture);
        (start.elapsed().as_secs_f64(), pairs)
    };

    let pixels = rows * rows;
    let fps_serial = frames as f64 / fast_serial_s;
    let fps_parallel = frames as f64 / fast_parallel_s;
    let fps_ref_serial = ref_frames as f64 / ref_serial_s;
    let fps_ref_parallel = ref_frames as f64 / ref_parallel_s;
    // Headline speedup: the tentpole comparison — reference full solve,
    // serial, vs the linearized fast path on the parallel fan-out.
    let speedup = fps_parallel / fps_ref_serial;
    let parallel_speedup = fps_parallel / fps_serial;
    let realtime = fps_parallel / NEURO_REALTIME_HZ;
    let stats = chip.arena_stats();

    println!(
        "neuro {rows}x{rows}/{channels}ch, {frames} frames ({threads_resolved} threads): \
         fast {fps_serial:.1}/{fps_parallel:.1} frames/s serial/parallel, \
         reference {fps_ref_serial:.1}/{fps_ref_parallel:.1} \
         (speedup x{speedup:.2} vs reference serial, {realtime:.3}x realtime)"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bsa-bench-readout/v1\",");
    let _ = writeln!(json, "  \"chip\": \"neuro\",");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"cols\": {rows},");
    let _ = writeln!(json, "  \"channels\": {channels},");
    let _ = writeln!(json, "  \"frames\": {frames},");
    let _ = writeln!(json, "  \"reference_frames\": {ref_frames},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(
        json,
        "  \"threads_requested\": {},",
        parallel_threads_label(args.threads)
    );
    let _ = writeln!(json, "  \"threads_resolved\": {threads_resolved},");
    let _ = writeln!(json, "  \"mode\": \"linearized\",");
    let _ = writeln!(json, "  \"serial_s\": {},", jnum(fast_serial_s));
    let _ = writeln!(json, "  \"parallel_s\": {},", jnum(fast_parallel_s));
    let _ = writeln!(json, "  \"reference_serial_s\": {},", jnum(ref_serial_s));
    let _ = writeln!(
        json,
        "  \"reference_parallel_s\": {},",
        jnum(ref_parallel_s)
    );
    let _ = writeln!(json, "  \"frames_per_s_serial\": {},", jnum(fps_serial));
    let _ = writeln!(json, "  \"frames_per_s_parallel\": {},", jnum(fps_parallel));
    let _ = writeln!(
        json,
        "  \"frames_per_s_reference_serial\": {},",
        jnum(fps_ref_serial)
    );
    let _ = writeln!(
        json,
        "  \"frames_per_s_reference_parallel\": {},",
        jnum(fps_ref_parallel)
    );
    let _ = writeln!(
        json,
        "  \"pixel_samples_per_s\": {},",
        jnum(fps_parallel * pixels as f64)
    );
    let _ = writeln!(json, "  \"speedup\": {},", jnum(speedup));
    let _ = writeln!(json, "  \"parallel_speedup\": {},", jnum(parallel_speedup));
    let _ = writeln!(json, "  \"realtime_hz\": {},", jnum(NEURO_REALTIME_HZ));
    let _ = writeln!(json, "  \"realtime_factor\": {},", jnum(realtime));
    let _ = writeln!(json, "  \"stages\": {{");
    let _ = writeln!(json, "    \"calibrate_s\": {},", jnum(stage_calibrate_s));
    let _ = writeln!(json, "    \"linearize_s\": {},", jnum(stage_linearize_s));
    let _ = writeln!(
        json,
        "    \"culture_compile_s\": {},",
        jnum(stage_culture_compile_s)
    );
    let _ = writeln!(json, "    \"culture_source_pairs\": {culture_pairs}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"arena_allocations\": {},", stats.allocations);
    let _ = writeln!(json, "  \"arena_reuses\": {}", stats.reuses);
    json.push('}');
    json.push('\n');
    json
}

fn parallel_threads_label(threads: Option<usize>) -> String {
    match threads {
        Some(n) => n.to_string(),
        None => "\"auto\"".to_string(),
    }
}

fn bench_dna(args: &Args) -> String {
    let reps = if args.quick { 20 } else { 200 };
    let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();
    if let Some(n) = args.threads {
        chip.set_scan_threads(Some(n));
    }
    let n = chip.geometry().len();
    let currents: Vec<Ampere> = (0..n)
        .map(|k| Ampere::from_nano(1.0 + 0.05 * k as f64))
        .collect();
    let frame_time = chip.config().frame_time.value();

    // Serial reference.
    chip.set_scan_threads(Some(1));
    let mut counts = Vec::new();
    chip.measure_currents_into(&currents, &mut counts).unwrap();
    let start = Instant::now();
    for _ in 0..reps {
        chip.measure_currents_into(&currents, &mut counts).unwrap();
    }
    let serial_s = start.elapsed().as_secs_f64() / reps as f64;

    // Parallel (or requested) fan-out.
    chip.set_scan_threads(args.threads);
    chip.measure_currents_into(&currents, &mut counts).unwrap();
    let start = Instant::now();
    for _ in 0..reps {
        chip.measure_currents_into(&currents, &mut counts).unwrap();
    }
    let parallel_s = start.elapsed().as_secs_f64() / reps as f64;

    let fps_serial = 1.0 / serial_s;
    let fps_parallel = 1.0 / parallel_s;
    let speedup = serial_s / parallel_s;
    // The chip integrates 10 s per frame: realtime is 1/frame_time.
    let realtime_hz = 1.0 / frame_time;
    let realtime = fps_parallel / realtime_hz;

    println!(
        "dna 16x8, {reps} conversions: serial {:.0} frames/s, parallel {:.0} frames/s \
         (speedup x{speedup:.2}, {:.0}x realtime)",
        fps_serial, fps_parallel, realtime
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bsa-bench-readout/v1\",");
    let _ = writeln!(json, "  \"chip\": \"dna\",");
    let _ = writeln!(json, "  \"rows\": 16,");
    let _ = writeln!(json, "  \"cols\": 8,");
    let _ = writeln!(json, "  \"pixels\": {n},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(
        json,
        "  \"threads\": {},",
        parallel_threads_label(args.threads)
    );
    let _ = writeln!(json, "  \"serial_s\": {},", jnum(serial_s));
    let _ = writeln!(json, "  \"parallel_s\": {},", jnum(parallel_s));
    let _ = writeln!(json, "  \"frames_per_s_serial\": {},", jnum(fps_serial));
    let _ = writeln!(json, "  \"frames_per_s_parallel\": {},", jnum(fps_parallel));
    let _ = writeln!(
        json,
        "  \"pixel_samples_per_s\": {},",
        jnum(fps_parallel * n as f64)
    );
    let _ = writeln!(json, "  \"speedup\": {},", jnum(speedup));
    let _ = writeln!(json, "  \"realtime_hz\": {},", jnum(realtime_hz));
    let _ = writeln!(json, "  \"realtime_factor\": {}", jnum(realtime));
    json.push('}');
    json.push('\n');
    json
}

/// Times the full wire path: an in-process station serves neuro frames
/// over real loopback TCP, measured end to end at the client. The figure
/// includes chip simulation, codec, CRC, and socket round trips — the
/// cost of serving vs the in-process `bench_neuro` numbers.
fn bench_station(args: &Args) -> String {
    use bsa_link::{CultureSpec, NeuroChipSpec};
    use bsa_station::{Station, StationClient, StationConfig};

    let (rows, channels, frames, reps) = if args.quick {
        (16u16, 4u16, args.frames.unwrap_or(32) as u32, 3usize)
    } else {
        (128, 16, args.frames.unwrap_or(64) as u32, 3)
    };
    let spec = NeuroChipSpec {
        rows,
        cols: rows,
        channels,
        seed: 0x0EE5_1281,
        frame_rate_hz: 0.0,
    };
    let culture = CultureSpec {
        seed: 7,
        neuron_count: if args.quick { 5 } else { 20 },
        spike_duration_s: f64::from(frames) / 2000.0,
    };

    let station = Station::bind(StationConfig::default()).expect("bind loopback station");
    let mut client = StationClient::connect(station.addr(), "bench").expect("connect");
    let attached = client.attach_neuro(&spec).expect("attach neuro chip");

    let chunk = 8u32;
    // Warm-up pass (fills the chip's frame arena, warms the stack).
    let bytes_before = station.stats().bytes_sent;
    client
        .stream_neuro(attached.chip, frames, chunk, Seconds::ZERO, &culture)
        .expect("warm-up stream");
    let bytes_per_stream = station.stats().bytes_sent - bytes_before;

    let mut best = f64::INFINITY;
    let mut dropped_total = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        let stream = client
            .stream_neuro(attached.chip, frames, chunk, Seconds::ZERO, &culture)
            .expect("timed stream");
        best = best.min(start.elapsed().as_secs_f64());
        dropped_total += u64::from(stream.frames_dropped);
    }

    let fps = f64::from(frames) / best;
    let bytes_per_s = bytes_per_stream as f64 / best;
    let realtime = fps / NEURO_REALTIME_HZ;

    println!(
        "station {rows}x{rows}/{channels}ch loopback, {frames} frames: \
         {fps:.1} frames/s over TCP ({:.1} MB/s, {:.3}x realtime, {dropped_total} dropped)",
        bytes_per_s / 1e6,
        realtime
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bsa-bench-station/v1\",");
    let _ = writeln!(json, "  \"transport\": \"tcp-loopback\",");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"cols\": {rows},");
    let _ = writeln!(json, "  \"channels\": {channels},");
    let _ = writeln!(json, "  \"frames\": {frames},");
    let _ = writeln!(json, "  \"chunk_frames\": {chunk},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"stream_s\": {},", jnum(best));
    let _ = writeln!(json, "  \"frames_per_s\": {},", jnum(fps));
    let _ = writeln!(json, "  \"bytes_per_stream\": {bytes_per_stream},");
    let _ = writeln!(json, "  \"bytes_per_s\": {},", jnum(bytes_per_s));
    let _ = writeln!(json, "  \"frames_dropped\": {dropped_total},");
    let _ = writeln!(json, "  \"realtime_hz\": {},", jnum(NEURO_REALTIME_HZ));
    let _ = writeln!(json, "  \"realtime_factor\": {}", jnum(realtime));
    json.push('}');
    json.push('\n');
    json
}

/// Times the persistence path (experiment E-STORE): segment writes
/// through `bsa-store`'s queued writer thread, then wire-level replay of
/// the same segment through a loopback station — the record/replay cost
/// relative to the live streaming numbers above.
fn bench_store(args: &Args) -> String {
    use bsa_link::ChipKind;
    use bsa_station::{Station, StationClient, StationConfig};
    use bsa_store::{encode_neuro_frame, fnv1a64, frame_payload_len, Recorder, SegmentMeta};

    let (rows, frames, reps) = if args.quick {
        (16usize, args.frames.unwrap_or(256), 3usize)
    } else {
        (128, args.frames.unwrap_or(256), 5)
    };
    let pixels = rows * rows;
    let payload_len = frame_payload_len(ChipKind::Neuro, rows as u16, rows as u16);

    // Pre-encoded, bit-diverse frames: the timed loop measures the queue
    // hand-off and writer thread, not sample synthesis.
    let payloads: Vec<Vec<u8>> = (0..frames)
        .map(|f| {
            let samples: Vec<f64> = (0..pixels)
                .map(|p| (f * pixels + p) as f64 * 1e-6 - 0.5)
                .collect();
            encode_neuro_frame(&samples)
        })
        .collect();

    let root = std::env::temp_dir().join(format!("bsa-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let meta = SegmentMeta {
        chip: 1,
        kind: ChipKind::Neuro,
        rows: rows as u16,
        cols: rows as u16,
        config_hash: fnv1a64(b"bench"),
        spec: "bench".to_string(),
    };

    // Write path: best-of-reps over fresh segments; `finish` joins the
    // writer thread, so the elapsed time covers full persistence. The
    // queue is sized to the offer count so throughput is not distorted
    // by drop-and-count backpressure.
    let mut best_write = f64::INFINITY;
    let mut bytes_written = 0u64;
    for rep in 0..reps {
        let name = format!("bench-{rep}");
        let start = Instant::now();
        let mut recorder =
            Recorder::create(&root, &name, &meta, payload_len, frames).expect("create segment");
        for payload in &payloads {
            recorder.offer(0, payload.clone()).expect("offer frame");
        }
        let summary = recorder.finish().expect("finalize segment");
        best_write = best_write.min(start.elapsed().as_secs_f64());
        assert_eq!(summary.frames_dropped, 0, "queue sized to cover offers");
        bytes_written = summary.bytes_written;
    }
    let write_fps = frames as f64 / best_write;
    let write_bytes_per_s = bytes_written as f64 / best_write;

    // Replay path: the finished segment served back over loopback TCP
    // with the live-stream grammar, measured end to end at the client.
    let station = Station::bind(StationConfig {
        store_root: Some(root.clone()),
        ..StationConfig::default()
    })
    .expect("bind loopback station");
    let mut client = StationClient::connect(station.addr(), "bench").expect("connect");
    let bytes_before = station.stats().bytes_sent;
    let warm = client.replay("bench-0", 0).expect("warm-up replay");
    assert_eq!(warm.frames.len(), frames, "replay returns every frame");
    let bytes_per_replay = station.stats().bytes_sent - bytes_before;
    let mut best_replay = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        client.replay("bench-0", 0).expect("timed replay");
        best_replay = best_replay.min(start.elapsed().as_secs_f64());
    }
    let replay_fps = frames as f64 / best_replay;
    let replay_bytes_per_s = bytes_per_replay as f64 / best_replay;
    drop(client);
    let _ = std::fs::remove_dir_all(&root);

    println!(
        "store {rows}x{rows}, {frames} frames: write {write_fps:.0} frames/s \
         ({:.1} MB/s to disk), replay {replay_fps:.0} frames/s over TCP ({:.1} MB/s)",
        write_bytes_per_s / 1e6,
        replay_bytes_per_s / 1e6
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bsa-bench-store/v1\",");
    let _ = writeln!(json, "  \"rows\": {rows},");
    let _ = writeln!(json, "  \"cols\": {rows},");
    let _ = writeln!(json, "  \"frames\": {frames},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"segment_bytes\": {bytes_written},");
    let _ = writeln!(json, "  \"write_s\": {},", jnum(best_write));
    let _ = writeln!(json, "  \"write_frames_per_s\": {},", jnum(write_fps));
    let _ = writeln!(
        json,
        "  \"write_bytes_per_s\": {},",
        jnum(write_bytes_per_s)
    );
    let _ = writeln!(json, "  \"replay_s\": {},", jnum(best_replay));
    let _ = writeln!(json, "  \"replay_frames_per_s\": {},", jnum(replay_fps));
    let _ = writeln!(
        json,
        "  \"replay_bytes_per_s\": {},",
        jnum(replay_bytes_per_s)
    );
    let _ = writeln!(json, "  \"replay_transport\": \"tcp-loopback\"");
    json.push('}');
    json.push('\n');
    json
}

fn main() {
    let args = parse_args();
    banner(
        "E-PERF",
        "readout-engine throughput (regression harness)",
        "128x128 pixels stream at 2 kframes/s over 16 parallel channels",
    );

    let neuro = bench_neuro(&args);
    let dna = bench_dna(&args);
    let station = bench_station(&args);
    let store = bench_store(&args);

    std::fs::create_dir_all(&args.out).expect("create output directory");
    let neuro_path = args.out.join("BENCH_neuro.json");
    let dna_path = args.out.join("BENCH_dna.json");
    let station_path = args.out.join("BENCH_station.json");
    let store_path = args.out.join("BENCH_store.json");
    std::fs::write(&neuro_path, neuro).expect("write BENCH_neuro.json");
    std::fs::write(&dna_path, dna).expect("write BENCH_dna.json");
    std::fs::write(&station_path, station).expect("write BENCH_station.json");
    std::fs::write(&store_path, store).expect("write BENCH_store.json");
    println!(
        "wrote {}, {}, {} and {}",
        neuro_path.display(),
        dna_path.display(),
        station_path.display(),
        store_path.display()
    );
}
