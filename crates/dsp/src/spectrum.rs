//! Spectral analysis: periodograms and band power.
//!
//! Used to characterize the recorded noise floors (thermal, flicker, shot)
//! of the sensor channels and to verify filter responses. Direct DFT — the
//! record lengths involved (≤ a few thousand frames) don't justify an FFT
//! dependency.

use bsa_units::Hertz;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// One-sided power spectral density estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Periodogram {
    /// Frequency of each bin in Hz.
    pub frequencies: Vec<f64>,
    /// Power spectral density per bin, in (signal units)²/Hz.
    pub psd: Vec<f64>,
}

impl Periodogram {
    /// Computes the one-sided periodogram of `x` sampled at `fs` Hz, with
    /// a Hann window (bins 1 … n/2; DC is excluded).
    ///
    /// # Panics
    ///
    /// Panics if `x` has fewer than 4 samples or `fs` is not positive.
    pub fn compute(x: &[f64], fs: Hertz) -> Self {
        let fs = fs.value();
        assert!(x.len() >= 4, "periodogram needs at least 4 samples");
        assert!(fs > 0.0, "sample rate must be positive");
        let n = x.len();
        // Hann window with its power normalization.
        let window: Vec<f64> = (0..n)
            .map(|k| 0.5 * (1.0 - (2.0 * PI * k as f64 / n as f64).cos()))
            .collect();
        let win_power: f64 = window.iter().map(|w| w * w).sum();

        let half = n / 2;
        let mut frequencies = Vec::with_capacity(half);
        let mut psd = Vec::with_capacity(half);
        for k in 1..=half {
            let (mut re, mut im) = (0.0, 0.0);
            for (t, (&xv, &wv)) in x.iter().zip(window.iter()).enumerate() {
                let phi = -2.0 * PI * (k * t) as f64 / n as f64;
                let v = xv * wv;
                re += v * phi.cos();
                im += v * phi.sin();
            }
            let power = (re * re + im * im) / win_power;
            // One-sided: double everything except Nyquist.
            let scale = if k == half && n.is_multiple_of(2) {
                1.0
            } else {
                2.0
            };
            frequencies.push(k as f64 * fs / n as f64);
            psd.push(scale * power / fs);
        }
        Self { frequencies, psd }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.psd.len()
    }

    /// `true` if the periodogram has no bins.
    pub fn is_empty(&self) -> bool {
        self.psd.is_empty()
    }

    /// Total power in `[f_lo, f_hi]` (trapezoidal bin sum).
    pub fn band_power(&self, f_lo: Hertz, f_hi: Hertz) -> f64 {
        let df = match (self.frequencies.first(), self.frequencies.get(1)) {
            (Some(f0), Some(f1)) => f1 - f0,
            _ => 0.0,
        };
        self.frequencies
            .iter()
            .zip(self.psd.iter())
            .filter(|(f, _)| **f >= f_lo.value() && **f <= f_hi.value())
            .map(|(_, p)| p * df)
            .sum()
    }

    /// Frequency of the largest PSD bin (0 Hz for an empty periodogram).
    pub fn peak_frequency(&self) -> Hertz {
        Hertz::new(
            self.frequencies
                .iter()
                .zip(self.psd.iter())
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(f, _)| *f)
                .unwrap_or(0.0),
        )
    }

    /// Median PSD over `[f_lo, f_hi]` — a robust noise-floor estimate that
    /// ignores narrowband tones.
    pub fn noise_floor(&self, f_lo: Hertz, f_hi: Hertz) -> f64 {
        let mut band: Vec<f64> = self
            .frequencies
            .iter()
            .zip(self.psd.iter())
            .filter(|(f, _)| **f >= f_lo.value() && **f <= f_hi.value())
            .map(|(_, p)| *p)
            .collect();
        band.sort_by(|a, b| a.total_cmp(b));
        band.get(band.len() / 2).copied().unwrap_or(0.0)
    }

    /// Log-log slope of the PSD between two frequencies (decades of power
    /// per decade of frequency): ≈0 for white noise, ≈−1 for 1/f.
    pub fn loglog_slope(&self, f_lo: Hertz, f_hi: Hertz) -> f64 {
        let p_lo = self.noise_floor(f_lo, f_lo * 2.0);
        let p_hi = self.noise_floor(f_hi / 2.0, f_hi);
        if p_lo <= 0.0 || p_hi <= 0.0 {
            return 0.0;
        }
        (p_hi / p_lo).log10() / (f_hi / f_lo).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hz(v: f64) -> Hertz {
        Hertz::new(v)
    }

    fn sine(f: f64, fs: f64, n: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|k| amp * (2.0 * PI * f * k as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn sine_peak_lands_at_its_frequency() {
        let fs = 1000.0;
        let x = sine(100.0, fs, 1024, 1.0);
        let p = Periodogram::compute(&x, hz(fs));
        assert!(
            (p.peak_frequency().value() - 100.0).abs() < 2.0,
            "peak at {}",
            p.peak_frequency().value()
        );
    }

    #[test]
    fn sine_power_is_recovered() {
        // A sine of amplitude A has power A²/2.
        let fs = 1000.0;
        let x = sine(100.0, fs, 4096, 2.0);
        let p = Periodogram::compute(&x, hz(fs));
        let power = p.band_power(hz(90.0), hz(110.0));
        assert!((power - 2.0).abs() / 2.0 < 0.05, "power = {power}");
    }

    #[test]
    fn white_noise_is_flat() {
        // Deterministic pseudo-noise via LCG.
        let mut state = 7u64;
        let x: Vec<f64> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let p = Periodogram::compute(&x, hz(1000.0));
        let slope = p.loglog_slope(hz(10.0), hz(400.0));
        assert!(slope.abs() < 0.3, "white slope = {slope}");
        // Parseval: total band power ≈ variance (1/12 for uniform).
        let total = p.band_power(hz(0.0), hz(500.0));
        assert!(
            (total - 1.0 / 12.0).abs() / (1.0 / 12.0) < 0.1,
            "total = {total}"
        );
    }

    #[test]
    fn noise_floor_ignores_tones() {
        let fs = 1000.0;
        let mut x = sine(100.0, fs, 2048, 10.0);
        let mut state = 3u64;
        for v in &mut x {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *v += (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        }
        let p = Periodogram::compute(&x, hz(fs));
        let floor = p.noise_floor(hz(150.0), hz(450.0));
        let peak = p.psd[p
            .frequencies
            .iter()
            .position(|f| (*f - 100.0).abs() < 1.0)
            .unwrap()];
        assert!(peak > 100.0 * floor, "peak {peak} vs floor {floor}");
    }

    #[test]
    fn frequencies_are_uniform_grid() {
        let p = Periodogram::compute(&vec![0.0; 256], hz(512.0));
        assert_eq!(p.len(), 128);
        assert!((p.frequencies[0] - 2.0).abs() < 1e-12);
        assert!((p.frequencies[127] - 256.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn rejects_tiny_input() {
        Periodogram::compute(&[1.0, 2.0], hz(100.0));
    }
}
