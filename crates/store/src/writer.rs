//! Append-only segment writer: a dedicated thread drains a bounded queue
//! and persists frames, so the acquisition path never blocks on disk.
//!
//! # Backpressure policy
//!
//! [`Recorder::offer`] is a `try_send`: past the queue's high-water mark
//! the frame is dropped on the spot and counted, mirroring the station's
//! `StreamEnd { sent, dropped }` contract. The writer thread finalises
//! the segment (index footer, fsync) when the channel closes — on
//! [`Recorder::finish`], on drop, or when the owning session dies — so an
//! abandoned recording is still a valid, replayable segment.

use crate::error::StoreError;
use crate::format::{SegmentMeta, FOOTER_MAGIC, RECORD_META_LEN};
use bsa_link::crc::Crc8;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::thread::{Builder, JoinHandle};

/// Default bound on the writer queue, in frames.
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

/// File extension of segment files in a store root.
pub const SEGMENT_EXT: &str = "seg";

/// Outcome of offering a frame to the writer queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// The frame was queued for persistence.
    Accepted,
    /// The queue was at high-water (or the writer died); the frame was
    /// dropped and counted.
    Dropped,
}

/// Accounting returned when a recording is finalised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteSummary {
    /// Frames persisted to the segment.
    pub frames_written: u64,
    /// Frames dropped by queue backpressure.
    pub frames_dropped: u64,
    /// Final segment size in bytes, index footer included.
    pub bytes_written: u64,
    /// Acquisition epochs the segment spans.
    pub epochs: u32,
}

struct Frame {
    epoch: u32,
    payload: Vec<u8>,
}

/// Handle on an in-progress recording. Owned by the acquisition side;
/// dropping it finalises the segment in the background thread.
#[derive(Debug)]
pub struct Recorder {
    name: String,
    expected_payload: usize,
    dropped: u64,
    tx: Option<SyncSender<Frame>>,
    join: Option<JoinHandle<Result<WriteSummary, StoreError>>>,
}

/// Validates a recording name: 1..=64 bytes of `[A-Za-z0-9._-]`, not
/// starting with a dot (no hidden files, no `..` traversal).
pub fn validate_name(name: &str) -> Result<(), StoreError> {
    let ok_len = !name.is_empty() && name.len() <= 64;
    let ok_chars = name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-');
    if ok_len && ok_chars && !name.starts_with('.') {
        Ok(())
    } else {
        Err(StoreError::BadName {
            name: name.to_string(),
        })
    }
}

/// Path of the named segment inside a store root.
pub fn segment_path(root: &Path, name: &str) -> Result<PathBuf, StoreError> {
    validate_name(name)?;
    Ok(root.join(format!("{name}.{SEGMENT_EXT}")))
}

impl Recorder {
    /// Creates the segment file, writes its header synchronously (so
    /// creation errors surface here, not mid-stream) and spawns the
    /// writer thread. `expected_payload` is the byte size every offered
    /// frame must have — use [`crate::frame_payload_len`].
    pub fn create(
        root: &Path,
        name: &str,
        meta: &SegmentMeta,
        expected_payload: usize,
        queue_depth: usize,
    ) -> Result<Self, StoreError> {
        let path = segment_path(root, name)?;
        std::fs::create_dir_all(root)?;
        let file = match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(file) => file,
            Err(err) if err.kind() == ErrorKind::AlreadyExists => {
                return Err(StoreError::AlreadyExists {
                    name: name.to_string(),
                })
            }
            Err(err) => return Err(err.into()),
        };
        let header = meta.encode_header();
        let mut out = BufWriter::new(file);
        out.write_all(&header)?;
        let header_len = header.len() as u64;
        let (tx, rx) = sync_channel::<Frame>(queue_depth.max(1));
        let join = Builder::new()
            .name("bsa-store-writer".into())
            .spawn(move || run_writer(out, header_len, &rx))
            .map_err(StoreError::Io)?;
        Ok(Self {
            name: name.to_string(),
            expected_payload,
            dropped: 0,
            tx: Some(tx),
            join: Some(join),
        })
    }

    /// The recording's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Frames dropped by backpressure so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Offers one frame payload to the writer queue. Never blocks: a full
    /// queue (or a dead writer thread) drops the frame and counts it. A
    /// payload of the wrong size for the segment's kind is a caller bug
    /// and is rejected typed instead of being persisted.
    pub fn offer(&mut self, epoch: u32, payload: Vec<u8>) -> Result<Offer, StoreError> {
        if payload.len() != self.expected_payload {
            return Err(StoreError::PayloadSize {
                expected: self.expected_payload,
                got: payload.len(),
            });
        }
        let Some(tx) = self.tx.as_ref() else {
            self.dropped += 1;
            return Ok(Offer::Dropped);
        };
        match tx.try_send(Frame { epoch, payload }) {
            Ok(()) => Ok(Offer::Accepted),
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.dropped += 1;
                Ok(Offer::Dropped)
            }
        }
    }

    /// Closes the queue, waits for the writer thread to finalise the
    /// segment (index footer + fsync) and returns the accounting.
    pub fn finish(mut self) -> Result<WriteSummary, StoreError> {
        self.tx = None; // close the channel: the writer drains and finalises
        let join = self.join.take().ok_or(StoreError::WriterGone)?;
        let mut summary = join.join().map_err(|_| StoreError::WriterGone)??;
        summary.frames_dropped = self.dropped;
        Ok(summary)
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        self.tx = None;
        if let Some(join) = self.join.take() {
            // Block until the footer is on disk so the segment a dying
            // session leaves behind is valid and replayable.
            let _ = join.join();
        }
    }
}

/// Writer-thread body: drain the queue, append records, then finalise
/// with the index footer. Any I/O error aborts persistence; the error is
/// surfaced by [`Recorder::finish`] and the unfinalised segment is
/// rejected (typed) by the reader.
fn run_writer(
    mut out: BufWriter<File>,
    header_len: u64,
    rx: &Receiver<Frame>,
) -> Result<WriteSummary, StoreError> {
    let mut offsets: Vec<u64> = Vec::new();
    let mut pos = header_len;
    let mut epochs: u32 = 0;
    let mut record = Vec::new();
    for frame in rx {
        record.clear();
        record.reserve(RECORD_META_LEN + frame.payload.len() + 1);
        record.extend_from_slice(&(offsets.len() as u64).to_le_bytes());
        record.extend_from_slice(&frame.epoch.to_le_bytes());
        record.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&frame.payload);
        let mut crc = Crc8::new();
        crc.update_bytes(&record);
        record.push(crc.finish());
        out.write_all(&record)?;
        offsets.push(pos);
        pos += record.len() as u64;
        epochs = epochs.max(frame.epoch.saturating_add(1));
    }
    let mut footer = Vec::with_capacity(offsets.len() * 8 + 25);
    for &off in &offsets {
        footer.extend_from_slice(&off.to_le_bytes());
    }
    footer.extend_from_slice(&(offsets.len() as u64).to_le_bytes());
    footer.extend_from_slice(&pos.to_le_bytes());
    footer.extend_from_slice(&epochs.to_le_bytes());
    let mut crc = Crc8::new();
    crc.update_bytes(&footer);
    footer.push(crc.finish());
    footer.extend_from_slice(FOOTER_MAGIC);
    out.write_all(&footer)?;
    out.flush()?;
    let file = out.into_inner().map_err(|err| StoreError::Io(err.into()))?;
    file.sync_all()?;
    Ok(WriteSummary {
        frames_written: offsets.len() as u64,
        frames_dropped: 0,
        bytes_written: pos + footer.len() as u64,
        epochs,
    })
}
