// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! The two CMOS biosensor-array chips of Thewes et al. (DATE 2005).
//!
//! This crate is the paper's primary contribution, rebuilt as a
//! circuit-level simulation on top of the workspace substrates:
//!
//! * [`dna_chip`] — the 16×8 DNA microarray (paper Section 2, Figs. 3–4):
//!   per-pixel electrode regulation and sawtooth current-to-frequency
//!   conversion, in-pixel counters, auto-calibration, electrochemical DACs
//!   and the 6-pin serial interface.
//! * [`neuro_chip`] — the 128×128 neural-recording array (Section 3,
//!   Figs. 5–6): capacitively coupled sensor transistors at 7.8 µm pitch,
//!   per-pixel current calibration, the ×100/×7 on-chip and ×4/×2 off-chip
//!   calibrated gain chain, 8-to-1 multiplexing into 16 channels, and the
//!   2 kframes/s scanner.
//! * [`array`] — shared array geometry and addressing.
//!
//! # Examples
//!
//! Digitize one sensor current with the DNA pixel's converter:
//!
//! ```
//! use bsa_core::dna_chip::{DnaPixel, DnaPixelConfig};
//! use bsa_units::{Ampere, Seconds};
//!
//! let mut pixel = DnaPixel::nominal(DnaPixelConfig::default());
//! let count = pixel.convert_ideal(Ampere::from_nano(1.0), Seconds::from_milli(100.0));
//! assert!(count > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod dna_chip;
pub mod error;
pub mod health;
pub mod neuro_chip;
pub mod scan;

pub use error::ChipError;
pub use health::{DegradationMode, HealthMonitor, PixelHealth, YieldReport};
pub use scan::{ArenaStats, FrameArena, ScanMode, ScanOptions};
