//! IIR and FIR filters for the recorded waveforms.
//!
//! Neural recordings carry slow baseline drift (calibration droop between
//! refresh cycles) under millisecond action potentials; a high-pass/
//! band-pass separates them. The filters here are second-order biquads in
//! transposed direct form II, designed with the bilinear transform.

use bsa_units::Hertz;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// A biquad (second-order IIR) filter section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    z1: f64,
    z2: f64,
}

impl Biquad {
    /// Creates a biquad from normalized coefficients (a0 = 1).
    pub fn from_coefficients(b0: f64, b1: f64, b2: f64, a1: f64, a2: f64) -> Self {
        Self {
            b0,
            b1,
            b2,
            a1,
            a2,
            z1: 0.0,
            z2: 0.0,
        }
    }

    /// Butterworth low-pass with cutoff `fc` at sample rate `fs`
    /// (bilinear transform, Q = 1/√2).
    ///
    /// # Panics
    ///
    /// Panics unless 0 < fc < fs/2.
    pub fn lowpass(fc: Hertz, fs: Hertz) -> Self {
        let (fc, fs) = (fc.value(), fs.value());
        assert!(fc > 0.0 && fc < fs / 2.0, "cutoff must be in (0, fs/2)");
        let k = (PI * fc / fs).tan();
        let q = std::f64::consts::FRAC_1_SQRT_2;
        let norm = 1.0 / (1.0 + k / q + k * k);
        Self::from_coefficients(
            k * k * norm,
            2.0 * k * k * norm,
            k * k * norm,
            2.0 * (k * k - 1.0) * norm,
            (1.0 - k / q + k * k) * norm,
        )
    }

    /// Butterworth high-pass with cutoff `fc` at sample rate `fs`.
    ///
    /// # Panics
    ///
    /// Panics unless 0 < fc < fs/2.
    pub fn highpass(fc: Hertz, fs: Hertz) -> Self {
        let (fc, fs) = (fc.value(), fs.value());
        assert!(fc > 0.0 && fc < fs / 2.0, "cutoff must be in (0, fs/2)");
        let k = (PI * fc / fs).tan();
        let q = std::f64::consts::FRAC_1_SQRT_2;
        let norm = 1.0 / (1.0 + k / q + k * k);
        Self::from_coefficients(
            norm,
            -2.0 * norm,
            norm,
            2.0 * (k * k - 1.0) * norm,
            (1.0 - k / q + k * k) * norm,
        )
    }

    /// Processes one sample (transposed direct form II).
    pub fn process(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.z1;
        self.z1 = self.b1 * x - self.a1 * y + self.z2;
        self.z2 = self.b2 * x - self.a2 * y;
        y
    }

    /// Filters a whole slice, returning the output.
    pub fn process_slice(&mut self, xs: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(xs.len());
        self.process_into(xs, &mut out);
        out
    }

    /// Filters a whole slice into a caller-provided buffer (cleared and
    /// refilled) — the allocation-free form for hot loops.
    pub fn process_into(&mut self, xs: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(xs.iter().map(|&x| self.process(x)));
    }

    /// Filters a buffer in place — no allocation, no second buffer.
    pub fn process_in_place(&mut self, xs: &mut [f64]) {
        for x in xs.iter_mut() {
            *x = self.process(*x);
        }
    }

    /// Resets the filter state.
    pub fn reset(&mut self) {
        self.z1 = 0.0;
        self.z2 = 0.0;
    }

    /// Steady-state magnitude response at frequency `f` for sample rate
    /// `fs`, evaluated analytically from the coefficients.
    pub fn magnitude_at(&self, f: Hertz, fs: Hertz) -> f64 {
        let w = 2.0 * PI * (f / fs);
        let (re, im) = (w.cos(), -w.sin());
        // z^-1 = e^{-jw}; evaluate numerator/denominator at z^-1.
        let num = complex_add(
            complex_add((self.b0, 0.0), complex_mul((self.b1, 0.0), (re, im))),
            complex_mul((self.b2, 0.0), complex_mul((re, im), (re, im))),
        );
        let den = complex_add(
            complex_add((1.0, 0.0), complex_mul((self.a1, 0.0), (re, im))),
            complex_mul((self.a2, 0.0), complex_mul((re, im), (re, im))),
        );
        (num.0 * num.0 + num.1 * num.1).sqrt() / (den.0 * den.0 + den.1 * den.1).sqrt()
    }
}

fn complex_mul(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

fn complex_add(a: (f64, f64), b: (f64, f64)) -> (f64, f64) {
    (a.0 + b.0, a.1 + b.1)
}

/// Band-pass as a high-pass/low-pass cascade.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandPass {
    hp: Biquad,
    lp: Biquad,
}

impl BandPass {
    /// Creates a band-pass passing `[f_lo, f_hi]` at sample rate `fs`.
    ///
    /// # Panics
    ///
    /// Panics unless 0 < f_lo < f_hi < fs/2.
    pub fn new(f_lo: Hertz, f_hi: Hertz, fs: Hertz) -> Self {
        assert!(f_lo < f_hi, "band edges must be ordered");
        Self {
            hp: Biquad::highpass(f_lo, fs),
            lp: Biquad::lowpass(f_hi, fs),
        }
    }

    /// Processes one sample.
    pub fn process(&mut self, x: f64) -> f64 {
        self.lp.process(self.hp.process(x))
    }

    /// Filters a whole slice.
    pub fn process_slice(&mut self, xs: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(xs.len());
        self.process_into(xs, &mut out);
        out
    }

    /// Filters a whole slice into a caller-provided buffer (cleared and
    /// refilled) — the allocation-free form for hot loops.
    pub fn process_into(&mut self, xs: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(xs.iter().map(|&x| self.process(x)));
    }

    /// Filters a buffer in place — no allocation, no second buffer.
    pub fn process_in_place(&mut self, xs: &mut [f64]) {
        for x in xs.iter_mut() {
            *x = self.process(*x);
        }
    }

    /// Resets state.
    pub fn reset(&mut self) {
        self.hp.reset();
        self.lp.reset();
    }
}

/// Centered moving-average FIR smoother (window must be odd); the ends are
/// averaged over the available partial window.
///
/// # Panics
///
/// Panics if `window` is even or zero.
pub fn moving_average(xs: &[f64], window: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(xs.len());
    moving_average_into(xs, window, &mut out);
    out
}

/// [`moving_average`] into a caller-provided buffer (cleared and
/// refilled) — the allocation-free form for hot loops.
///
/// # Panics
///
/// Panics if `window` is even or zero.
pub fn moving_average_into(xs: &[f64], window: usize, out: &mut Vec<f64>) {
    assert!(window % 2 == 1 && window > 0, "window must be odd");
    let half = window / 2;
    out.clear();
    out.extend((0..xs.len()).map(|i| {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(xs.len());
        let window_sum: f64 = xs.get(lo..hi).map(|w| w.iter().sum()).unwrap_or(0.0);
        window_sum / (hi - lo) as f64
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hz(v: f64) -> Hertz {
        Hertz::new(v)
    }

    fn sine(f: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| (2.0 * PI * f * k as f64 / fs).sin())
            .collect()
    }

    fn rms(xs: &[f64]) -> f64 {
        (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
    }

    #[test]
    fn lowpass_passes_low_blocks_high() {
        let fs = 2000.0;
        let mut f = Biquad::lowpass(hz(100.0), hz(fs));
        let low = f.process_slice(&sine(10.0, fs, 4000));
        f.reset();
        let high = f.process_slice(&sine(900.0, fs, 4000));
        assert!(rms(&low[2000..]) > 0.65, "low rms = {}", rms(&low[2000..]));
        assert!(
            rms(&high[2000..]) < 0.05,
            "high rms = {}",
            rms(&high[2000..])
        );
    }

    #[test]
    fn highpass_blocks_dc() {
        let fs = 2000.0;
        let mut f = Biquad::highpass(hz(10.0), hz(fs));
        let out = f.process_slice(&vec![1.0; 4000]);
        assert!(
            out.last().unwrap().abs() < 1e-3,
            "DC leak = {}",
            out.last().unwrap()
        );
    }

    #[test]
    fn cutoff_gain_is_minus_3db() {
        let fs = 2000.0;
        let f = Biquad::lowpass(hz(100.0), hz(fs));
        let g = f.magnitude_at(hz(100.0), hz(fs));
        assert!(
            (g - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01,
            "g = {g}"
        );
    }

    #[test]
    fn magnitude_matches_measured_response() {
        let fs = 2000.0;
        let mut f = Biquad::lowpass(hz(150.0), hz(fs));
        let analytic = f.magnitude_at(hz(60.0), hz(fs));
        let out = f.process_slice(&sine(60.0, fs, 8000));
        let measured = rms(&out[4000..]) / rms(&sine(60.0, fs, 8000)[4000..]);
        assert!(
            (measured - analytic).abs() < 0.02,
            "{measured} vs {analytic}"
        );
    }

    #[test]
    fn bandpass_selects_band() {
        let fs = 2000.0;
        let mut bp = BandPass::new(hz(50.0), hz(500.0), hz(fs));
        let inband = bp.process_slice(&sine(200.0, fs, 4000));
        bp.reset();
        let below = bp.process_slice(&sine(2.0, fs, 4000));
        bp.reset();
        let above = bp.process_slice(&sine(950.0, fs, 4000));
        assert!(rms(&inband[2000..]) > 0.6);
        assert!(rms(&below[2000..]) < 0.1);
        assert!(rms(&above[2000..]) < 0.1);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn bandpass_rejects_inverted_edges() {
        BandPass::new(hz(500.0), hz(50.0), hz(2000.0));
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn lowpass_rejects_cutoff_above_nyquist() {
        Biquad::lowpass(hz(1500.0), hz(2000.0));
    }

    #[test]
    fn moving_average_smooths_and_preserves_mean() {
        let xs: Vec<f64> = (0..100)
            .map(|k| if k % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let out = moving_average(&xs, 5);
        assert_eq!(out.len(), xs.len());
        assert!(rms(&out[10..90]) < rms(&xs));
        // A constant signal is unchanged, including the edges.
        let c = moving_average(&[3.0; 20], 7);
        assert!(c.iter().all(|x| (x - 3.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn moving_average_rejects_even_window() {
        moving_average(&[1.0, 2.0], 2);
    }

    #[test]
    fn scratch_variants_match_allocating_forms() {
        let fs = 2000.0;
        let xs = sine(80.0, fs, 500);

        let mut f = Biquad::lowpass(hz(100.0), hz(fs));
        let reference = f.process_slice(&xs);
        f.reset();
        let mut buf = Vec::new();
        f.process_into(&xs, &mut buf);
        assert_eq!(buf, reference);
        f.reset();
        let mut in_place = xs.clone();
        f.process_in_place(&mut in_place);
        assert_eq!(in_place, reference);

        let mut bp = BandPass::new(hz(50.0), hz(500.0), hz(fs));
        let bp_ref = bp.process_slice(&xs);
        bp.reset();
        bp.process_into(&xs, &mut buf);
        assert_eq!(buf, bp_ref);
        bp.reset();
        let mut bp_in_place = xs.clone();
        bp.process_in_place(&mut bp_in_place);
        assert_eq!(bp_in_place, bp_ref);

        let ma_ref = moving_average(&xs, 5);
        moving_average_into(&xs, 5, &mut buf);
        assert_eq!(buf, ma_ref);
    }

    #[test]
    fn filter_state_reset_restores_determinism() {
        let fs = 2000.0;
        let mut f = Biquad::lowpass(hz(100.0), hz(fs));
        let a = f.process_slice(&sine(50.0, fs, 100));
        f.reset();
        let b = f.process_slice(&sine(50.0, fs, 100));
        assert_eq!(a, b);
    }
}
