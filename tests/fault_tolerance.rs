#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! End-to-end fault tolerance: every fault class injected into both chip
//! pipelines, with graceful degradation down to correct genotyping calls.
//!
//! DNA path: fault injection → calibration retry/escalation → robust
//! serial readout → dead-pixel masking → redundant-spot majority voting.
//! Neural path: fault injection → self-test health screen → recording →
//! neighbor interpolation over the usable mask.

use cmos_biosensor_arrays::chips::array::{ArrayGeometry, PixelAddress};
use cmos_biosensor_arrays::chips::dna_chip::{DnaChip, DnaChipConfig, SampleMix};
use cmos_biosensor_arrays::chips::neuro_chip::{NeuroChip, NeuroChipConfig};
use cmos_biosensor_arrays::chips::{DegradationMode, PixelHealth};
use cmos_biosensor_arrays::dsp::calling::MatchCaller;
use cmos_biosensor_arrays::dsp::frames::FrameStack;
use cmos_biosensor_arrays::dsp::masking::PixelMask;
use cmos_biosensor_arrays::electrochem::redundancy::RedundantLayout;
use cmos_biosensor_arrays::electrochem::sequence::DnaSequence;
use cmos_biosensor_arrays::faults::{FaultClass, FaultKind, InjectionPlan};
use cmos_biosensor_arrays::neuro::culture::Culture;
use cmos_biosensor_arrays::units::{Ampere, Meter, Molar, Seconds, Volt};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// 42 targets × 3 interleaved replicates on the 128-site array.
const TARGETS: usize = 42;
const REPLICATES: usize = 3;
const PRESENT: [usize; 5] = [4, 17, 23, 30, 41];

fn stringent_config() -> DnaChipConfig {
    let mut config = DnaChipConfig::default();
    config.assay.wash_stringency = 100.0;
    config
}

fn genotyping_panel() -> (RedundantLayout, Vec<DnaSequence>, SampleMix) {
    let layout = RedundantLayout::new(TARGETS, REPLICATES);
    let mut rng = SmallRng::seed_from_u64(11);
    let probes: Vec<DnaSequence> = (0..TARGETS)
        .map(|_| DnaSequence::random(22, &mut rng))
        .collect();
    let mut sample = SampleMix::new();
    for &t in &PRESENT {
        sample = sample.with_target(probes[t].reverse_complement(), Molar::from_nano(100.0));
    }
    (layout, probes, sample)
}

/// A plan exercising every fault class, ≤ 10 % of the 128 sites faulty.
fn dna_fault_plan() -> InjectionPlan {
    InjectionPlan::new(99)
        .at(0, 3, FaultKind::DeadPixel)
        .at(1, 7, FaultKind::StuckCount { count: 50_000 })
        .at(
            2,
            2,
            FaultKind::LeakyElectrode {
                leakage: Ampere::from_pico(5.0),
            },
        )
        .at(
            3,
            9,
            FaultKind::ComparatorDrift {
                offset: Volt::from_milli(400.0),
            },
        )
        .at(4, 11, FaultKind::ComparatorStuck { high: true })
        .at(5, 13, FaultKind::DacSaturation { limit: 1.05 })
        .at(
            6,
            1,
            FaultKind::GainClipping {
                limit: Volt::from_milli(50.0),
            },
        )
        .array_wide(0.03, FaultKind::DeadPixel)
        .serial_bit_errors(1e-3)
}

/// Runs the full fault-tolerant pipeline: assay → robust serial link →
/// estimates → per-spot calls → health-masked majority vote.
fn voted_calls(chip: &mut DnaChip, sample: &SampleMix, layout: &RedundantLayout) -> Vec<bool> {
    let readout = chip.run_assay(sample);
    let robust = chip.serial_readout_robust(&readout, 8);
    assert!(
        robust.is_complete(),
        "link must recover at this BER: {:?}",
        robust.stats
    );
    let counts: Vec<u64> = robust
        .into_readings()
        .expect("complete readout")
        .iter()
        .map(|r| r.count)
        .collect();
    let estimates = chip
        .estimate_currents(&counts)
        .expect("one count per pixel");
    let currents: Vec<f64> = estimates.iter().map(|a| a.value()).collect();
    let calls = MatchCaller::default().call(&currents);
    let spot_matches: Vec<bool> = calls
        .calls
        .iter()
        .map(|c| *c == cmos_biosensor_arrays::dsp::calling::Call::Match)
        .collect();
    let usable = chip.health().usable_mask();
    layout
        .vote(&spot_matches, &usable)
        .iter()
        .map(|v| v.matched())
        .collect()
}

#[test]
fn dna_assay_survives_every_fault_class() {
    let (layout, probes, sample) = genotyping_panel();
    let spotted = layout.expand(&probes);
    let truth: Vec<bool> = (0..TARGETS).map(|t| PRESENT.contains(&t)).collect();

    // Fault-free reference run.
    let mut clean = DnaChip::new(stringent_config()).unwrap();
    clean.spot_all(&spotted);
    clean.auto_calibrate();
    let reference = voted_calls(&mut clean, &sample, &layout);
    assert_eq!(reference, truth, "fault-free panel must call perfectly");
    assert!(clean.yield_report().is_clean());

    // Faulty die: same panel, every fault class injected.
    let mut chip = DnaChip::new(stringent_config()).unwrap();
    let faults = dna_fault_plan().compile(chip.geometry().rows(), chip.geometry().cols());
    let faulty_fraction = faults.faulty_pixel_count() as f64 / chip.geometry().len() as f64;
    assert!(
        faulty_fraction <= 0.10,
        "plan must stay within the 10 % budget, got {faulty_fraction}"
    );
    chip.spot_all(&spotted);
    chip.inject_faults(&faults).unwrap();
    chip.auto_calibrate();

    let degraded = voted_calls(&mut chip, &sample, &layout);
    assert_eq!(
        degraded, reference,
        "≤10 % faults must not change a single genotyping call"
    );

    // Every injected pixel fault is repaired or flagged.
    let report = chip.yield_report();
    for row in 0..chip.geometry().rows() {
        for col in 0..chip.geometry().cols() {
            let f = faults.at(row, col);
            if !f.is_faulty() {
                continue;
            }
            let idx = row * chip.geometry().cols() + col;
            let state = chip.health().state(idx);
            let flagged = state != PixelHealth::Healthy;
            // Unflagged faults (small leaks, mild DAC saturation) must be
            // harmless: the per-spot call matches the reference die's.
            if !flagged {
                let spot_ok = f.leakage.value().abs() < 1e-10 || f.dac_limit.is_some();
                assert!(
                    spot_ok,
                    "unflagged fault at ({row},{col}) is neither repaired nor benign: {f:?}"
                );
            }
        }
    }

    // The yield report records the injection inventory and the degradation.
    assert_eq!(report.degradation, DegradationMode::Degraded);
    for class in [
        FaultClass::DeadPixel,
        FaultClass::StuckCount,
        FaultClass::LeakyElectrode,
        FaultClass::ComparatorDrift,
        FaultClass::ComparatorStuck,
        FaultClass::DacSaturation,
        FaultClass::GainClipping,
        FaultClass::SerialBitErrors,
    ] {
        assert!(
            report.injected.contains_key(&class),
            "{class} missing from the injection inventory"
        );
    }
    assert!(report.dead >= 2, "dead + stuck pixels must be masked");
    assert!(report.usable_fraction() > 0.85);
}

#[test]
fn neural_recording_survives_every_fault_class() {
    // The full 128×128 die, as in the paper.
    let mut chip = NeuroChip::new(NeuroChipConfig::default()).unwrap();
    let geometry = chip.config().geometry;
    assert_eq!((geometry.rows(), geometry.cols()), (128, 128));

    let plan = InjectionPlan::new(7)
        .at(10, 10, FaultKind::DeadPixel)
        .at(
            20,
            20,
            FaultKind::LeakyElectrode {
                leakage: Ampere::from_micro(2.0),
            },
        )
        .at(
            30,
            30,
            FaultKind::GainClipping {
                limit: Volt::from_milli(50.0),
            },
        )
        .at(40, 40, FaultKind::StuckCount { count: 1 })
        .at(
            50,
            50,
            FaultKind::ComparatorDrift {
                offset: Volt::from_milli(100.0),
            },
        )
        .at(60, 60, FaultKind::ComparatorStuck { high: false })
        .at(70, 70, FaultKind::DacSaturation { limit: 1.01 })
        .array_wide(0.01, FaultKind::DeadPixel)
        .lose_channel(12)
        .serial_bit_errors(1e-3);
    let faults = plan.compile(geometry.rows(), geometry.cols());
    chip.inject_faults(&faults).unwrap();
    chip.calibrate(Seconds::ZERO);

    let culture = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
    let rec = chip.record(&culture, Seconds::ZERO, 3);

    // No poison values anywhere, and the lost channel reads flat zero.
    let cols_per_ch = geometry.cols() / chip.config().channels;
    for frame in rec.frames() {
        for (idx, s) in frame.samples().iter().enumerate() {
            assert!(s.is_finite(), "non-finite sample at {idx}");
            let ch = (idx % geometry.cols()) / cols_per_ch;
            if ch == 12 {
                assert_eq!(*s, 0.0, "lost channel must be silent at {idx}");
            }
        }
    }

    // Health screen: injected dead pixel and the whole lost channel are
    // masked; the clipped pixel is flagged but stays usable.
    let health = chip.health();
    assert_eq!(health.state(10 * geometry.cols() + 10), PixelHealth::Dead);
    assert_eq!(
        health.state(30 * geometry.cols() + 30),
        PixelHealth::OutOfFamily
    );
    assert_eq!(
        health.state(20 * geometry.cols() + 12 * cols_per_ch),
        PixelHealth::Dead
    );

    let report = chip.yield_report();
    assert_eq!(report.lost_channels, vec![12]);
    assert_eq!(report.total_channels, chip.config().channels);
    assert_eq!(report.degradation, DegradationMode::Degraded);
    assert!(report.injected.contains_key(&FaultClass::ChannelLoss));
    assert!(
        report.dead >= 128 / 16 * 128,
        "the lost channel masks its pixels"
    );

    // Graceful degradation: interpolate the masked pixels from usable
    // neighbors; every masked sample gets repaired.
    let mask = PixelMask::new(geometry.rows(), geometry.cols(), health.usable_mask());
    let stack = FrameStack::new(
        geometry.rows(),
        geometry.cols(),
        rec.frames().iter().map(|f| f.samples().to_vec()).collect(),
    );
    let repaired = mask.repair_stack(&stack);
    let mut frame0 = stack.frame(0).to_vec();
    let repair = mask.interpolate(&mut frame0);
    assert_eq!(repair.repaired(), mask.masked_count());
    assert_eq!(repaired.frame(0), frame0.as_slice());
}

#[test]
fn fault_free_dies_report_full_performance() {
    let mut dna = DnaChip::new(DnaChipConfig::default()).unwrap();
    dna.auto_calibrate();
    assert_eq!(
        dna.yield_report().degradation,
        DegradationMode::FullPerformance
    );

    let mut neuro = NeuroChip::new(NeuroChipConfig {
        geometry: ArrayGeometry::new(16, 16, Meter::from_micro(7.8)).unwrap(),
        channels: 4,
        ..NeuroChipConfig::default()
    })
    .unwrap();
    neuro.calibrate(Seconds::ZERO);
    let report = neuro.yield_report();
    assert!(report.is_clean(), "clean small die: {report}");
    assert_eq!(PixelAddress::new(0, 0).row, 0);
}
