//! Property-based tests of the assay physics.

use bsa_electrochem::assay::{AssayConditions, SpottedSite};
use bsa_electrochem::enzyme::EnzymeLabel;
use bsa_electrochem::redox::RedoxCyclingModel;
use bsa_electrochem::sequence::{Base, DnaSequence};
use bsa_units::{Molar, Seconds, SquareMeter};
use proptest::prelude::*;

fn arb_base() -> impl Strategy<Value = Base> {
    prop_oneof![Just(Base::A), Just(Base::C), Just(Base::G), Just(Base::T)]
}

fn arb_sequence(lo: usize, hi: usize) -> impl Strategy<Value = DnaSequence> {
    prop::collection::vec(arb_base(), lo..=hi).prop_map(DnaSequence::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full protocol never produces coverage outside [0, yield].
    #[test]
    fn protocol_coverage_bounded(
        probe in arb_sequence(15, 40),
        mismatches in 0usize..8,
        log_c in -12.0f64..-5.0,
        stringency in 1.0f64..500.0,
    ) {
        let mismatches = mismatches.min(probe.len());
        let target = probe.reverse_complement().with_mismatches(mismatches);
        let cond = AssayConditions {
            wash_stringency: stringency,
            ..AssayConditions::default()
        };
        let site = SpottedSite::new(probe);
        let r = site.run(&target, Molar::new(10f64.powf(log_c)), &cond);
        prop_assert!(r.final_coverage >= 0.0);
        prop_assert!(r.final_coverage <= cond.immobilization_yield + 1e-12);
        prop_assert!(r.final_coverage <= r.coverage_after_hybridization + 1e-12);
        prop_assert!((0.0..=1.0).contains(&r.wash_loss()));
    }

    /// Washing harder never increases retained coverage.
    #[test]
    fn wash_is_monotone_in_stringency(
        probe in arb_sequence(18, 25),
        mm in 0usize..3,
        s1 in 1.0f64..200.0,
        s2 in 1.0f64..200.0,
    ) {
        prop_assume!((s1 - s2).abs() > 1e-6);
        let (gentle, harsh) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
        let target = probe.reverse_complement().with_mismatches(mm.min(probe.len()));
        let site = SpottedSite::new(probe);
        let run = |stringency: f64| {
            let cond = AssayConditions { wash_stringency: stringency, ..AssayConditions::default() };
            site.run(&target, Molar::from_nano(100.0), &cond).final_coverage
        };
        prop_assert!(run(harsh) <= run(gentle) + 1e-12);
    }

    /// Redox current is monotone in coverage and bounded by the θ = 1 value
    /// plus background.
    #[test]
    fn redox_current_bounded(theta in 0.0f64..1.0) {
        let m = RedoxCyclingModel::default();
        let i = m.sensor_current(theta);
        prop_assert!(i >= m.sensor_current(0.0));
        prop_assert!(i <= m.sensor_current(1.0));
        prop_assert!(i.value().is_finite());
    }

    /// Redox cycling always beats the single-electrode baseline (above
    /// background).
    #[test]
    fn cycling_never_loses(theta in 0.001f64..1.0) {
        let m = RedoxCyclingModel::default();
        let cycled = m.sensor_current(theta) - m.sensor_current(0.0);
        let single = m.single_electrode_current(theta) - m.single_electrode_current(0.0);
        prop_assert!(cycled.value() >= single.value());
    }

    /// Michaelis–Menten turnover is bounded by k_cat and monotone in S.
    #[test]
    fn enzyme_turnover_bounded(s_um in 0.0f64..1e5) {
        let e = EnzymeLabel::default();
        let v = e.turnover_rate(Molar::from_micro(s_um));
        prop_assert!(v >= 0.0 && v <= e.k_cat);
        let v2 = e.turnover_rate(Molar::from_micro(s_um * 2.0 + 1.0));
        prop_assert!(v2 >= v);
    }

    /// Product flux scales linearly in area and coverage.
    #[test]
    fn flux_linearity(theta in 0.0f64..1.0, area_scale in 0.1f64..10.0) {
        let e = EnzymeLabel::default();
        let s = Molar::from_milli(1.0);
        let a1 = SquareMeter::new(1e-8);
        let a2 = SquareMeter::new(1e-8 * area_scale);
        let f1 = e.product_flux_mol_per_s(theta, 3e15, a1, s);
        let f2 = e.product_flux_mol_per_s(theta, 3e15, a2, s);
        if f1 > 0.0 {
            prop_assert!((f2 / f1 / area_scale - 1.0).abs() < 1e-9);
        }
    }

    /// Longer hybridization never reduces coverage (no wash in between).
    #[test]
    fn hybridization_time_monotone(
        probe in arb_sequence(18, 25),
        t1 in 1.0f64..1e4,
        t2 in 1.0f64..1e4,
    ) {
        prop_assume!((t1 - t2).abs() > 1e-3);
        let (short, long) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
        let target = probe.reverse_complement();
        let model = bsa_electrochem::hybridization::HybridizationModel::default();
        let c = Molar::from_nano(10.0);
        let temp = bsa_units::consts::ROOM_TEMPERATURE;
        let a = model.coverage_after(&probe, &target, c, temp, 0.0, Seconds::new(short));
        let b = model.coverage_after(&probe, &target, c, temp, 0.0, Seconds::new(long));
        prop_assert!(b >= a - 1e-12);
    }
}
