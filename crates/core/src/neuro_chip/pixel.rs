//! The calibrated sensor pixel (paper Fig. 6, M1/M2/S1–S3).
//!
//! "Since the maximum signal amplitudes are between 100 µV and 5 mV, the
//! sensor MOSFETs (M1) must be calibrated to compensate for the effect of
//! their parameter variations. This is done by closing switch S1 and
//! forcing a current through M1 by current source M2. After opening S1
//! again, a voltage related to the calibration current is stored on the
//! gate of M1. … all sensor transistors M1 within a row provide the same
//! current when selected independent of their individual device
//! parameters."

use bsa_circuit::mismatch::PelgromModel;
use bsa_circuit::mosfet::{Mosfet, MosfetParams};
use bsa_circuit::noise::GaussianSampler;
use bsa_circuit::CircuitError;
use bsa_faults::PixelFaults;
use bsa_units::{Ampere, Farad, Seconds, Siemens, Volt};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Design values of the neural pixel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuroPixelConfig {
    /// Sensor transistor geometry/process (M1).
    pub sensor_fet: MosfetParams,
    /// Calibration current forced by M2.
    pub cal_current: Ampere,
    /// Capacitive coupling ratio from electrode to M1 gate
    /// (C_electrode / C_total of the floating node).
    pub coupling_ratio: f64,
    /// Calibration storage capacitance on the gate node.
    pub storage_cap: Farad,
    /// Residual offset σ from S1 charge injection, referred to the gate
    /// (static per pixel).
    pub injection_sigma: Volt,
    /// Mean droop rate of the stored gate voltage (leakage), V/s.
    pub droop_rate_v_per_s: f64,
    /// Drain bias of M1 during readout.
    pub v_drain: Volt,
    /// Source potential of M1.
    pub v_source: Volt,
    /// Pelgrom mismatch model of the process.
    pub pelgrom: PelgromModel,
    /// Relative mismatch σ of the M2 calibration current between pixels.
    pub cal_current_rel_sigma: f64,
}

impl Default for NeuroPixelConfig {
    /// Values for the paper's 0.5 µm process: a 4 µm / 1.5 µm sensor FET
    /// biased at 2 µA, 80 % electrode coupling, 150 µV injection residual.
    fn default() -> Self {
        Self {
            sensor_fet: MosfetParams::n05um(4.0, 1.5),
            cal_current: Ampere::from_micro(2.0),
            coupling_ratio: 0.8,
            storage_cap: Farad::from_femto(50.0),
            injection_sigma: Volt::from_micro(150.0),
            // σ of the per-pixel leakage rate (zero-mean across the array:
            // junction leakage direction varies pixel to pixel).
            droop_rate_v_per_s: 3e-4,
            v_drain: Volt::new(2.5),
            v_source: Volt::ZERO,
            pelgrom: PelgromModel::cmos05um(),
            cal_current_rel_sigma: 0.01,
        }
    }
}

/// One neural-recording pixel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuroPixel {
    config: NeuroPixelConfig,
    /// M1 with its sampled mismatch.
    sensor: Mosfet,
    /// Actual M2 current of this pixel (nominal + mirror mismatch).
    cal_current_actual: Ampere,
    /// Static injection offset of this pixel's S1.
    injection_offset: Volt,
    /// This pixel's droop rate (leakage polarity/magnitude varies).
    droop_rate: f64,
    /// Stored gate voltage (None until first calibration).
    stored_gate: Option<Volt>,
    /// Time of the last calibration.
    cal_time: Seconds,
    /// The array-wide nominal gate bias used while uncalibrated, solved
    /// once at construction (bisecting the device equation per read would
    /// dominate the uncalibrated scan).
    global_gate: Volt,
    /// Injected defects (default: none).
    faults: PixelFaults,
}

/// Global gate bias: the voltage that makes a *nominal* device conduct
/// the nominal calibration current.
///
/// A config whose calibration current exceeds what the sensor FET can
/// conduct has no such bias — that is a configuration error (reachable
/// from an `AttachNeuro` wire request), not a panic.
fn global_gate_bias(nominal: &Mosfet, config: &NeuroPixelConfig) -> Result<Volt, CircuitError> {
    nominal
        .gate_voltage_for_current(
            config.cal_current,
            config.v_source,
            config.v_drain,
            Volt::ZERO,
            Volt::new(5.0),
        )
        .ok_or(CircuitError::NoOperatingPoint {
            name: "nominal gate bias",
        })
}

impl NeuroPixel {
    /// Instantiates a pixel, sampling its device mismatch from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if the sensor-FET parameters are invalid
    /// or the calibration current has no nominal operating point.
    pub fn sample<R: Rng>(config: NeuroPixelConfig, rng: &mut R) -> Result<Self, CircuitError> {
        let nominal = Mosfet::try_new(config.sensor_fet.clone())?;
        let global_gate = global_gate_bias(&nominal, &config)?;
        let mut g = GaussianSampler::new();
        let sensor = config.pelgrom.instantiate(&nominal, rng);
        let cal_err = config.cal_current_rel_sigma * g.sample(rng);
        let injection_offset = config.injection_sigma * g.sample(rng);
        let droop_rate = config.droop_rate_v_per_s * g.sample(rng);
        Ok(Self {
            cal_current_actual: config.cal_current * (1.0 + cal_err),
            injection_offset,
            droop_rate,
            stored_gate: None,
            cal_time: Seconds::ZERO,
            global_gate,
            faults: PixelFaults::default(),
            sensor,
            config,
        })
    }

    /// A mismatch-free pixel (for reference measurements).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] under the same conditions as
    /// [`NeuroPixel::sample`].
    pub fn nominal(config: NeuroPixelConfig) -> Result<Self, CircuitError> {
        let sensor = Mosfet::try_new(config.sensor_fet.clone())?;
        let global_gate = global_gate_bias(&sensor, &config)?;
        Ok(Self {
            sensor,
            cal_current_actual: config.cal_current,
            injection_offset: Volt::ZERO,
            droop_rate: 0.0,
            stored_gate: None,
            cal_time: Seconds::ZERO,
            global_gate,
            faults: PixelFaults::default(),
            config,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &NeuroPixelConfig {
        &self.config
    }

    /// Whether this pixel has been calibrated at least once.
    pub fn is_calibrated(&self) -> bool {
        self.stored_gate.is_some()
    }

    /// This pixel's sensor transistor (with its mismatch).
    pub fn sensor(&self) -> &Mosfet {
        &self.sensor
    }

    /// The injected defects on this pixel.
    pub fn faults(&self) -> &PixelFaults {
        &self.faults
    }

    /// Injects (or clears, with the default value) defects on this pixel.
    /// Only the dead, leakage and gain-clipping components act on a neural
    /// pixel; counter- and comparator-class faults belong to the DNA
    /// converter and are inert here.
    pub fn set_faults(&mut self, faults: PixelFaults) {
        self.faults = faults;
    }

    /// Performs the S1/M2 calibration at absolute time `now`: the gate is
    /// driven to the voltage where M1 conducts exactly M2's current, then
    /// S1 opens and injects this pixel's static charge-injection offset.
    ///
    /// A pixel whose mismatch pushes the calibration current outside the
    /// device's conduction range cannot converge; it stays uncalibrated
    /// (falling back to the global bias) rather than aborting the scan.
    pub fn calibrate(&mut self, now: Seconds) {
        match self.sensor.gate_voltage_for_current(
            self.cal_current_actual,
            self.config.v_source,
            self.config.v_drain,
            Volt::ZERO,
            Volt::new(5.0),
        ) {
            Some(vg) => {
                self.stored_gate = Some(vg + self.injection_offset);
                self.cal_time = now;
            }
            None => self.stored_gate = None,
        }
    }

    /// Effective gate voltage at time `now` (stored value minus droop),
    /// before signal coupling. Falls back to the *nominal* design-point
    /// gate bias when uncalibrated — the "global bias" an uncalibrated
    /// array would use.
    pub fn effective_gate(&self, now: Seconds) -> Volt {
        match self.stored_gate {
            Some(v) => v - Volt::new(self.droop_rate * (now - self.cal_time).value().max(0.0)),
            None => self.global_gate,
        }
    }

    /// Discards any stored calibration, returning the pixel to the global
    /// gate bias. Injected faults are preserved (unlike re-instantiating
    /// the pixel, which would silently drop them).
    pub fn clear_calibration(&mut self) {
        self.stored_gate = None;
        self.cal_time = Seconds::ZERO;
    }

    /// Reads the pixel at time `now` with cleft potential `v_cleft`:
    /// returns the difference current ΔI = I_M1 − I_M2 that the regulation
    /// loop (A, M3, M4) nulls and the column amplifier magnifies.
    ///
    /// A dead pixel (broken M1 or stuck S3) contributes no difference
    /// current at all; an injected electrode leakage adds directly to ΔI.
    pub fn read(&self, v_cleft: Volt, now: Seconds) -> Ampere {
        if self.faults.dead {
            return Ampere::ZERO;
        }
        let vg = self.effective_gate(now) + v_cleft * self.config.coupling_ratio;
        let i_m1 = self
            .sensor
            .drain_current(vg, self.config.v_source, self.config.v_drain);
        i_m1 - self.cal_current_actual + self.faults.leakage
    }

    /// Small-signal conversion gain ∂ΔI/∂V_cleft at the calibrated
    /// operating point: g_m(M1) × coupling ratio.
    pub fn conversion_gain(&self, now: Seconds) -> Siemens {
        let vg = self.effective_gate(now);
        self.sensor
            .gm(vg, self.config.v_source, self.config.v_drain)
            * self.config.coupling_ratio
    }

    /// First-order expansion of [`NeuroPixel::read`] around the operating
    /// point at `t_lin` (typically the last calibration instant):
    ///
    /// ```text
    /// ΔI(v_cleft, t) ≈ offset + slope·(t − t_lin) + gm·v_cleft
    /// ```
    ///
    /// `offset` is the exact residual difference current at zero signal
    /// (including leakage faults), `slope` captures stored-gate droop
    /// (−g_m(M1)·droop_rate for a calibrated pixel, zero on the
    /// time-invariant global bias), and `gm` is the conversion gain. A dead
    /// pixel returns all-zero coefficients, matching its exactly-zero read.
    ///
    /// Valid while |v_cleft| and the accumulated droop stay small against
    /// n·U_T — see DESIGN.md §13 for the curvature bound and the
    /// re-linearization cadence that keeps this true.
    pub fn linearize(&self, t_lin: Seconds) -> PixelLinearization {
        if self.faults.dead {
            return PixelLinearization::DEAD;
        }
        let vg = self.effective_gate(t_lin);
        let (i_m1, gm_gate) =
            self.sensor
                .current_and_gm(vg, self.config.v_source, self.config.v_drain);
        let offset = i_m1 - self.cal_current_actual + self.faults.leakage;
        let droop = if self.stored_gate.is_some() {
            self.droop_rate
        } else {
            0.0
        };
        PixelLinearization {
            offset,
            slope_a_per_s: -gm_gate.value() * droop,
            gm: gm_gate * self.config.coupling_ratio,
        }
    }
}

/// Per-pixel small-signal transfer coefficients produced by
/// [`NeuroPixel::linearize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PixelLinearization {
    /// Residual difference current at zero signal, at the expansion point.
    pub offset: Ampere,
    /// Drift of the residual in A/s from stored-gate droop.
    pub slope_a_per_s: f64,
    /// Conversion gain ∂ΔI/∂V_cleft at the expansion point.
    pub gm: Siemens,
}

impl PixelLinearization {
    /// The all-zero coefficients of a dead pixel.
    pub const DEAD: Self = Self {
        offset: Ampere::ZERO,
        slope_a_per_s: 0.0,
        gm: Siemens::ZERO,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sampled(seed: u64) -> NeuroPixel {
        let mut rng = SmallRng::seed_from_u64(seed);
        NeuroPixel::sample(NeuroPixelConfig::default(), &mut rng).expect("default config valid")
    }

    #[test]
    fn calibration_nulls_the_difference_current() {
        let mut p = sampled(1);
        let before = p.read(Volt::ZERO, Seconds::ZERO).abs();
        p.calibrate(Seconds::ZERO);
        let after = p.read(Volt::ZERO, Seconds::ZERO).abs();
        assert!(
            after.value() < before.value() / 10.0,
            "before {before}, after {after}"
        );
        // Residual only from injection offset: |ΔI| ≈ gm·offset ≲ 30 nA.
        assert!(after.value() < 50e-9, "residual = {after}");
    }

    #[test]
    fn uncalibrated_offsets_swamp_neural_signals() {
        // The paper's core claim: parameter variation ≫ signal.
        let mut offsets = Vec::new();
        for seed in 0..64 {
            let p = sampled(seed);
            offsets.push(p.read(Volt::ZERO, Seconds::ZERO).value().abs());
        }
        offsets.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_offset = offsets[32];
        let p = sampled(999);
        let signal = {
            let mut q = p.clone();
            q.calibrate(Seconds::ZERO);
            (q.read(Volt::from_micro(100.0), Seconds::ZERO) - q.read(Volt::ZERO, Seconds::ZERO))
                .abs()
        };
        assert!(
            median_offset > 5.0 * signal.value(),
            "median offset {median_offset} vs 100 µV signal {}",
            signal.value()
        );
    }

    #[test]
    fn signal_response_is_linear_in_small_signal_range() {
        let mut p = sampled(2);
        p.calibrate(Seconds::ZERO);
        let base = p.read(Volt::ZERO, Seconds::ZERO);
        let d1 = (p.read(Volt::from_micro(500.0), Seconds::ZERO) - base).value();
        let d2 = (p.read(Volt::from_milli(1.0), Seconds::ZERO) - base).value();
        assert!((d2 / d1 - 2.0).abs() < 0.1, "ratio = {}", d2 / d1);
    }

    #[test]
    fn conversion_gain_predicts_small_signal_response() {
        let mut p = sampled(3);
        p.calibrate(Seconds::ZERO);
        let gain = p.conversion_gain(Seconds::ZERO);
        let base = p.read(Volt::ZERO, Seconds::ZERO);
        let d = (p.read(Volt::from_micro(100.0), Seconds::ZERO) - base).value();
        let predicted = gain.value() * 100e-6;
        assert!(
            (d - predicted).abs() / predicted < 0.05,
            "d {d} vs {predicted}"
        );
    }

    #[test]
    fn droop_degrades_stored_calibration() {
        // Across many pixels the zero-input spread grows as stored
        // calibrations leak, and recalibration restores it.
        let mut rng = SmallRng::seed_from_u64(41);
        let mut pixels: Vec<NeuroPixel> = (0..256)
            .map(|_| {
                NeuroPixel::sample(NeuroPixelConfig::default(), &mut rng)
                    .expect("default config valid")
            })
            .collect();
        for p in &mut pixels {
            p.calibrate(Seconds::ZERO);
        }
        let spread = |pixels: &[NeuroPixel], now: Seconds| -> f64 {
            let v: Vec<f64> = pixels
                .iter()
                .map(|p| p.read(Volt::ZERO, now).value())
                .collect();
            let m = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
        };
        let fresh = spread(&pixels, Seconds::ZERO);
        let stale = spread(&pixels, Seconds::new(10.0));
        assert!(stale > 2.0 * fresh, "fresh {fresh}, 10 s stale {stale}");
        // Recalibration restores the fresh spread.
        for p in &mut pixels {
            p.calibrate(Seconds::new(10.0));
        }
        let recal = spread(&pixels, Seconds::new(10.0));
        assert!(recal < 1.1 * fresh, "recal {recal} vs fresh {fresh}");
    }

    #[test]
    fn different_pixels_calibrate_to_same_current() {
        // "all sensor transistors M1 within a row provide the same current
        // when selected independent of their individual device parameters"
        // — up to injection residual and M2 mirror mismatch.
        let mut currents = Vec::new();
        for seed in 0..32 {
            let mut p = sampled(seed);
            p.calibrate(Seconds::ZERO);
            let vg = p.effective_gate(Seconds::ZERO);
            let i_m1 = p
                .sensor
                .drain_current(vg, p.config().v_source, p.config().v_drain);
            currents.push(i_m1.value());
        }
        let mean = currents.iter().sum::<f64>() / currents.len() as f64;
        let sd = (currents.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / currents.len() as f64)
            .sqrt();
        // Residual spread ≲ 1 % (M2 mismatch dominated), versus the tens of
        // percent an uncalibrated array shows.
        assert!(sd / mean < 0.02, "calibrated spread = {}", sd / mean);
    }

    #[test]
    fn nominal_pixel_reads_zero_after_calibration() {
        let mut p = NeuroPixel::nominal(NeuroPixelConfig::default()).expect("default config valid");
        p.calibrate(Seconds::ZERO);
        let r = p.read(Volt::ZERO, Seconds::ZERO).abs();
        assert!(r.value() < 1e-12, "nominal residual = {r}");
    }

    #[test]
    fn dead_pixel_gives_no_difference_current() {
        let mut p = sampled(11);
        p.calibrate(Seconds::ZERO);
        let mut f = PixelFaults::default();
        f.merge(bsa_faults::FaultKind::DeadPixel);
        p.set_faults(f);
        assert_eq!(p.read(Volt::from_milli(5.0), Seconds::ZERO), Ampere::ZERO);
        assert_eq!(p.read(Volt::ZERO, Seconds::ZERO), Ampere::ZERO);
    }

    #[test]
    fn leakage_offsets_the_difference_current() {
        let mut p = sampled(12);
        p.calibrate(Seconds::ZERO);
        let clean = p.read(Volt::ZERO, Seconds::ZERO);
        let mut f = PixelFaults::default();
        f.merge(bsa_faults::FaultKind::LeakyElectrode {
            leakage: Ampere::from_micro(1.0),
        });
        p.set_faults(f);
        let leaky = p.read(Volt::ZERO, Seconds::ZERO);
        assert!(((leaky - clean).value() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let a = sampled(7);
        let b = sampled(7);
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_sensor_fet_is_an_error_not_a_panic() {
        // Regression for the reach.panic finding: a bad config arriving
        // over the wire (AttachNeuro) must surface as a typed error.
        let mut config = NeuroPixelConfig::default();
        config.sensor_fet.width_um = -1.0;
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(NeuroPixel::sample(config.clone(), &mut rng).is_err());
        assert!(NeuroPixel::nominal(config).is_err());
    }

    #[test]
    fn unreachable_calibration_current_is_an_error_not_a_panic() {
        // Far beyond what the 4/1.5 µm device conducts below the 5 V
        // search ceiling: no nominal operating point exists.
        let config = NeuroPixelConfig {
            cal_current: Ampere::new(10.0),
            ..NeuroPixelConfig::default()
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let err = NeuroPixel::sample(config, &mut rng);
        assert!(
            matches!(err, Err(bsa_circuit::CircuitError::NoOperatingPoint { .. })),
            "{err:?}"
        );
    }
}
