//! Typed protocol messages and their binary payload codec.
//!
//! Every message is a tagged union: a one-byte tag followed by the
//! variant's fields in declaration order, little-endian, with `f64`
//! carried as IEEE-754 bits, strings and vectors length-prefixed by a
//! `u32`. Element counts are validated against the bytes remaining in the
//! payload *before* any allocation, so a corrupted count cannot balloon
//! memory. Decoding is total: every outcome is `Ok` or a typed
//! [`ProtocolError`].
//!
//! The request/response pairing (client → station, station → client):
//!
//! | Request              | Response(s)                                |
//! |----------------------|--------------------------------------------|
//! | `Hello`              | `HelloAck`                                 |
//! | `Ping`               | `Pong`                                     |
//! | `AttachDna`/`Neuro`  | `Attached`                                 |
//! | `Detach`             | `Detached`                                 |
//! | `ConfigureAssay`     | `Ack`                                      |
//! | `Calibrate`          | `CalibrationDone`                          |
//! | `InjectFaults`       | `Ack`                                      |
//! | `QueryHealth`        | `HealthReport`                             |
//! | `MaskPixels`         | `Masked`                                   |
//! | `RunAssay`           | (`StreamData`* `StreamEnd`)? `AssayResult` |
//! | `StartNeuroStream`   | `StreamData`* `StreamEnd`                  |
//! | `QueryStats`         | `StatsReport`                              |
//! | `StartRecording`     | `RecordingStarted`                         |
//! | `StopRecording`      | `RecordingStopped`                         |
//! | `ListRecordings`     | `RecordingList`                            |
//! | `Replay`             | `StreamData`* `StreamEnd`                  |
//! | any                  | `ErrorReply` on failure                    |

use crate::error::ProtocolError;
use crate::wire::{Reader, Writer};

/// Station-assigned handle for an attached chip, scoped to one session.
pub type ChipId = u32;

/// Which of the paper's two sensor arrays a chip handle refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipKind {
    /// 16×8 DNA microarray with in-pixel current-to-frequency conversion.
    Dna,
    /// 128×128 neural-recording array.
    Neuro,
}

/// Parameters for attaching a simulated DNA chip.
#[derive(Debug, Clone, PartialEq)]
pub struct DnaChipSpec {
    /// Sensor rows (0 selects the paper default, 8).
    pub rows: u16,
    /// Sensor columns (0 selects the paper default, 16).
    pub cols: u16,
    /// Master seed for the chip's deterministic RNG streams.
    pub seed: u64,
    /// Measurement window per frame in seconds (NaN/≤0 selects default).
    pub frame_time_s: f64,
}

/// Parameters for attaching a simulated neural-recording chip.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuroChipSpec {
    /// Sensor rows (0 selects the paper default, 128).
    pub rows: u16,
    /// Sensor columns (0 selects the paper default, 128).
    pub cols: u16,
    /// Parallel readout channels (0 selects the paper default, 16).
    pub channels: u16,
    /// Master seed for the chip's deterministic RNG streams.
    pub seed: u64,
    /// Frame rate in Hz (NaN/≤0 selects the paper default, 2 kHz).
    pub frame_rate_hz: f64,
}

/// Parameters for the simulated culture a neuro stream records from.
#[derive(Debug, Clone, PartialEq)]
pub struct CultureSpec {
    /// Seed for culture geometry and spike-train generation.
    pub seed: u64,
    /// Number of neurons to scatter over the array (0 selects default).
    pub neuron_count: u32,
    /// Length of pre-generated spike activity, in seconds.
    pub spike_duration_s: f64,
}

/// One analyte in a `ConfigureAssay` sample mix.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetSpec {
    /// Target DNA sequence (A/C/G/T).
    pub sequence: String,
    /// Concentration in mol/L.
    pub concentration_molar: f64,
}

/// One pixel's count reading in a streamed DNA chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PixelCount {
    /// Sensor row.
    pub row: u16,
    /// Sensor column.
    pub col: u16,
    /// Event count accumulated over the measurement window.
    pub count: u64,
}

/// The data body of a `StreamData` message.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamPayload {
    /// A chunk of consecutive neuro frames, row-major samples
    /// concatenated frame after frame (`samples.len()` is a multiple of
    /// `rows * cols`).
    NeuroFrames {
        /// Index of the first frame in this chunk within the stream.
        first_frame: u32,
        /// Frame height in pixels.
        rows: u16,
        /// Frame width in pixels.
        cols: u16,
        /// IEEE-754 sample values, bit-exact.
        samples: Vec<f64>,
    },
    /// A chunk of DNA pixel count readings.
    DnaCounts {
        /// Per-pixel readings, in chip scan order.
        readings: Vec<PixelCount>,
    },
}

/// Where a fault entry lands on the array (mirrors
/// `bsa_faults::InjectionPlan` targets without depending on the crate).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultTargetSpec {
    /// A single pixel.
    Pixel {
        /// Sensor row.
        row: u16,
        /// Sensor column.
        col: u16,
    },
    /// A random subset of the array at the given defect density (0..=1).
    ArrayWide {
        /// Fraction of pixels affected.
        density: f64,
    },
    /// A chip-global fault (channel loss, serial bit errors).
    Global,
}

/// Wire mirror of `bsa_faults::FaultKind`.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKindSpec {
    /// Pixel produces no signal at all.
    DeadPixel,
    /// Counter output stuck at a fixed value.
    StuckCount {
        /// The stuck count value.
        count: u64,
    },
    /// Electrode leaks a constant parasitic current.
    LeakyElectrode {
        /// Leakage in amperes.
        leakage_a: f64,
    },
    /// Comparator threshold shifted by an offset.
    ComparatorDrift {
        /// Offset in volts.
        offset_v: f64,
    },
    /// Comparator output stuck high or low.
    ComparatorStuck {
        /// `true` = stuck high, `false` = stuck low.
        high: bool,
    },
    /// Calibration DAC saturates at a fraction of full scale.
    DacSaturation {
        /// Saturation limit as a fraction of full scale (0..=1).
        limit: f64,
    },
    /// Readout amplifier clips beyond a voltage limit.
    GainClipping {
        /// Clipping limit in volts.
        limit_v: f64,
    },
    /// An entire readout channel is lost.
    ChannelLoss {
        /// Channel index.
        channel: u32,
    },
    /// Serial link flips bits at the given rate.
    SerialBitErrors {
        /// Per-bit error probability (0..=1).
        rate: f64,
    },
}

/// One (target, kind) pair in a fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEntrySpec {
    /// Where the fault lands.
    pub target: FaultTargetSpec,
    /// What the fault does.
    pub kind: FaultKindSpec,
}

/// Wire form of a `bsa_faults::InjectionPlan`: the station rebuilds the
/// plan with the builder API and compiles it against the chip geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlanSpec {
    /// Seed for stochastic placement (array-wide densities, bit errors).
    pub seed: u64,
    /// The fault entries, applied in order.
    pub entries: Vec<FaultEntrySpec>,
}

/// Wire mirror of `bsa_core::health::SerialLinkStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SerialLinkSummary {
    /// Words accepted on first read.
    pub clean_words: u64,
    /// Words recovered by re-read.
    pub recovered_words: u64,
    /// Words lost after exhausting re-reads.
    pub unrecovered_words: u64,
    /// Total re-read attempts issued.
    pub rereads: u64,
}

/// Wire mirror of `bsa_core::health::DegradationMode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationSummary {
    /// All pixels and channels nominal.
    FullPerformance,
    /// Usable with masked pixels / reduced channels.
    Degraded,
    /// Yield below the usable floor.
    Unusable,
}

/// Wire mirror of `bsa_core::health::YieldReport`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YieldSummary {
    /// Pixels on the array.
    pub total_pixels: u32,
    /// Pixels classified healthy.
    pub healthy: u32,
    /// Pixels out of calibration family.
    pub out_of_family: u32,
    /// Dead pixels.
    pub dead: u32,
    /// Indices of lost readout channels.
    pub lost_channels: Vec<u32>,
    /// Total readout channels.
    pub total_channels: u32,
    /// Faults injected by test plans.
    pub injected: u32,
    /// Serial-link error accounting.
    pub serial: SerialLinkSummary,
    /// Overall degradation classification.
    pub degradation: DegradationSummary,
}

/// Station-wide counters returned by `QueryStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Sessions accepted since startup.
    pub sessions_opened: u64,
    /// Sessions currently connected.
    pub sessions_active: u64,
    /// Chips attached across all sessions since startup.
    pub chips_attached: u64,
    /// Requests handled.
    pub requests: u64,
    /// Frames delivered into session queues.
    pub frames_served: u64,
    /// Frames dropped by backpressure on slow consumers.
    pub frames_dropped: u64,
    /// Stream chunks enqueued.
    pub chunks_sent: u64,
    /// Payload bytes written to sockets.
    pub bytes_sent: u64,
    /// High-water mark of any session's outbound queue depth.
    pub queue_peak: u64,
}

/// Error classes a station reports in an `ErrorReply`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Request malformed or semantically invalid.
    BadRequest,
    /// No chip with that id in this session.
    UnknownChip,
    /// Operation targets the other chip kind.
    WrongChipKind,
    /// The chip model rejected the operation.
    ChipError,
    /// Server at capacity; retry later.
    Overloaded,
    /// Unexpected server-side failure.
    Internal,
    /// The recording store rejected the operation (missing, corrupt, or
    /// not configured).
    StoreError,
}

/// Summary of one on-disk recording, as reported by `RecordingList`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordingEntry {
    /// Recording name (store-scoped, unique).
    pub name: String,
    /// Which array kind produced the frames.
    pub kind: ChipKind,
    /// Frame height in pixels at record time.
    pub rows: u16,
    /// Frame width in pixels at record time.
    pub cols: u16,
    /// Frames (or DNA readings) persisted.
    pub frames: u64,
    /// Segment file size in bytes.
    pub bytes: u64,
    /// FNV-1a-64 hash of the recorded chip's config snapshot.
    pub config_hash: u64,
}

/// A protocol message — see the module docs for the request/response map.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Message {
    /// Client greeting; first message on a connection.
    Hello {
        /// Free-form client identity string.
        client: String,
    },
    /// Station's reply to `Hello`.
    HelloAck {
        /// Free-form server identity string.
        server: String,
        /// Protocol version the server speaks.
        version: u8,
    },
    /// Liveness probe.
    Ping {
        /// Echo token.
        token: u64,
    },
    /// Reply to `Ping` carrying the same token.
    Pong {
        /// Echoed token.
        token: u64,
    },
    /// Attach a simulated DNA chip to this session.
    AttachDna(DnaChipSpec),
    /// Attach a simulated neural-recording chip to this session.
    AttachNeuro(NeuroChipSpec),
    /// A chip was attached.
    Attached {
        /// Session-scoped chip handle.
        chip: ChipId,
        /// Which array kind was attached.
        kind: ChipKind,
        /// Array rows actually configured.
        rows: u16,
        /// Array columns actually configured.
        cols: u16,
    },
    /// Detach and drop a chip.
    Detach {
        /// Chip handle to drop.
        chip: ChipId,
    },
    /// A chip was detached.
    Detached {
        /// The dropped handle.
        chip: ChipId,
    },
    /// Functionalise a DNA chip with probes and set the sample mix.
    ConfigureAssay {
        /// DNA chip handle.
        chip: ChipId,
        /// Probe sequences, assigned in chip scan order.
        probes: Vec<String>,
        /// Analytes present in the sample.
        targets: Vec<TargetSpec>,
    },
    /// Run the chip's calibration loop.
    Calibrate {
        /// Chip handle.
        chip: ChipId,
    },
    /// Calibration finished.
    CalibrationDone {
        /// Chip handle.
        chip: ChipId,
        /// Pixels healthy after calibration.
        healthy: u32,
        /// Pixels out of family.
        out_of_family: u32,
        /// Dead pixels.
        dead: u32,
    },
    /// Apply a fault-injection plan to a chip.
    InjectFaults {
        /// Chip handle.
        chip: ChipId,
        /// The plan to compile and apply.
        plan: FaultPlanSpec,
    },
    /// Ask for the chip's yield report.
    QueryHealth {
        /// Chip handle.
        chip: ChipId,
    },
    /// Yield report for a chip.
    HealthReport {
        /// Chip handle.
        chip: ChipId,
        /// The report.
        report: YieldSummary,
    },
    /// Mark pixels unusable so streamed frames interpolate over them.
    /// Indices are row-major (`row * cols + col`); repeated requests
    /// union with the pixels already masked for the chip.
    MaskPixels {
        /// Chip handle.
        chip: ChipId,
        /// Row-major pixel indices to mask.
        pixels: Vec<u32>,
    },
    /// Reply to `MaskPixels` with the mask size after the union.
    Masked {
        /// Chip handle.
        chip: ChipId,
        /// Total pixels masked for this chip after applying the request.
        masked: u32,
    },
    /// Run a DNA assay on the configured sample.
    RunAssay {
        /// DNA chip handle.
        chip: ChipId,
        /// Also stream per-pixel counts as `StreamData` chunks.
        stream_counts: bool,
    },
    /// Final result of a DNA assay.
    AssayResult {
        /// Chip handle.
        chip: ChipId,
        /// Per-pixel event counts in scan order.
        counts: Vec<u64>,
        /// Estimated sensor currents in amperes, scan order.
        estimated_currents_a: Vec<f64>,
    },
    /// Record and stream frames from a neuro chip.
    StartNeuroStream {
        /// Neuro chip handle.
        chip: ChipId,
        /// Total frames to record.
        frames: u32,
        /// Frames per `StreamData` chunk (0 selects the server default).
        chunk_frames: u32,
        /// Recording start time on the chip's deterministic clock, seconds.
        t0_s: f64,
        /// The culture to record from.
        culture: CultureSpec,
    },
    /// One chunk of streamed acquisition data.
    StreamData {
        /// Chip handle the data came from.
        chip: ChipId,
        /// Chunk sequence number within the stream, starting at 0.
        seq: u32,
        /// The data.
        payload: StreamPayload,
    },
    /// End of a stream, with delivery accounting.
    StreamEnd {
        /// Chip handle.
        chip: ChipId,
        /// Frames (or DNA readings) delivered into the session queue.
        frames_sent: u32,
        /// Frames (or DNA readings) dropped by backpressure.
        frames_dropped: u32,
    },
    /// Ask for station-wide counters.
    QueryStats,
    /// Station-wide counters.
    StatsReport(StatsSnapshot),
    /// Generic success for requests with no richer response.
    Ack,
    /// Request failed.
    ErrorReply {
        /// Error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Start persisting a chip's streamed frames to the station's store
    /// under the given name.
    StartRecording {
        /// Chip handle whose streams should be persisted.
        chip: ChipId,
        /// Store-scoped recording name (`[A-Za-z0-9._-]`, non-empty).
        name: String,
    },
    /// The recording is live: subsequent streams from the chip are teed
    /// to disk until `StopRecording` (or session end) finalises it.
    RecordingStarted {
        /// Chip handle being recorded.
        chip: ChipId,
        /// The accepted recording name.
        name: String,
    },
    /// Finalise the chip's active recording.
    StopRecording {
        /// Chip handle being recorded.
        chip: ChipId,
    },
    /// Recording finalised, with persistence accounting (the store's own
    /// bounded queue drops-and-counts, mirroring `StreamEnd`).
    RecordingStopped {
        /// Chip handle that was recorded.
        chip: ChipId,
        /// The finalised recording's name.
        name: String,
        /// Frames (or DNA readings) persisted to the segment.
        frames_written: u64,
        /// Frames dropped by store backpressure.
        frames_dropped: u64,
        /// Segment file size in bytes, index footer included.
        bytes_written: u64,
    },
    /// List recordings in the station's store.
    ListRecordings,
    /// The store catalog.
    RecordingList {
        /// One entry per readable recording, sorted by name.
        recordings: Vec<RecordingEntry>,
    },
    /// Replay a stored recording as a stream. The station answers with
    /// the same `StreamData`* `StreamEnd` grammar a live chip produces.
    Replay {
        /// Recording name from the catalog.
        name: String,
        /// Frames (or readings) per chunk (0 selects the server default).
        chunk_frames: u32,
    },
}

// Payload tags. Gaps are reserved for future messages.
const TAG_HELLO: u8 = 0x01;
const TAG_HELLO_ACK: u8 = 0x02;
const TAG_PING: u8 = 0x03;
const TAG_PONG: u8 = 0x04;
const TAG_ATTACH_DNA: u8 = 0x05;
const TAG_ATTACH_NEURO: u8 = 0x06;
const TAG_ATTACHED: u8 = 0x07;
const TAG_DETACH: u8 = 0x08;
const TAG_DETACHED: u8 = 0x09;
const TAG_CONFIGURE_ASSAY: u8 = 0x0A;
const TAG_CALIBRATE: u8 = 0x0B;
const TAG_CALIBRATION_DONE: u8 = 0x0C;
const TAG_INJECT_FAULTS: u8 = 0x0D;
const TAG_QUERY_HEALTH: u8 = 0x0E;
const TAG_HEALTH_REPORT: u8 = 0x0F;
const TAG_RUN_ASSAY: u8 = 0x10;
const TAG_ASSAY_RESULT: u8 = 0x11;
const TAG_START_NEURO_STREAM: u8 = 0x12;
const TAG_STREAM_DATA: u8 = 0x13;
const TAG_STREAM_END: u8 = 0x14;
const TAG_QUERY_STATS: u8 = 0x15;
const TAG_STATS_REPORT: u8 = 0x16;
const TAG_ACK: u8 = 0x17;
const TAG_ERROR_REPLY: u8 = 0x18;
const TAG_MASK_PIXELS: u8 = 0x19;
const TAG_MASKED: u8 = 0x1A;
const TAG_START_RECORDING: u8 = 0x1B;
const TAG_RECORDING_STARTED: u8 = 0x1C;
const TAG_STOP_RECORDING: u8 = 0x1D;
const TAG_RECORDING_STOPPED: u8 = 0x1E;
const TAG_LIST_RECORDINGS: u8 = 0x1F;
const TAG_RECORDING_LIST: u8 = 0x20;
const TAG_REPLAY: u8 = 0x21;

impl ChipKind {
    fn encode(self, w: &mut Writer) {
        w.u8(match self {
            Self::Dna => 0,
            Self::Neuro => 1,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        match r.u8()? {
            0 => Ok(Self::Dna),
            1 => Ok(Self::Neuro),
            tag => Err(ProtocolError::UnknownTag {
                what: "ChipKind",
                tag,
            }),
        }
    }
}

impl DnaChipSpec {
    fn encode(&self, w: &mut Writer) {
        w.u16(self.rows);
        w.u16(self.cols);
        w.u64(self.seed);
        w.f64(self.frame_time_s);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        Ok(Self {
            rows: r.u16()?,
            cols: r.u16()?,
            seed: r.u64()?,
            frame_time_s: r.f64()?,
        })
    }
}

impl NeuroChipSpec {
    fn encode(&self, w: &mut Writer) {
        w.u16(self.rows);
        w.u16(self.cols);
        w.u16(self.channels);
        w.u64(self.seed);
        w.f64(self.frame_rate_hz);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        Ok(Self {
            rows: r.u16()?,
            cols: r.u16()?,
            channels: r.u16()?,
            seed: r.u64()?,
            frame_rate_hz: r.f64()?,
        })
    }
}

impl CultureSpec {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.seed);
        w.u32(self.neuron_count);
        w.f64(self.spike_duration_s);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        Ok(Self {
            seed: r.u64()?,
            neuron_count: r.u32()?,
            spike_duration_s: r.f64()?,
        })
    }
}

impl TargetSpec {
    fn encode(&self, w: &mut Writer) {
        w.string(&self.sequence);
        w.f64(self.concentration_molar);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        Ok(Self {
            sequence: r.string()?,
            concentration_molar: r.f64()?,
        })
    }
}

impl PixelCount {
    fn encode(&self, w: &mut Writer) {
        w.u16(self.row);
        w.u16(self.col);
        w.u64(self.count);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        Ok(Self {
            row: r.u16()?,
            col: r.u16()?,
            count: r.u64()?,
        })
    }
}

impl StreamPayload {
    fn encode(&self, w: &mut Writer) {
        match self {
            Self::NeuroFrames {
                first_frame,
                rows,
                cols,
                samples,
            } => {
                w.u8(0);
                w.u32(*first_frame);
                w.u16(*rows);
                w.u16(*cols);
                w.count(samples.len());
                for &s in samples {
                    w.f64(s);
                }
            }
            Self::DnaCounts { readings } => {
                w.u8(1);
                w.count(readings.len());
                for reading in readings {
                    reading.encode(w);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        match r.u8()? {
            0 => {
                let first_frame = r.u32()?;
                let rows = r.u16()?;
                let cols = r.u16()?;
                let n = r.count(8, "NeuroFrames.samples")?;
                let mut samples = Vec::with_capacity(n);
                for _ in 0..n {
                    samples.push(r.f64()?);
                }
                Ok(Self::NeuroFrames {
                    first_frame,
                    rows,
                    cols,
                    samples,
                })
            }
            1 => {
                let n = r.count(12, "DnaCounts.readings")?;
                let mut readings = Vec::with_capacity(n);
                for _ in 0..n {
                    readings.push(PixelCount::decode(r)?);
                }
                Ok(Self::DnaCounts { readings })
            }
            tag => Err(ProtocolError::UnknownTag {
                what: "StreamPayload",
                tag,
            }),
        }
    }
}

impl FaultTargetSpec {
    fn encode(&self, w: &mut Writer) {
        match self {
            Self::Pixel { row, col } => {
                w.u8(0);
                w.u16(*row);
                w.u16(*col);
            }
            Self::ArrayWide { density } => {
                w.u8(1);
                w.f64(*density);
            }
            Self::Global => w.u8(2),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        match r.u8()? {
            0 => Ok(Self::Pixel {
                row: r.u16()?,
                col: r.u16()?,
            }),
            1 => Ok(Self::ArrayWide { density: r.f64()? }),
            2 => Ok(Self::Global),
            tag => Err(ProtocolError::UnknownTag {
                what: "FaultTargetSpec",
                tag,
            }),
        }
    }
}

impl FaultKindSpec {
    fn encode(&self, w: &mut Writer) {
        match self {
            Self::DeadPixel => w.u8(0),
            Self::StuckCount { count } => {
                w.u8(1);
                w.u64(*count);
            }
            Self::LeakyElectrode { leakage_a } => {
                w.u8(2);
                w.f64(*leakage_a);
            }
            Self::ComparatorDrift { offset_v } => {
                w.u8(3);
                w.f64(*offset_v);
            }
            Self::ComparatorStuck { high } => {
                w.u8(4);
                w.bool(*high);
            }
            Self::DacSaturation { limit } => {
                w.u8(5);
                w.f64(*limit);
            }
            Self::GainClipping { limit_v } => {
                w.u8(6);
                w.f64(*limit_v);
            }
            Self::ChannelLoss { channel } => {
                w.u8(7);
                w.u32(*channel);
            }
            Self::SerialBitErrors { rate } => {
                w.u8(8);
                w.f64(*rate);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        match r.u8()? {
            0 => Ok(Self::DeadPixel),
            1 => Ok(Self::StuckCount { count: r.u64()? }),
            2 => Ok(Self::LeakyElectrode {
                leakage_a: r.f64()?,
            }),
            3 => Ok(Self::ComparatorDrift { offset_v: r.f64()? }),
            4 => Ok(Self::ComparatorStuck { high: r.bool()? }),
            5 => Ok(Self::DacSaturation { limit: r.f64()? }),
            6 => Ok(Self::GainClipping { limit_v: r.f64()? }),
            7 => Ok(Self::ChannelLoss { channel: r.u32()? }),
            8 => Ok(Self::SerialBitErrors { rate: r.f64()? }),
            tag => Err(ProtocolError::UnknownTag {
                what: "FaultKindSpec",
                tag,
            }),
        }
    }
}

impl FaultEntrySpec {
    fn encode(&self, w: &mut Writer) {
        self.target.encode(w);
        self.kind.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        Ok(Self {
            target: FaultTargetSpec::decode(r)?,
            kind: FaultKindSpec::decode(r)?,
        })
    }
}

impl FaultPlanSpec {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.seed);
        w.count(self.entries.len());
        for entry in &self.entries {
            entry.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        let seed = r.u64()?;
        let n = r.count(2, "FaultPlanSpec.entries")?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(FaultEntrySpec::decode(r)?);
        }
        Ok(Self { seed, entries })
    }
}

impl SerialLinkSummary {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.clean_words);
        w.u64(self.recovered_words);
        w.u64(self.unrecovered_words);
        w.u64(self.rereads);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        Ok(Self {
            clean_words: r.u64()?,
            recovered_words: r.u64()?,
            unrecovered_words: r.u64()?,
            rereads: r.u64()?,
        })
    }
}

impl DegradationSummary {
    fn encode(self, w: &mut Writer) {
        w.u8(match self {
            Self::FullPerformance => 0,
            Self::Degraded => 1,
            Self::Unusable => 2,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        match r.u8()? {
            0 => Ok(Self::FullPerformance),
            1 => Ok(Self::Degraded),
            2 => Ok(Self::Unusable),
            tag => Err(ProtocolError::UnknownTag {
                what: "DegradationSummary",
                tag,
            }),
        }
    }
}

impl YieldSummary {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.total_pixels);
        w.u32(self.healthy);
        w.u32(self.out_of_family);
        w.u32(self.dead);
        w.count(self.lost_channels.len());
        for &ch in &self.lost_channels {
            w.u32(ch);
        }
        w.u32(self.total_channels);
        w.u32(self.injected);
        self.serial.encode(w);
        self.degradation.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        let total_pixels = r.u32()?;
        let healthy = r.u32()?;
        let out_of_family = r.u32()?;
        let dead = r.u32()?;
        let n = r.count(4, "YieldSummary.lost_channels")?;
        let mut lost_channels = Vec::with_capacity(n);
        for _ in 0..n {
            lost_channels.push(r.u32()?);
        }
        Ok(Self {
            total_pixels,
            healthy,
            out_of_family,
            dead,
            lost_channels,
            total_channels: r.u32()?,
            injected: r.u32()?,
            serial: SerialLinkSummary::decode(r)?,
            degradation: DegradationSummary::decode(r)?,
        })
    }
}

impl StatsSnapshot {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.sessions_opened);
        w.u64(self.sessions_active);
        w.u64(self.chips_attached);
        w.u64(self.requests);
        w.u64(self.frames_served);
        w.u64(self.frames_dropped);
        w.u64(self.chunks_sent);
        w.u64(self.bytes_sent);
        w.u64(self.queue_peak);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        Ok(Self {
            sessions_opened: r.u64()?,
            sessions_active: r.u64()?,
            chips_attached: r.u64()?,
            requests: r.u64()?,
            frames_served: r.u64()?,
            frames_dropped: r.u64()?,
            chunks_sent: r.u64()?,
            bytes_sent: r.u64()?,
            queue_peak: r.u64()?,
        })
    }
}

impl ErrorCode {
    fn encode(self, w: &mut Writer) {
        w.u8(match self {
            Self::BadRequest => 0,
            Self::UnknownChip => 1,
            Self::WrongChipKind => 2,
            Self::ChipError => 3,
            Self::Overloaded => 4,
            Self::Internal => 5,
            Self::StoreError => 6,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        match r.u8()? {
            0 => Ok(Self::BadRequest),
            1 => Ok(Self::UnknownChip),
            2 => Ok(Self::WrongChipKind),
            3 => Ok(Self::ChipError),
            4 => Ok(Self::Overloaded),
            5 => Ok(Self::Internal),
            6 => Ok(Self::StoreError),
            tag => Err(ProtocolError::UnknownTag {
                what: "ErrorCode",
                tag,
            }),
        }
    }
}

impl RecordingEntry {
    fn encode(&self, w: &mut Writer) {
        w.string(&self.name);
        self.kind.encode(w);
        w.u16(self.rows);
        w.u16(self.cols);
        w.u64(self.frames);
        w.u64(self.bytes);
        w.u64(self.config_hash);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, ProtocolError> {
        Ok(Self {
            name: r.string()?,
            kind: ChipKind::decode(r)?,
            rows: r.u16()?,
            cols: r.u16()?,
            frames: r.u64()?,
            bytes: r.u64()?,
            config_hash: r.u64()?,
        })
    }
}

impl Message {
    /// Serialises the message body (tag + fields) without framing.
    /// [`crate::encode_frame`] wraps this in magic/version/length/CRC.
    #[must_use]
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Self::Hello { client } => {
                w.u8(TAG_HELLO);
                w.string(client);
            }
            Self::HelloAck { server, version } => {
                w.u8(TAG_HELLO_ACK);
                w.string(server);
                w.u8(*version);
            }
            Self::Ping { token } => {
                w.u8(TAG_PING);
                w.u64(*token);
            }
            Self::Pong { token } => {
                w.u8(TAG_PONG);
                w.u64(*token);
            }
            Self::AttachDna(spec) => {
                w.u8(TAG_ATTACH_DNA);
                spec.encode(&mut w);
            }
            Self::AttachNeuro(spec) => {
                w.u8(TAG_ATTACH_NEURO);
                spec.encode(&mut w);
            }
            Self::Attached {
                chip,
                kind,
                rows,
                cols,
            } => {
                w.u8(TAG_ATTACHED);
                w.u32(*chip);
                kind.encode(&mut w);
                w.u16(*rows);
                w.u16(*cols);
            }
            Self::Detach { chip } => {
                w.u8(TAG_DETACH);
                w.u32(*chip);
            }
            Self::Detached { chip } => {
                w.u8(TAG_DETACHED);
                w.u32(*chip);
            }
            Self::ConfigureAssay {
                chip,
                probes,
                targets,
            } => {
                w.u8(TAG_CONFIGURE_ASSAY);
                w.u32(*chip);
                w.count(probes.len());
                for probe in probes {
                    w.string(probe);
                }
                w.count(targets.len());
                for target in targets {
                    target.encode(&mut w);
                }
            }
            Self::Calibrate { chip } => {
                w.u8(TAG_CALIBRATE);
                w.u32(*chip);
            }
            Self::CalibrationDone {
                chip,
                healthy,
                out_of_family,
                dead,
            } => {
                w.u8(TAG_CALIBRATION_DONE);
                w.u32(*chip);
                w.u32(*healthy);
                w.u32(*out_of_family);
                w.u32(*dead);
            }
            Self::InjectFaults { chip, plan } => {
                w.u8(TAG_INJECT_FAULTS);
                w.u32(*chip);
                plan.encode(&mut w);
            }
            Self::QueryHealth { chip } => {
                w.u8(TAG_QUERY_HEALTH);
                w.u32(*chip);
            }
            Self::HealthReport { chip, report } => {
                w.u8(TAG_HEALTH_REPORT);
                w.u32(*chip);
                report.encode(&mut w);
            }
            Self::MaskPixels { chip, pixels } => {
                w.u8(TAG_MASK_PIXELS);
                w.u32(*chip);
                w.count(pixels.len());
                for &p in pixels {
                    w.u32(p);
                }
            }
            Self::Masked { chip, masked } => {
                w.u8(TAG_MASKED);
                w.u32(*chip);
                w.u32(*masked);
            }
            Self::RunAssay {
                chip,
                stream_counts,
            } => {
                w.u8(TAG_RUN_ASSAY);
                w.u32(*chip);
                w.bool(*stream_counts);
            }
            Self::AssayResult {
                chip,
                counts,
                estimated_currents_a,
            } => {
                w.u8(TAG_ASSAY_RESULT);
                w.u32(*chip);
                w.count(counts.len());
                for &c in counts {
                    w.u64(c);
                }
                w.count(estimated_currents_a.len());
                for &i in estimated_currents_a {
                    w.f64(i);
                }
            }
            Self::StartNeuroStream {
                chip,
                frames,
                chunk_frames,
                t0_s,
                culture,
            } => {
                w.u8(TAG_START_NEURO_STREAM);
                w.u32(*chip);
                w.u32(*frames);
                w.u32(*chunk_frames);
                w.f64(*t0_s);
                culture.encode(&mut w);
            }
            Self::StreamData { chip, seq, payload } => {
                w.u8(TAG_STREAM_DATA);
                w.u32(*chip);
                w.u32(*seq);
                payload.encode(&mut w);
            }
            Self::StreamEnd {
                chip,
                frames_sent,
                frames_dropped,
            } => {
                w.u8(TAG_STREAM_END);
                w.u32(*chip);
                w.u32(*frames_sent);
                w.u32(*frames_dropped);
            }
            Self::QueryStats => w.u8(TAG_QUERY_STATS),
            Self::StatsReport(stats) => {
                w.u8(TAG_STATS_REPORT);
                stats.encode(&mut w);
            }
            Self::Ack => w.u8(TAG_ACK),
            Self::ErrorReply { code, message } => {
                w.u8(TAG_ERROR_REPLY);
                code.encode(&mut w);
                w.string(message);
            }
            Self::StartRecording { chip, name } => {
                w.u8(TAG_START_RECORDING);
                w.u32(*chip);
                w.string(name);
            }
            Self::RecordingStarted { chip, name } => {
                w.u8(TAG_RECORDING_STARTED);
                w.u32(*chip);
                w.string(name);
            }
            Self::StopRecording { chip } => {
                w.u8(TAG_STOP_RECORDING);
                w.u32(*chip);
            }
            Self::RecordingStopped {
                chip,
                name,
                frames_written,
                frames_dropped,
                bytes_written,
            } => {
                w.u8(TAG_RECORDING_STOPPED);
                w.u32(*chip);
                w.string(name);
                w.u64(*frames_written);
                w.u64(*frames_dropped);
                w.u64(*bytes_written);
            }
            Self::ListRecordings => w.u8(TAG_LIST_RECORDINGS),
            Self::RecordingList { recordings } => {
                w.u8(TAG_RECORDING_LIST);
                w.count(recordings.len());
                for entry in recordings {
                    entry.encode(&mut w);
                }
            }
            Self::Replay { name, chunk_frames } => {
                w.u8(TAG_REPLAY);
                w.string(name);
                w.u32(*chunk_frames);
            }
        }
        w.into_bytes()
    }

    /// Decodes a message body produced by [`Self::encode_payload`].
    ///
    /// Total: every malformed payload yields a typed [`ProtocolError`];
    /// trailing bytes after a complete message are rejected.
    pub fn decode_payload(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = Reader::new(payload);
        let msg = match r.u8()? {
            TAG_HELLO => Self::Hello {
                client: r.string()?,
            },
            TAG_HELLO_ACK => Self::HelloAck {
                server: r.string()?,
                version: r.u8()?,
            },
            TAG_PING => Self::Ping { token: r.u64()? },
            TAG_PONG => Self::Pong { token: r.u64()? },
            TAG_ATTACH_DNA => Self::AttachDna(DnaChipSpec::decode(&mut r)?),
            TAG_ATTACH_NEURO => Self::AttachNeuro(NeuroChipSpec::decode(&mut r)?),
            TAG_ATTACHED => Self::Attached {
                chip: r.u32()?,
                kind: ChipKind::decode(&mut r)?,
                rows: r.u16()?,
                cols: r.u16()?,
            },
            TAG_DETACH => Self::Detach { chip: r.u32()? },
            TAG_DETACHED => Self::Detached { chip: r.u32()? },
            TAG_CONFIGURE_ASSAY => {
                let chip = r.u32()?;
                let n_probes = r.count(4, "ConfigureAssay.probes")?;
                let mut probes = Vec::with_capacity(n_probes);
                for _ in 0..n_probes {
                    probes.push(r.string()?);
                }
                let n_targets = r.count(12, "ConfigureAssay.targets")?;
                let mut targets = Vec::with_capacity(n_targets);
                for _ in 0..n_targets {
                    targets.push(TargetSpec::decode(&mut r)?);
                }
                Self::ConfigureAssay {
                    chip,
                    probes,
                    targets,
                }
            }
            TAG_CALIBRATE => Self::Calibrate { chip: r.u32()? },
            TAG_CALIBRATION_DONE => Self::CalibrationDone {
                chip: r.u32()?,
                healthy: r.u32()?,
                out_of_family: r.u32()?,
                dead: r.u32()?,
            },
            TAG_INJECT_FAULTS => Self::InjectFaults {
                chip: r.u32()?,
                plan: FaultPlanSpec::decode(&mut r)?,
            },
            TAG_QUERY_HEALTH => Self::QueryHealth { chip: r.u32()? },
            TAG_HEALTH_REPORT => Self::HealthReport {
                chip: r.u32()?,
                report: YieldSummary::decode(&mut r)?,
            },
            TAG_MASK_PIXELS => {
                let chip = r.u32()?;
                let n_pixels = r.count(4, "MaskPixels.pixels")?;
                let mut pixels = Vec::with_capacity(n_pixels);
                for _ in 0..n_pixels {
                    pixels.push(r.u32()?);
                }
                Self::MaskPixels { chip, pixels }
            }
            TAG_MASKED => Self::Masked {
                chip: r.u32()?,
                masked: r.u32()?,
            },
            TAG_RUN_ASSAY => Self::RunAssay {
                chip: r.u32()?,
                stream_counts: r.bool()?,
            },
            TAG_ASSAY_RESULT => {
                let chip = r.u32()?;
                let n_counts = r.count(8, "AssayResult.counts")?;
                let mut counts = Vec::with_capacity(n_counts);
                for _ in 0..n_counts {
                    counts.push(r.u64()?);
                }
                let n_currents = r.count(8, "AssayResult.estimated_currents_a")?;
                let mut estimated_currents_a = Vec::with_capacity(n_currents);
                for _ in 0..n_currents {
                    estimated_currents_a.push(r.f64()?);
                }
                Self::AssayResult {
                    chip,
                    counts,
                    estimated_currents_a,
                }
            }
            TAG_START_NEURO_STREAM => Self::StartNeuroStream {
                chip: r.u32()?,
                frames: r.u32()?,
                chunk_frames: r.u32()?,
                t0_s: r.f64()?,
                culture: CultureSpec::decode(&mut r)?,
            },
            TAG_STREAM_DATA => Self::StreamData {
                chip: r.u32()?,
                seq: r.u32()?,
                payload: StreamPayload::decode(&mut r)?,
            },
            TAG_STREAM_END => Self::StreamEnd {
                chip: r.u32()?,
                frames_sent: r.u32()?,
                frames_dropped: r.u32()?,
            },
            TAG_QUERY_STATS => Self::QueryStats,
            TAG_STATS_REPORT => Self::StatsReport(StatsSnapshot::decode(&mut r)?),
            TAG_ACK => Self::Ack,
            TAG_ERROR_REPLY => Self::ErrorReply {
                code: ErrorCode::decode(&mut r)?,
                message: r.string()?,
            },
            TAG_START_RECORDING => Self::StartRecording {
                chip: r.u32()?,
                name: r.string()?,
            },
            TAG_RECORDING_STARTED => Self::RecordingStarted {
                chip: r.u32()?,
                name: r.string()?,
            },
            TAG_STOP_RECORDING => Self::StopRecording { chip: r.u32()? },
            TAG_RECORDING_STOPPED => Self::RecordingStopped {
                chip: r.u32()?,
                name: r.string()?,
                frames_written: r.u64()?,
                frames_dropped: r.u64()?,
                bytes_written: r.u64()?,
            },
            TAG_LIST_RECORDINGS => Self::ListRecordings,
            TAG_RECORDING_LIST => {
                // name length prefix + kind + rows/cols + frames/bytes/hash
                let n = r.count(4 + 1 + 4 + 24, "RecordingList.recordings")?;
                let mut recordings = Vec::with_capacity(n);
                for _ in 0..n {
                    recordings.push(RecordingEntry::decode(&mut r)?);
                }
                Self::RecordingList { recordings }
            }
            TAG_REPLAY => Self::Replay {
                name: r.string()?,
                chunk_frames: r.u32()?,
            },
            tag => {
                return Err(ProtocolError::UnknownTag {
                    what: "Message",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &Message) {
        let bytes = msg.encode_payload();
        let back = Message::decode_payload(&bytes).unwrap();
        assert_eq!(&back, msg);
    }

    #[test]
    fn payload_roundtrips() {
        roundtrip(&Message::Hello {
            client: "bsa-ctl/0.1".into(),
        });
        roundtrip(&Message::QueryStats);
        roundtrip(&Message::Ack);
        roundtrip(&Message::StreamData {
            chip: 3,
            seq: 7,
            payload: StreamPayload::NeuroFrames {
                first_frame: 224,
                rows: 2,
                cols: 2,
                samples: vec![1.5, -0.25, 0.0, 3.25],
            },
        });
        roundtrip(&Message::MaskPixels {
            chip: 2,
            pixels: vec![0, 17, 4095],
        });
        roundtrip(&Message::Masked { chip: 2, masked: 3 });
        roundtrip(&Message::StartRecording {
            chip: 1,
            name: "run-2026-001".into(),
        });
        roundtrip(&Message::RecordingStarted {
            chip: 1,
            name: "run-2026-001".into(),
        });
        roundtrip(&Message::StopRecording { chip: 1 });
        roundtrip(&Message::RecordingStopped {
            chip: 1,
            name: "run-2026-001".into(),
            frames_written: 112,
            frames_dropped: 4,
            bytes_written: 131_072,
        });
        roundtrip(&Message::ListRecordings);
        roundtrip(&Message::RecordingList {
            recordings: vec![RecordingEntry {
                name: "run-2026-001".into(),
                kind: ChipKind::Neuro,
                rows: 128,
                cols: 128,
                frames: 112,
                bytes: 131_072,
                config_hash: 0xDEAD_BEEF_CAFE_F00D,
            }],
        });
        roundtrip(&Message::Replay {
            name: "run-2026-001".into(),
            chunk_frames: 8,
        });
        roundtrip(&Message::ErrorReply {
            code: ErrorCode::StoreError,
            message: "no recording named x".into(),
        });
        roundtrip(&Message::InjectFaults {
            chip: 1,
            plan: FaultPlanSpec {
                seed: 42,
                entries: vec![
                    FaultEntrySpec {
                        target: FaultTargetSpec::Pixel { row: 3, col: 4 },
                        kind: FaultKindSpec::DeadPixel,
                    },
                    FaultEntrySpec {
                        target: FaultTargetSpec::Global,
                        kind: FaultKindSpec::SerialBitErrors { rate: 1e-3 },
                    },
                ],
            },
        });
    }

    #[test]
    fn unknown_message_tag_rejected() {
        assert!(matches!(
            Message::decode_payload(&[0xEE]),
            Err(ProtocolError::UnknownTag {
                what: "Message",
                ..
            })
        ));
    }

    #[test]
    fn empty_payload_rejected() {
        assert!(matches!(
            Message::decode_payload(&[]),
            Err(ProtocolError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let mut bytes = Message::Ack.encode_payload();
        bytes.push(0);
        assert!(matches!(
            Message::decode_payload(&bytes),
            Err(ProtocolError::TrailingBytes { count: 1 })
        ));
    }
}
