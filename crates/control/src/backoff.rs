//! Deterministic exponential backoff for transport retries.

/// An exponential backoff schedule: attempt `n` waits
/// `min(base_ms * factor^n, max_ms)` milliseconds. Pure arithmetic —
/// no clocks, no jitter — so retry traces replay bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Multiplier applied per attempt.
    pub factor: u32,
    /// Ceiling on any single delay, in milliseconds.
    pub max_ms: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Self {
            base_ms: 10,
            factor: 2,
            max_ms: 1_000,
        }
    }
}

impl Backoff {
    /// The delay before retry number `attempt` (0-based), saturating at
    /// `max_ms` on overflow.
    #[must_use]
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let scaled = u64::from(self.factor)
            .checked_pow(attempt)
            .and_then(|scale| self.base_ms.checked_mul(scale));
        match scaled {
            Some(delay) => delay.min(self.max_ms),
            None => self.max_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_up_to_the_ceiling() {
        let b = Backoff {
            base_ms: 10,
            factor: 2,
            max_ms: 100,
        };
        let delays: Vec<u64> = (0..6).map(|n| b.delay_ms(n)).collect();
        assert_eq!(delays, vec![10, 20, 40, 80, 100, 100]);
    }

    #[test]
    fn overflow_saturates_at_the_ceiling() {
        let b = Backoff {
            base_ms: u64::MAX / 2,
            factor: 3,
            max_ms: 5_000,
        };
        assert_eq!(b.delay_ms(40), 5_000);
        assert_eq!(b.delay_ms(u32::MAX), 5_000);
    }
}
