//! Injection plans and their compiled, geometry-specific fault maps.

use crate::kinds::{FaultClass, FaultKind, PixelFaults};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where a planned fault lands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Target {
    /// A single pixel by (row, column).
    Pixel { row: usize, col: usize },
    /// A random subset of the array at the given pixel density.
    ArrayWide { density: f64 },
    /// Array-independent (channel loss, serial link).
    Global,
}

/// Public view of one planned entry's addressing, for callers that
/// serialize or mirror a plan (e.g. onto the wire protocol) without
/// access to the private builder state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanTarget {
    /// A single pixel by (row, column).
    Pixel {
        /// Sensor row.
        row: usize,
        /// Sensor column.
        col: usize,
    },
    /// A random subset of the array at the given pixel density.
    ArrayWide {
        /// Fraction of pixels affected, clamped to `[0, 1]`.
        density: f64,
    },
    /// Array-independent (channel loss, serial link).
    Global,
}

/// A composable, seedable description of which defects to inject.
///
/// Build one with the fluent methods, then [`compile`](Self::compile) it
/// for a concrete geometry. Plans are plain data: cloning, inspecting and
/// serializing them is cheap, and compiling the same plan twice yields
/// identical fault maps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionPlan {
    seed: u64,
    entries: Vec<(Target, FaultKind)>,
}

impl InjectionPlan {
    /// An empty plan with the given compilation seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            entries: Vec::new(),
        }
    }

    /// The compilation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of planned entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been planned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The planned entries in application order, as public
    /// [`PlanTarget`]/[`FaultKind`] pairs.
    pub fn entries(&self) -> impl Iterator<Item = (PlanTarget, FaultKind)> + '_ {
        self.entries.iter().map(|(target, kind)| {
            let target = match *target {
                Target::Pixel { row, col } => PlanTarget::Pixel { row, col },
                Target::ArrayWide { density } => PlanTarget::ArrayWide { density },
                Target::Global => PlanTarget::Global,
            };
            (target, *kind)
        })
    }

    /// Injects `kind` at one pixel.
    ///
    /// Channel-loss and serial faults carry their own addressing and are
    /// recorded globally regardless of the pixel given.
    pub fn at(mut self, row: usize, col: usize, kind: FaultKind) -> Self {
        let target = if kind.is_pixel_fault() {
            Target::Pixel { row, col }
        } else {
            Target::Global
        };
        self.entries.push((target, kind));
        self
    }

    /// Injects `kind` into a random fraction `density` (clamped to
    /// `[0, 1]`) of all pixels, selected deterministically from the seed
    /// at compile time.
    ///
    /// Non-pixel faults (channel loss, serial bit errors) are recorded
    /// globally; density is ignored for them.
    pub fn array_wide(mut self, density: f64, kind: FaultKind) -> Self {
        let target = if kind.is_pixel_fault() {
            Target::ArrayWide {
                density: density.clamp(0.0, 1.0),
            }
        } else {
            Target::Global
        };
        self.entries.push((target, kind));
        self
    }

    /// Convenience: loses one multiplexed readout channel.
    pub fn lose_channel(self, channel: usize) -> Self {
        self.at(0, 0, FaultKind::ChannelLoss { channel })
    }

    /// Convenience: corrupts the serial link at the given bit-error rate.
    pub fn serial_bit_errors(self, rate: f64) -> Self {
        self.at(0, 0, FaultKind::SerialBitErrors { rate })
    }

    /// Compiles the plan for a `rows` × `cols` array.
    ///
    /// Array-wide entries each select `round(density × rows × cols)`
    /// distinct pixels with a partial Fisher–Yates shuffle driven by a
    /// [`SmallRng`] seeded from the plan seed, so compilation is
    /// reproducible and independent of entry order for per-pixel entries.
    /// Out-of-range per-pixel entries are ignored (the chip models
    /// validate addresses separately).
    pub fn compile(&self, rows: usize, cols: usize) -> CompiledFaults {
        let n = rows * cols;
        let mut pixels = vec![PixelFaults::default(); n];
        let mut lost_channels = Vec::new();
        let mut serial_bit_error_rate: f64 = 0.0;
        let mut injected: BTreeMap<FaultClass, usize> = BTreeMap::new();
        let mut rng = SmallRng::seed_from_u64(self.seed);

        for (target, kind) in &self.entries {
            match *target {
                Target::Pixel { row, col } => {
                    if row < rows && col < cols {
                        pixels[row * cols + col].merge(*kind);
                        *injected.entry(kind.class()).or_default() += 1;
                    }
                }
                Target::ArrayWide { density } => {
                    let picks = ((density * n as f64).round() as usize).min(n);
                    for idx in choose_distinct(n, picks, &mut rng) {
                        pixels[idx].merge(*kind);
                        *injected.entry(kind.class()).or_default() += 1;
                    }
                }
                Target::Global => match *kind {
                    FaultKind::ChannelLoss { channel } if !lost_channels.contains(&channel) => {
                        lost_channels.push(channel);
                        *injected.entry(kind.class()).or_default() += 1;
                    }
                    FaultKind::ChannelLoss { .. } => {}
                    FaultKind::SerialBitErrors { rate } => {
                        // Independent error processes compose:
                        // p = 1 − (1−p₁)(1−p₂).
                        let rate = rate.clamp(0.0, 1.0);
                        serial_bit_error_rate = 1.0 - (1.0 - serial_bit_error_rate) * (1.0 - rate);
                        *injected.entry(kind.class()).or_default() += 1;
                    }
                    // Pixel-class kinds need a pixel address; a Global
                    // target gives them nothing to act on, so they are
                    // dropped (and not counted as injected).
                    _ => {}
                },
            }
        }

        lost_channels.sort_unstable();
        CompiledFaults {
            rows,
            cols,
            seed: self.seed,
            pixels,
            lost_channels,
            serial_bit_error_rate,
            injected,
        }
    }
}

/// Picks `k` distinct indices from `0..n` (partial Fisher–Yates).
fn choose_distinct(n: usize, k: usize, rng: &mut SmallRng) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..n).collect();
    let k = k.min(n);
    for i in 0..k {
        let j = rng.gen_range(i..n);
        indices.swap(i, j);
    }
    indices.truncate(k);
    indices
}

/// A plan compiled for one concrete array geometry: the per-pixel fault
/// map plus the non-pixel fault state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledFaults {
    rows: usize,
    cols: usize,
    seed: u64,
    pixels: Vec<PixelFaults>,
    lost_channels: Vec<usize>,
    serial_bit_error_rate: f64,
    injected: BTreeMap<FaultClass, usize>,
}

impl CompiledFaults {
    /// A fault-free map for the given geometry.
    pub fn none(rows: usize, cols: usize) -> Self {
        InjectionPlan::new(0).compile(rows, cols)
    }

    /// Array rows this map was compiled for.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns this map was compiled for.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The seed the plan was compiled with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The aggregate fault state of one pixel. Out-of-range addresses
    /// report as fault-free.
    pub fn at(&self, row: usize, col: usize) -> PixelFaults {
        if row < self.rows && col < self.cols {
            self.pixels[row * self.cols + col]
        } else {
            PixelFaults::default()
        }
    }

    /// Per-pixel fault states in row-major order.
    pub fn pixels(&self) -> &[PixelFaults] {
        &self.pixels
    }

    /// Number of pixels carrying at least one fault.
    pub fn faulty_pixel_count(&self) -> usize {
        self.pixels.iter().filter(|f| f.is_faulty()).count()
    }

    /// `true` if the given readout channel is lost.
    pub fn channel_lost(&self, channel: usize) -> bool {
        self.lost_channels.binary_search(&channel).is_ok()
    }

    /// The lost readout channels, sorted.
    pub fn lost_channels(&self) -> &[usize] {
        &self.lost_channels
    }

    /// Per-bit flip probability on the serial link.
    pub fn serial_bit_error_rate(&self) -> f64 {
        self.serial_bit_error_rate
    }

    /// A deterministic corruptor for the serial link, derived from the
    /// plan seed.
    pub fn serial_corruptor(&self) -> SerialCorruptor {
        SerialCorruptor::new(
            self.serial_bit_error_rate,
            self.seed ^ 0x5e71_a1b1_7e77_0a5d,
        )
    }

    /// How many injections of each class the compilation performed.
    pub fn injected_counts(&self) -> &BTreeMap<FaultClass, usize> {
        &self.injected
    }

    /// `true` if no fault of any kind was compiled in.
    pub fn is_clean(&self) -> bool {
        self.faulty_pixel_count() == 0
            && self.lost_channels.is_empty()
            && self.serial_bit_error_rate == 0.0
    }
}

/// Flips bits of serial words with a fixed per-bit probability, using its
/// own deterministic RNG stream.
#[derive(Debug, Clone)]
pub struct SerialCorruptor {
    rate: f64,
    rng: SmallRng,
}

impl SerialCorruptor {
    /// A corruptor flipping each bit with probability `rate`.
    pub fn new(rate: f64, seed: u64) -> Self {
        Self {
            rate: rate.clamp(0.0, 1.0),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The per-bit flip probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Corrupts the low `bits` bits of `word`, returning the corrupted
    /// word and the number of bits flipped.
    pub fn corrupt(&mut self, word: u64, bits: u32) -> (u64, u32) {
        if self.rate <= 0.0 {
            return (word, 0);
        }
        let mut out = word;
        let mut flipped = 0;
        for b in 0..bits.min(64) {
            if self.rng.gen_bool(self.rate) {
                out ^= 1u64 << b;
                flipped += 1;
            }
        }
        (out, flipped)
    }

    /// Fresh randomness source shared with the corruptor's stream.
    pub fn rng(&mut self) -> &mut impl RngCore {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsa_units::Ampere;

    #[test]
    fn compile_is_deterministic() {
        let plan = InjectionPlan::new(7)
            .array_wide(0.1, FaultKind::DeadPixel)
            .array_wide(
                0.05,
                FaultKind::LeakyElectrode {
                    leakage: Ampere::from_pico(20.0),
                },
            );
        let a = plan.compile(128, 128);
        let b = plan.compile(128, 128);
        assert_eq!(a, b);
        assert!(a.faulty_pixel_count() > 0);
    }

    #[test]
    fn different_seeds_select_different_pixels() {
        let mk = |seed| {
            InjectionPlan::new(seed)
                .array_wide(0.1, FaultKind::DeadPixel)
                .compile(128, 128)
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn density_selects_expected_count() {
        let faults = InjectionPlan::new(3)
            .array_wide(0.1, FaultKind::DeadPixel)
            .compile(128, 128);
        let n = faults.faulty_pixel_count();
        // Exactly round(0.1 × 16384) distinct pixels.
        assert_eq!(n, 1638);
    }

    #[test]
    fn per_pixel_entry_lands_where_told() {
        let faults = InjectionPlan::new(0)
            .at(2, 5, FaultKind::StuckCount { count: 999 })
            .compile(8, 16);
        assert_eq!(faults.at(2, 5).stuck_count, Some(999));
        assert_eq!(faults.faulty_pixel_count(), 1);
    }

    #[test]
    fn out_of_range_entry_is_ignored() {
        let faults = InjectionPlan::new(0)
            .at(100, 100, FaultKind::DeadPixel)
            .compile(8, 16);
        assert!(faults.is_clean());
        assert!(!faults.at(100, 100).is_faulty());
    }

    #[test]
    fn channel_loss_and_serial_faults_are_global() {
        let faults = InjectionPlan::new(0)
            .lose_channel(3)
            .lose_channel(3)
            .serial_bit_errors(0.5)
            .serial_bit_errors(0.5)
            .compile(8, 16);
        assert_eq!(faults.lost_channels(), &[3]);
        assert!(faults.channel_lost(3));
        assert!(!faults.channel_lost(4));
        // Two independent 0.5 processes compose to 0.75.
        assert!((faults.serial_bit_error_rate() - 0.75).abs() < 1e-12);
        assert_eq!(faults.faulty_pixel_count(), 0);
    }

    #[test]
    fn full_density_hits_every_pixel() {
        let faults = InjectionPlan::new(9)
            .array_wide(1.0, FaultKind::DeadPixel)
            .compile(8, 16);
        assert_eq!(faults.faulty_pixel_count(), 128);
    }

    #[test]
    fn corruptor_flips_no_bits_at_zero_rate() {
        let mut c = SerialCorruptor::new(0.0, 1);
        assert_eq!(c.corrupt(0xDEAD_BEEF, 56), (0xDEAD_BEEF, 0));
    }

    #[test]
    fn corruptor_flips_all_bits_at_unit_rate() {
        let mut c = SerialCorruptor::new(1.0, 1);
        let (word, flipped) = c.corrupt(0, 8);
        assert_eq!(word, 0xFF);
        assert_eq!(flipped, 8);
    }

    #[test]
    fn entries_expose_the_planned_pairs_in_order() {
        let plan = InjectionPlan::new(5)
            .at(2, 3, FaultKind::DeadPixel)
            .array_wide(0.25, FaultKind::ComparatorStuck { high: true })
            .lose_channel(7);
        let entries: Vec<_> = plan.entries().collect();
        assert_eq!(
            entries,
            vec![
                (PlanTarget::Pixel { row: 2, col: 3 }, FaultKind::DeadPixel),
                (
                    PlanTarget::ArrayWide { density: 0.25 },
                    FaultKind::ComparatorStuck { high: true }
                ),
                (PlanTarget::Global, FaultKind::ChannelLoss { channel: 7 }),
            ]
        );
    }

    #[test]
    fn injected_counts_track_classes() {
        let faults = InjectionPlan::new(11)
            .at(0, 0, FaultKind::DeadPixel)
            .at(1, 1, FaultKind::DeadPixel)
            .lose_channel(2)
            .compile(8, 16);
        assert_eq!(faults.injected_counts()[&FaultClass::DeadPixel], 2);
        assert_eq!(faults.injected_counts()[&FaultClass::ChannelLoss], 1);
    }
}
