//! The 16×8 DNA-microarray chip (paper Section 2, Figs. 3–4).
//!
//! Each of the 128 sensor sites carries an interdigitated gold electrode
//! whose redox-cycling current (1 pA … 100 nA) is digitized *in the pixel*
//! by a current-to-frequency sawtooth converter: a regulation loop holds
//! the electrode potential, the sensor current charges C_int, a comparator
//! plus delay stage fires a reset pulse, and a counter counts reset events
//! within the measurement frame. The chip periphery provides bandgap and
//! current references, auto-calibration, electrochemical DACs, and a 6-pin
//! serial interface.

mod calibration;
mod chip;
mod interface;
mod pixel;

pub use calibration::{CalibrationReport, GainCalibration};
pub use chip::{AssayReadout, DnaChip, DnaChipConfig, KineticReadout, RobustReadout, SampleMix};
pub use interface::{
    decode_frames, decode_frames_lenient, encode_frames, PixelReading, SerialError, PIN_COUNT,
    WORD_BITS,
};
pub use pixel::{ConversionResult, DnaPixel, DnaPixelConfig, PixelVariation};
