//! Criterion bench for experiment E-F6b (paper Fig. 6, signal path): per-
//! sample processing through the ×100/×7/×4/×2 chain at the real dwell
//! time, and the gain-calibration procedure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bsa_core::neuro_chip::{ChainConfig, ChannelChain};
use bsa_units::{Ampere, Seconds};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_process_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("f6b_chain");
    for (label, dwell_ns) in [("2kfps_dwell_488ns", 488.0), ("16kfps_dwell_61ns", 61.0)] {
        group.bench_with_input(
            BenchmarkId::new("process_sample", label),
            &dwell_ns,
            |b, &dwell_ns| {
                let mut rng = SmallRng::seed_from_u64(1);
                let mut chain = ChannelChain::sample(ChainConfig::default(), &mut rng);
                chain.calibrate();
                let dwell = Seconds::from_nano(dwell_ns);
                b.iter(|| {
                    black_box(chain.process_sample(
                        black_box(Ampere::from_nano(10.0)),
                        dwell,
                        &mut rng,
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_calibrate(c: &mut Criterion) {
    c.bench_function("f6b_stage_calibration", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        let chain = ChannelChain::sample(ChainConfig::default(), &mut rng);
        b.iter(|| {
            let mut ch = chain.clone();
            ch.calibrate();
            black_box(ch.current_gain())
        });
    });
}

fn bench_row_burst(c: &mut Criterion) {
    // One full row over 16 channels × 8 mux slots = 128 samples.
    let mut group = c.benchmark_group("f6b_row");
    group.sample_size(20);
    group.bench_function("row_128_samples_16_channels", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut channels: Vec<ChannelChain> = (0..16)
            .map(|_| {
                let mut ch = ChannelChain::sample(ChainConfig::default(), &mut rng);
                ch.calibrate();
                ch
            })
            .collect();
        let dwell = Seconds::from_nano(488.0);
        b.iter(|| {
            let mut acc = 0.0;
            for ch in &mut channels {
                ch.reset_settling();
            }
            for slot in 0..8 {
                for ch in channels.iter_mut() {
                    let i = Ampere::from_nano(slot as f64);
                    acc += ch.process_sample(i, dwell, &mut rng).value();
                }
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_process_sample,
    bench_calibrate,
    bench_row_burst
);
criterion_main!(benches);
