//! The closed control loop: observe → classify → decide → act, with
//! deadline-bounded, retried link calls.

use crate::backoff::Backoff;
use crate::classifier::{ChipAssessment, ChipCondition, StateClassifier};
use crate::error::ControlError;
use crate::link::ControlLink;
use crate::policy::{Action, PolicyEngine};
use crate::trace::{permille, RecoveryTrace, TraceEvent};
use bsa_link::{ChipId, CultureSpec, DnaChipSpec, NeuroChipSpec, TargetSpec};
use bsa_station::ClientError;
use std::collections::BTreeSet;

/// What the controller supervises.
#[derive(Debug, Clone)]
pub enum ChipTarget {
    /// A neural-recording chip observed through streamed frames.
    Neuro {
        /// Attachment parameters.
        spec: NeuroChipSpec,
        /// Culture driving the recorded activity.
        culture: CultureSpec,
        /// Frames streamed per observation tick.
        frames_per_tick: u32,
    },
    /// A DNA microarray observed through assay counts.
    Dna {
        /// Attachment parameters.
        spec: DnaChipSpec,
        /// Probe sequences spotted at configure time.
        probes: Vec<String>,
        /// Sample mix applied at configure time.
        targets: Vec<TargetSpec>,
    },
}

/// Retry bounds for deadline-bounded link requests.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per request (first try included).
    pub max_attempts: u32,
    /// Backoff schedule between attempts.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff: Backoff::default(),
        }
    }
}

/// Result of a [`Controller::run`] loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Whether yield crossed the recovery target within the budget.
    pub recovered: bool,
    /// Ticks consumed (observation windows).
    pub ticks_used: u32,
    /// Effective yield at exit, in permille.
    pub final_yield_permille: u32,
}

/// Drives one chip through observe/classify/decide/act cycles.
#[derive(Debug)]
pub struct Controller<L: ControlLink> {
    link: L,
    target: ChipTarget,
    chip: ChipId,
    rows: u16,
    cols: u16,
    classifier: StateClassifier,
    policy: PolicyEngine,
    retry: RetryPolicy,
    masked: BTreeSet<u32>,
    trace: RecoveryTrace,
    baseline_yield: f64,
    recovery_fraction: f64,
}

impl<L: ControlLink> Controller<L> {
    /// Attaches the target chip, calibrates it, and captures the
    /// pre-fault baseline the recovery target is measured against.
    ///
    /// # Errors
    ///
    /// Propagates link failures (after retries for timeouts).
    pub fn start(
        link: L,
        target: ChipTarget,
        classifier: StateClassifier,
        policy: PolicyEngine,
        retry: RetryPolicy,
        scenario: impl Into<String>,
    ) -> Result<Self, ControlError> {
        let mut controller = Self {
            link,
            target,
            chip: 0,
            rows: 0,
            cols: 0,
            classifier,
            policy,
            retry,
            masked: BTreeSet::new(),
            trace: RecoveryTrace::new(scenario),
            baseline_yield: 1.0,
            recovery_fraction: 0.9,
        };
        controller.attach_and_baseline()?;
        Ok(controller)
    }

    /// Sets the recovery target as a fraction of the pre-fault
    /// baseline yield (default 0.9).
    pub fn set_recovery_fraction(&mut self, fraction: f64) {
        self.recovery_fraction = fraction.clamp(0.0, 1.0);
    }

    /// The current chip handle (changes after a reattach).
    #[must_use]
    pub fn chip(&self) -> ChipId {
        self.chip
    }

    /// Baseline yield captured at start, `0..=1`.
    #[must_use]
    pub fn baseline_yield(&self) -> f64 {
        self.baseline_yield
    }

    /// The decision log so far.
    #[must_use]
    pub fn trace(&self) -> &RecoveryTrace {
        &self.trace
    }

    /// Consumes the controller, returning its trace.
    #[must_use]
    pub fn into_trace(self) -> RecoveryTrace {
        self.trace
    }

    /// The underlying link, e.g. to inject scenario faults between
    /// baseline capture and the recovery run.
    pub fn link_mut(&mut self) -> &mut L {
        &mut self.link
    }

    /// Runs the loop for at most `max_ticks` observation windows.
    /// Returns early once effective yield is back above
    /// `recovery_fraction * baseline_yield`.
    ///
    /// # Errors
    ///
    /// Propagates link failures (after retries for timeouts).
    pub fn run(&mut self, max_ticks: u32) -> Result<RunOutcome, ControlError> {
        let mut last_permille = 0;
        for tick in 0..max_ticks {
            let assessment = self.observe(tick)?;
            let yield_permille = permille(assessment.effective_yield);
            last_permille = yield_permille;
            self.trace.push(TraceEvent::Observed {
                tick,
                condition: condition_label(assessment.condition).to_string(),
                yield_permille,
            });
            let healthy_enough =
                assessment.effective_yield >= self.recovery_fraction * self.baseline_yield;
            if healthy_enough {
                self.trace.push(TraceEvent::Recovered {
                    tick,
                    yield_permille,
                });
                return Ok(RunOutcome {
                    recovered: true,
                    ticks_used: tick + 1,
                    final_yield_permille: yield_permille,
                });
            }
            match self.policy.decide(&assessment) {
                None => {}
                Some(action) => {
                    self.trace.push(TraceEvent::Decided {
                        tick,
                        action: action.label(),
                    });
                    let label = action.label();
                    let outcome = self.execute(tick, action);
                    self.trace.push(TraceEvent::Executed {
                        tick,
                        action: label,
                        ok: outcome.is_ok(),
                    });
                    outcome?;
                }
            }
        }
        Ok(RunOutcome {
            recovered: false,
            ticks_used: max_ticks,
            final_yield_permille: last_permille,
        })
    }

    fn attach_and_baseline(&mut self) -> Result<(), ControlError> {
        match self.target.clone() {
            ChipTarget::Neuro {
                spec,
                culture,
                frames_per_tick,
            } => {
                let attached = self.with_retry(0, |link| link.attach_neuro(&spec))?;
                self.chip = attached.chip;
                self.rows = attached.rows;
                self.cols = attached.cols;
                self.with_retry(0, |link| link.calibrate(attached.chip))?;
                let chip = self.chip;
                let stream = self.with_retry(0, |link| {
                    link.stream_frames(chip, frames_per_tick, &culture)
                })?;
                let summary = self.with_retry(0, |link| link.health(chip))?;
                let assessment = self.classifier.observe_neuro(
                    &summary,
                    self.rows,
                    self.cols,
                    &stream.frames,
                    &self.masked,
                );
                self.baseline_yield = assessment.effective_yield.max(f64::MIN_POSITIVE);
            }
            ChipTarget::Dna {
                spec,
                probes,
                targets,
            } => {
                let attached = self.with_retry(0, |link| link.attach_dna(&spec))?;
                self.chip = attached.chip;
                self.rows = attached.rows;
                self.cols = attached.cols;
                let chip = self.chip;
                self.with_retry(0, |link| {
                    link.configure_assay(chip, probes.clone(), targets.clone())
                })?;
                self.with_retry(0, |link| link.calibrate(chip))?;
                let outcome = self.with_retry(0, |link| link.run_assay(chip))?;
                self.classifier
                    .set_dna_baseline(outcome.estimated_currents_a);
                self.baseline_yield = 1.0;
            }
        }
        Ok(())
    }

    fn observe(&mut self, tick: u32) -> Result<ChipAssessment, ControlError> {
        let chip = self.chip;
        match self.target.clone() {
            ChipTarget::Neuro {
                culture,
                frames_per_tick,
                ..
            } => {
                let stream = self.with_retry(tick, |link| {
                    link.stream_frames(chip, frames_per_tick, &culture)
                })?;
                let summary = self.with_retry(tick, |link| link.health(chip))?;
                Ok(self.classifier.observe_neuro(
                    &summary,
                    self.rows,
                    self.cols,
                    &stream.frames,
                    &self.masked,
                ))
            }
            ChipTarget::Dna { .. } => {
                let outcome = self.with_retry(tick, |link| link.run_assay(chip))?;
                let summary = self.with_retry(tick, |link| link.health(chip))?;
                Ok(self
                    .classifier
                    .observe_dna(&summary, &outcome.estimated_currents_a))
            }
        }
    }

    fn execute(&mut self, tick: u32, action: Action) -> Result<(), ControlError> {
        let chip = self.chip;
        match action {
            Action::Recalibrate => {
                self.with_retry(tick, |link| link.calibrate(chip))?;
            }
            Action::MaskPixels(pixels) => {
                self.with_retry(tick, |link| link.mask_pixels(chip, &pixels))?;
                self.masked.extend(pixels.iter().copied());
            }
            Action::ReRunAssay => {
                self.with_retry(tick, |link| link.run_assay(chip))?;
            }
            Action::Reattach { seed } => {
                self.with_retry(tick, |link| link.detach(chip))?;
                self.masked.clear();
                self.policy.reset_escalation();
                self.reseed_target(seed);
                self.attach_and_baseline()?;
            }
        }
        Ok(())
    }

    /// Gives the replacement chip its own RNG stream while keeping
    /// geometry and assay configuration.
    fn reseed_target(&mut self, seed: u64) {
        match &mut self.target {
            ChipTarget::Neuro { spec, .. } => spec.seed = seed,
            ChipTarget::Dna { spec, .. } => spec.seed = seed,
        }
    }

    /// Runs a link call, retrying timeouts with deterministic backoff.
    /// Non-timeout failures surface immediately.
    fn with_retry<T>(
        &mut self,
        tick: u32,
        mut call: impl FnMut(&mut L) -> Result<T, ClientError>,
    ) -> Result<T, ControlError> {
        let attempts = self.retry.max_attempts.max(1);
        for attempt in 0..attempts {
            match call(&mut self.link) {
                Ok(value) => return Ok(value),
                Err(ClientError::Timeout) => {
                    if attempt + 1 < attempts {
                        let delay_ms = self.retry.backoff.delay_ms(attempt);
                        self.trace.push(TraceEvent::Retried {
                            tick,
                            attempt,
                            delay_ms,
                        });
                        self.link.pause_ms(delay_ms);
                    }
                }
                Err(other) => return Err(ControlError::Client(other)),
            }
        }
        Err(ControlError::Exhausted { attempts })
    }
}

/// Stable label for a chip condition in traces.
#[must_use]
pub fn condition_label(condition: ChipCondition) -> &'static str {
    match condition {
        ChipCondition::Healthy => "healthy",
        ChipCondition::ChannelLoss => "channel_loss",
        ChipCondition::DeadPixels => "dead_pixels",
        ChipCondition::BaselineDrift => "baseline_drift",
        ChipCondition::Clipping => "clipping",
        ChipCondition::HybridizationDetected => "hybridization_detected",
        ChipCondition::Unobserved => "unobserved",
    }
}
