#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! Property-based tests over the fault-injection subsystem: injection
//! never panics, degraded readouts stay well-formed, and the error types
//! behave like proper `std::error::Error`s.

use cmos_biosensor_arrays::chips::array::ArrayGeometry;
use cmos_biosensor_arrays::chips::dna_chip::{DnaChip, DnaChipConfig, SerialError};
use cmos_biosensor_arrays::chips::neuro_chip::{NeuroChip, NeuroChipConfig};
use cmos_biosensor_arrays::chips::{ChipError, DegradationMode};
use cmos_biosensor_arrays::circuit::CircuitError;
use cmos_biosensor_arrays::faults::{FaultClass, FaultKind, InjectionPlan};
use cmos_biosensor_arrays::units::{Ampere, Meter, Seconds, Volt};
use proptest::prelude::*;
use std::error::Error;

fn arb_fault_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::DeadPixel),
        (0u64..1 << 24).prop_map(|count| FaultKind::StuckCount { count }),
        (0.0f64..1000.0).prop_map(|pa| FaultKind::LeakyElectrode {
            leakage: Ampere::from_pico(pa),
        }),
        (-1000.0f64..1000.0).prop_map(|mv| FaultKind::ComparatorDrift {
            offset: Volt::from_milli(mv),
        }),
        any::<bool>().prop_map(|high| FaultKind::ComparatorStuck { high }),
        (1.0f64..3.0).prop_map(|limit| FaultKind::DacSaturation { limit }),
        (0.0f64..5000.0).prop_map(|mv| FaultKind::GainClipping {
            limit: Volt::from_milli(mv),
        }),
        (0usize..40).prop_map(|channel| FaultKind::ChannelLoss { channel }),
        (0.0f64..1.0).prop_map(|rate| FaultKind::SerialBitErrors { rate }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Arbitrary fault kinds at arbitrary — including out-of-range —
    /// addresses compile, inject, calibrate and measure without a panic.
    #[test]
    fn injection_at_arbitrary_addresses_never_panics(
        seed in 0u64..1000,
        faults in prop::collection::vec(
            ((0usize..64), (0usize..64), arb_fault_kind()),
            0..12,
        ),
    ) {
        let mut plan = InjectionPlan::new(seed);
        for (row, col, kind) in faults {
            plan = plan.at(row, col, kind);
        }
        let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();
        let compiled = plan.compile(
            chip.geometry().rows(),
            chip.geometry().cols(),
        );
        chip.inject_faults(&compiled).unwrap();
        chip.auto_calibrate();
        let currents = vec![Ampere::from_nano(1.0); chip.geometry().len()];
        let counts = chip.measure_currents(&currents).unwrap();
        let estimates = chip.estimate_currents(&counts).unwrap();
        prop_assert!(estimates.iter().all(|a| a.value().is_finite()));
        let report = chip.yield_report();
        prop_assert_eq!(
            report.healthy + report.out_of_family + report.dead,
            report.total_pixels
        );
    }

    /// A die with every pixel faulty still produces a well-formed yield
    /// report — and declares itself unusable rather than lying.
    #[test]
    fn all_faulty_array_reports_well_formed_yield(
        seed in 0u64..1000,
        extra in arb_fault_kind(),
    ) {
        let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();
        let compiled = InjectionPlan::new(seed)
            .array_wide(1.0, FaultKind::DeadPixel)
            .array_wide(0.5, extra)
            .compile(chip.geometry().rows(), chip.geometry().cols());
        chip.inject_faults(&compiled).unwrap();
        chip.auto_calibrate();
        let report = chip.yield_report();
        prop_assert_eq!(report.dead, report.total_pixels);
        prop_assert_eq!(report.degradation, DegradationMode::Unusable);
        prop_assert!(report.usable_fraction() == 0.0);
        prop_assert!(!report.is_clean());
        prop_assert!(report.injected.contains_key(&FaultClass::DeadPixel));
        // The masked readout itself still yields finite numbers.
        let currents = vec![Ampere::from_nano(1.0); chip.geometry().len()];
        let counts = chip.measure_currents(&currents).unwrap();
        prop_assert_eq!(counts.len(), chip.geometry().len());
        // Display renders without panicking.
        prop_assert!(!format!("{report}").is_empty());
    }

    /// Neuro die: arbitrary channel losses always land masked, never
    /// panic, and the report accounting stays consistent.
    #[test]
    fn neuro_channel_loss_keeps_reports_consistent(
        channel in 0usize..8,
        seed in 0u64..100,
    ) {
        let mut chip = NeuroChip::new(NeuroChipConfig {
            geometry: ArrayGeometry::new(16, 16, Meter::from_micro(7.8)).unwrap(),
            channels: 4,
            ..NeuroChipConfig::default()
        })
        .unwrap();
        let compiled = InjectionPlan::new(seed)
            .lose_channel(channel)
            .compile(16, 16);
        chip.inject_faults(&compiled).unwrap();
        chip.calibrate(Seconds::ZERO);
        let report = chip.yield_report();
        prop_assert_eq!(
            report.healthy + report.out_of_family + report.dead,
            report.total_pixels
        );
        if channel < 4 {
            prop_assert!(report.dead >= 16 * 4, "lost channel masks its columns");
            prop_assert_eq!(report.lost_channels.clone(), vec![channel]);
        } else {
            // Out-of-range channels are recorded but hit no pixel.
            prop_assert_eq!(report.dead, 0);
        }
    }
}

/// Every error variant renders a non-empty `Display` and honors the
/// `source()` chain contract.
#[test]
fn chip_error_display_and_source_round_trip() {
    let serial = SerialError::BadChecksum { word_index: 3 };
    let variants: Vec<(ChipError, bool)> = vec![
        (
            ChipError::InvalidConfig {
                reason: "negative frame time".into(),
            },
            false,
        ),
        (
            ChipError::AddressOutOfRange {
                row: 9,
                col: 20,
                rows: 8,
                cols: 16,
            },
            false,
        ),
        (
            ChipError::LengthMismatch {
                expected: 128,
                got: 5,
            },
            false,
        ),
        (
            ChipError::SerialDecode {
                reason: "bad sync".into(),
            },
            false,
        ),
        (
            ChipError::SerialUnrecoverable {
                failed_words: 2,
                rereads: 8,
                last: serial.clone(),
            },
            true,
        ),
        (
            ChipError::FaultGeometryMismatch {
                map: (4, 4),
                chip: (8, 16),
            },
            false,
        ),
        (
            ChipError::Circuit(CircuitError::NonPositiveParameter {
                name: "channel width",
                value: -1.0,
            }),
            true,
        ),
    ];
    for (error, has_source) in &variants {
        let shown = error.to_string();
        assert!(!shown.is_empty(), "{error:?} renders empty");
        assert_eq!(
            error.source().is_some(),
            *has_source,
            "wrong source() for {error:?}"
        );
        if let Some(src) = error.source() {
            // The chained message must surface in the outer Display too,
            // so operators see the root cause without walking the chain.
            assert!(
                shown.contains(&src.to_string()),
                "{shown:?} hides its source {src}"
            );
        }
    }

    // SerialError itself is a proper Error.
    for e in [
        SerialError::BadSync { got: 0x5A },
        SerialError::BadChecksum { word_index: 7 },
        SerialError::Truncated { leftover_bits: 13 },
    ] {
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_none());
    }

    // Fault classes keep their stable reporting names.
    for class in FaultClass::ALL {
        assert_eq!(class.to_string(), class.name());
    }
}
