//! Experiment E-FT: fault density vs genotyping-call accuracy.
//!
//! Sweeps random pixel-fault density on the 16×8 DNA microarray and
//! measures how far the fault-tolerance stack — calibration retry with
//! escalation, health masking, robust serial readout, redundant-spot
//! majority voting — carries the assay before calls start to break.
//! A second sweep stresses the serial link alone: bit-error rate vs
//! words recovered by bounded re-reads.

use bsa_bench::{banner, pct, sig, Table};
use bsa_core::dna_chip::{DnaChip, DnaChipConfig, SampleMix};
use bsa_dsp::calling::{Call, MatchCaller};
use bsa_electrochem::redundancy::RedundantLayout;
use bsa_electrochem::sequence::DnaSequence;
use bsa_faults::{FaultKind, InjectionPlan};
use bsa_units::{Ampere, Molar, Volt};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const TARGETS: usize = 42;
const REPLICATES: usize = 3;
const PRESENT: [usize; 5] = [4, 17, 23, 30, 41];
const TRIALS: u64 = 3;

struct TrialOutcome {
    voted_correct: usize,
    spot_calls_correct: usize,
    spots_called: usize,
    usable_fraction: f64,
}

fn run_trial(density: f64, seed: u64) -> TrialOutcome {
    let mut config = DnaChipConfig::default();
    config.assay.wash_stringency = 100.0;
    config.seed = seed.wrapping_mul(7919) + 1;

    let layout = RedundantLayout::new(TARGETS, REPLICATES);
    let mut rng = SmallRng::seed_from_u64(11);
    let probes: Vec<DnaSequence> = (0..TARGETS)
        .map(|_| DnaSequence::random(22, &mut rng))
        .collect();
    let mut sample = SampleMix::new();
    for &t in &PRESENT {
        sample = sample.with_target(probes[t].reverse_complement(), Molar::from_nano(100.0));
    }

    let mut chip = DnaChip::new(config).expect("valid config");
    chip.spot_all(&layout.expand(&probes));

    // A representative fault mix at the requested density: mostly dead
    // pixels, plus drifted comparators, leaky electrodes and a noisy
    // serial link.
    let plan = InjectionPlan::new(seed)
        .array_wide(density * 0.6, FaultKind::DeadPixel)
        .array_wide(
            density * 0.2,
            FaultKind::ComparatorDrift {
                offset: Volt::from_milli(400.0),
            },
        )
        .array_wide(
            density * 0.2,
            FaultKind::LeakyElectrode {
                leakage: Ampere::from_pico(5.0),
            },
        )
        .serial_bit_errors(if density > 0.0 { 1e-3 } else { 0.0 });
    let faults = plan.compile(chip.geometry().rows(), chip.geometry().cols());
    chip.inject_faults(&faults).expect("geometry matches");
    chip.auto_calibrate();

    let readout = chip.run_assay(&sample);
    let robust = chip.serial_readout_robust(&readout, 8);
    // Fall back to the counts of the words that did arrive; unrecovered
    // words keep the direct (pre-link) counts so the sweep measures
    // calling, not link failure.
    let counts: Vec<u64> = robust
        .words
        .iter()
        .zip(readout.counts.iter())
        .map(|(w, direct)| w.as_ref().map_or(*direct, |r| r.count))
        .collect();
    let estimates = chip
        .estimate_currents(&counts)
        .expect("one count per pixel");
    let currents: Vec<f64> = estimates.iter().map(|a| a.value()).collect();
    let spot_matches: Vec<bool> = MatchCaller::default()
        .call(&currents)
        .calls
        .iter()
        .map(|c| *c == Call::Match)
        .collect();

    let usable = chip.health().usable_mask();
    let voted = layout.vote(&spot_matches, &usable);

    let mut voted_correct = 0;
    for (t, v) in voted.iter().enumerate() {
        if v.matched() == PRESENT.contains(&t) {
            voted_correct += 1;
        }
    }
    // Raw per-spot accuracy (no masking, no voting) for contrast.
    let mut spot_calls_correct = 0;
    let mut spots_called = 0;
    for (spot, called_match) in spot_matches.iter().enumerate().take(layout.total_spots()) {
        let t = spot % TARGETS;
        spots_called += 1;
        if *called_match == PRESENT.contains(&t) {
            spot_calls_correct += 1;
        }
    }

    TrialOutcome {
        voted_correct,
        spot_calls_correct,
        spots_called,
        usable_fraction: chip.yield_report().usable_fraction(),
    }
}

fn main() {
    banner(
        "E-FT",
        "fault-tolerant readout (robustness study, beyond the paper's figures)",
        "redundant spotting + health masking keep genotyping calls correct to ≥10 % faulty sites",
    );

    println!(
        "Panel: {TARGETS} targets × {REPLICATES} interleaved replicates on the 16×8 array, \
         {} targets present at 100 nM, {TRIALS} dies per density.",
        PRESENT.len()
    );
    println!();

    let mut t = Table::new(
        "Fault density vs call accuracy (mean over dies)",
        &[
            "fault density",
            "usable pixels",
            "raw spot accuracy",
            "voted target accuracy",
        ],
    );
    for density in [0.0, 0.02, 0.05, 0.08, 0.10, 0.15, 0.25] {
        let mut voted = 0.0;
        let mut raw = 0.0;
        let mut usable = 0.0;
        for trial in 0..TRIALS {
            let o = run_trial(density, 1 + trial);
            voted += o.voted_correct as f64 / TARGETS as f64;
            raw += o.spot_calls_correct as f64 / o.spots_called as f64;
            usable += o.usable_fraction;
        }
        let n = TRIALS as f64;
        t.add_row(vec![
            pct(density),
            pct(usable / n),
            pct(raw / n),
            pct(voted / n),
        ]);
    }
    t.print();
    println!();

    // Serial-link stress: BER vs re-read effort on one clean-pixel die.
    let mut t = Table::new(
        "Serial link: bit-error rate vs bounded re-reads (128-word frame)",
        &["BER", "clean", "recovered", "unrecovered", "rereads"],
    );
    for ber in [1e-5, 1e-4, 1e-3, 1e-2, 5e-2] {
        let mut chip = DnaChip::new(DnaChipConfig::default()).expect("valid");
        chip.auto_calibrate();
        let faults = InjectionPlan::new(5)
            .serial_bit_errors(ber)
            .compile(chip.geometry().rows(), chip.geometry().cols());
        chip.inject_faults(&faults).expect("geometry matches");
        let readout = chip.run_assay(&SampleMix::new());
        let robust = chip.serial_readout_robust(&readout, 8);
        t.add_row(vec![
            sig(ber, 1),
            robust.stats.clean_words.to_string(),
            robust.stats.recovered_words.to_string(),
            robust.stats.unrecovered_words.to_string(),
            robust.stats.rereads.to_string(),
        ]);
    }
    t.print();
}
