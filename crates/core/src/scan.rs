//! Shared readout-engine infrastructure used by both chip pipelines:
//! scan options, deterministic RNG stream derivation, and the
//! allocation-free frame arena.
//!
//! Determinism contract: every noise draw in a scan comes from a stream
//! whose seed is a pure function of (die seed, stream identity). Workers
//! never share an RNG, so fanning the work out over any number of threads
//! cannot change a single sample — parallel and serial runs are
//! bit-identical.

/// Salt folded into the die seed for the neuro chip's frame-noise stream
/// family, chosen so channel streams cannot collide with the other
/// per-die derived seeds (`seed ^ 0x6A1` for gain maps, `seed ^ 0xBEEF`
/// for offset maps).
const FRAME_STREAM_SALT: u64 = 0xF0F0;

/// Salt for the DNA chip's conversion-noise stream family.
const CONVERSION_STREAM_SALT: u64 = 0xD4A;

/// SplitMix64-style finalizer over a die seed, a family salt and a
/// stream index: decorrelates adjacent indices so per-stream `SmallRng`s
/// start in unrelated regions of the seed space.
pub fn stream_seed(die_seed: u64, salt: u64, index: u64) -> u64 {
    let mut z = die_seed ^ salt ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of one neuro-chip output channel's frame-noise RNG stream.
pub fn channel_stream_seed(die_seed: u64, channel: usize) -> u64 {
    stream_seed(die_seed, FRAME_STREAM_SALT, channel as u64)
}

/// Seed of one DNA-chip pixel's conversion-noise RNG stream for one
/// conversion epoch (each array-wide conversion advances the epoch, so
/// repeated conversions draw fresh noise yet stay reproducible).
pub fn conversion_stream_seed(die_seed: u64, epoch: u64, pixel: usize) -> u64 {
    stream_seed(
        stream_seed(die_seed, CONVERSION_STREAM_SALT, epoch),
        CONVERSION_STREAM_SALT,
        pixel as u64,
    )
}

/// Which evaluation path a neuro scan uses for the per-sample pixel
/// current. Either way the output is bit-identical across thread counts;
/// the two modes differ from each other only by the documented
/// linearization tolerance (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Calibrated linearized fast path: per-pixel small-signal transfer
    /// coefficients and precompiled culture source lists, re-linearized at
    /// every recalibration boundary. The default.
    #[default]
    Linearized,
    /// Full per-sample EKV circuit solve — the bit-exact reference path.
    Reference,
}

/// Options controlling how a readout is fanned out over worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanOptions {
    /// Worker threads. `None` picks the runtime's available parallelism
    /// (capped at the work-unit count); `Some(1)` forces the serial path.
    /// Output is identical for every setting — per-stream RNGs make the
    /// scan scheduling-independent.
    pub threads: Option<usize>,
    /// Evaluation path for neuro scans (DNA conversions ignore this).
    pub mode: ScanMode,
}

impl ScanOptions {
    /// Options forcing fully serial execution.
    pub fn serial() -> Self {
        Self {
            threads: Some(1),
            mode: ScanMode::default(),
        }
    }

    /// Options requesting a specific worker-thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: Some(threads.max(1)),
            mode: ScanMode::default(),
        }
    }

    /// Options selecting the full-solve reference path (auto threads).
    pub fn reference() -> Self {
        Self {
            threads: None,
            mode: ScanMode::Reference,
        }
    }

    /// Returns these options with the given evaluation mode.
    #[must_use]
    pub fn with_mode(mut self, mode: ScanMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Resolves the effective worker count for `units` parallel work units.
/// Without the `parallel` feature this is always 1.
pub(crate) fn resolve_threads(units: usize, opts: ScanOptions) -> usize {
    #[cfg(feature = "parallel")]
    let auto = rayon::current_num_threads();
    #[cfg(not(feature = "parallel"))]
    let auto = 1;
    let requested = opts.threads.unwrap_or(auto).max(1);
    #[cfg(not(feature = "parallel"))]
    let requested = {
        let _ = requested;
        1
    };
    requested.min(units.max(1))
}

/// Statistics of a [`FrameArena`]'s buffer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Frame buffers allocated fresh from the heap.
    pub allocations: u64,
    /// Frame buffers served from the recycle pool.
    pub reuses: u64,
}

/// A pool of frame buffers: recordings recycled into the arena donate
/// their sample buffers back, so a steady-state record loop allocates no
/// per-frame memory.
#[derive(Debug, Clone, Default)]
pub struct FrameArena {
    free: Vec<Vec<f64>>,
    /// Channel-major scratch for in-flight scan chunks, reused across
    /// chunks and record calls.
    pub(crate) stripe: Vec<f64>,
    stats: ArenaStats,
}

impl FrameArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires a zeroed buffer of `len` samples, reusing a pooled buffer
    /// when one is available.
    pub(crate) fn acquire(&mut self, len: usize) -> Vec<f64> {
        match self.free.pop() {
            Some(mut buf) => {
                self.stats.reuses += 1;
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.stats.allocations += 1;
                vec![0.0; len]
            }
        }
    }

    /// Returns a sample buffer to the pool.
    pub(crate) fn release(&mut self, buf: Vec<f64>) {
        self.free.push(buf);
    }

    /// Number of pooled buffers currently available.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Pool statistics since the arena was created.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_streams_do_not_collide_on_adjacent_indices() {
        let die = 0x0EE5_1281;
        let seeds: Vec<u64> = (0..16).map(|ch| channel_stream_seed(die, ch)).collect();
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "channels {i} and {j} share a seed");
            }
        }
    }

    #[test]
    fn conversion_streams_differ_across_epochs_and_pixels() {
        let die = 0xD9A_C819;
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..8u64 {
            for pixel in 0..128usize {
                assert!(
                    seen.insert(conversion_stream_seed(die, epoch, pixel)),
                    "epoch {epoch} pixel {pixel} aliases an earlier stream"
                );
            }
        }
    }

    #[test]
    fn arena_reuses_recycled_buffers() {
        let mut arena = FrameArena::new();
        let a = arena.acquire(64);
        assert_eq!(arena.stats().allocations, 1);
        arena.release(a);
        let b = arena.acquire(64);
        assert_eq!(arena.stats().reuses, 1);
        assert_eq!(arena.stats().allocations, 1);
        assert!(b.iter().all(|&x| x == 0.0), "reused buffers are zeroed");
    }

    #[test]
    fn thread_resolution_clamps_to_work_units() {
        assert_eq!(resolve_threads(16, ScanOptions::serial()), 1);
        let t = resolve_threads(4, ScanOptions::with_threads(64));
        assert!((1..=4).contains(&t));
        let auto = resolve_threads(16, ScanOptions::default());
        assert!((1..=16).contains(&auto));
    }
}
