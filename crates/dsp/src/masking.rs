//! Dead-pixel masking and neighbor interpolation.
//!
//! Fabrication defects and in-field faults leave individual sensor sites
//! unusable; calibration flags them, and downstream processing must not
//! let a dead pixel's bogus sample leak into maps, filters, or calls.
//! This module carries the per-pixel usability mask produced by the
//! chip-side health monitor (as plain booleans, row-major) and repairs
//! masked samples by averaging their usable neighbors — the standard
//! graceful-degradation move for imaging arrays.

use crate::frames::FrameStack;
use crate::stats::median;
use serde::{Deserialize, Serialize};

/// Row-major per-pixel usability mask over a sensor array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PixelMask {
    rows: usize,
    cols: usize,
    usable: Vec<bool>,
}

/// How a masked pixel was repaired by [`PixelMask::interpolate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Repair {
    /// The pixel was usable; its sample is untouched.
    Untouched,
    /// Replaced by the mean of its usable 8-neighborhood.
    FromNeighbors,
    /// No usable neighbor existed; replaced by the median of all usable
    /// samples in the frame (0.0 if the whole frame is masked).
    FromGlobalMedian,
}

/// Per-frame repair summary from [`PixelMask::interpolate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairReport {
    /// One entry per pixel, row-major.
    pub repairs: Vec<Repair>,
}

impl RepairReport {
    /// Number of pixels repaired from their neighborhood.
    pub fn from_neighbors(&self) -> usize {
        self.repairs
            .iter()
            .filter(|r| **r == Repair::FromNeighbors)
            .count()
    }

    /// Number of pixels that fell back to the global median.
    pub fn from_global_median(&self) -> usize {
        self.repairs
            .iter()
            .filter(|r| **r == Repair::FromGlobalMedian)
            .count()
    }

    /// Total repaired pixels.
    pub fn repaired(&self) -> usize {
        self.repairs
            .iter()
            .filter(|r| **r != Repair::Untouched)
            .count()
    }
}

impl PixelMask {
    /// Creates a mask from row-major usability flags.
    ///
    /// # Panics
    ///
    /// Panics if `usable.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, usable: Vec<bool>) -> Self {
        assert_eq!(
            usable.len(),
            rows * cols,
            "mask has {} flags, expected {}",
            usable.len(),
            rows * cols
        );
        Self { rows, cols, usable }
    }

    /// A mask with every pixel usable.
    pub fn all_usable(rows: usize, cols: usize) -> Self {
        Self::new(rows, cols, vec![true; rows * cols])
    }

    /// Rows in the array.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns in the array.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total pixels.
    pub fn len(&self) -> usize {
        self.usable.len()
    }

    /// `true` if the mask covers zero pixels.
    pub fn is_empty(&self) -> bool {
        self.usable.is_empty()
    }

    /// Usability of one pixel.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn is_usable(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows && col < self.cols, "address out of range");
        self.usable[row * self.cols + col]
    }

    /// The raw row-major flags.
    pub fn flags(&self) -> &[bool] {
        &self.usable
    }

    /// Number of masked (unusable) pixels.
    pub fn masked_count(&self) -> usize {
        self.usable.iter().filter(|u| !**u).count()
    }

    /// Fraction of masked pixels (0 for an empty mask).
    pub fn masked_fraction(&self) -> f64 {
        if self.usable.is_empty() {
            0.0
        } else {
            self.masked_count() as f64 / self.usable.len() as f64
        }
    }

    /// Repairs one row-major frame in place: every masked pixel is
    /// replaced by the mean of its usable 8-neighbors, falling back to
    /// the median of all usable samples when a masked pixel is fully
    /// surrounded by other masked pixels (an isolated cluster). Usable
    /// pixels are never modified, and interpolation only ever reads
    /// usable sources — faulty samples cannot contaminate the repair.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` differs from the mask size.
    pub fn interpolate(&self, samples: &mut [f64]) -> RepairReport {
        assert_eq!(
            samples.len(),
            self.usable.len(),
            "frame has {} samples, mask covers {}",
            samples.len(),
            self.usable.len()
        );
        let usable_samples: Vec<f64> = samples
            .iter()
            .zip(&self.usable)
            .filter(|(_, u)| **u)
            .map(|(s, _)| *s)
            .collect();
        let global = median(&usable_samples).unwrap_or(0.0);

        let mut repairs = vec![Repair::Untouched; samples.len()];
        let mut repaired = samples.to_vec();
        for row in 0..self.rows {
            for col in 0..self.cols {
                let idx = row * self.cols + col;
                if self.usable[idx] {
                    continue;
                }
                let mut sum = 0.0;
                let mut n = 0usize;
                for dr in -1i64..=1 {
                    for dc in -1i64..=1 {
                        if dr == 0 && dc == 0 {
                            continue;
                        }
                        let (nr, nc) = (row as i64 + dr, col as i64 + dc);
                        if nr < 0 || nc < 0 || nr >= self.rows as i64 || nc >= self.cols as i64 {
                            continue;
                        }
                        let nidx = nr as usize * self.cols + nc as usize;
                        if self.usable[nidx] {
                            sum += samples[nidx];
                            n += 1;
                        }
                    }
                }
                if n > 0 {
                    repaired[idx] = sum / n as f64;
                    repairs[idx] = Repair::FromNeighbors;
                } else {
                    repaired[idx] = global;
                    repairs[idx] = Repair::FromGlobalMedian;
                }
            }
        }
        samples.copy_from_slice(&repaired);
        RepairReport { repairs }
    }

    /// Repairs every frame of a stack, returning the repaired stack.
    pub fn repair_stack(&self, stack: &FrameStack) -> FrameStack {
        assert_eq!(
            (stack.rows(), stack.cols()),
            (self.rows, self.cols),
            "stack geometry {}×{} differs from mask {}×{}",
            stack.rows(),
            stack.cols(),
            self.rows,
            self.cols
        );
        let frames: Vec<Vec<f64>> = (0..stack.len())
            .map(|k| {
                let mut frame = stack.frame(k).to_vec();
                self.interpolate(&mut frame);
                frame
            })
            .collect();
        FrameStack::new(stack.rows(), stack.cols(), frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usable_pixels_pass_through_untouched() {
        let mask = PixelMask::all_usable(3, 3);
        let mut frame: Vec<f64> = (0..9).map(|k| k as f64).collect();
        let original = frame.clone();
        let report = mask.interpolate(&mut frame);
        assert_eq!(frame, original);
        assert_eq!(report.repaired(), 0);
    }

    #[test]
    fn masked_pixel_becomes_neighbor_mean() {
        let mut usable = vec![true; 9];
        usable[4] = false; // center of 3×3
        let mask = PixelMask::new(3, 3, usable);
        let mut frame = vec![2.0; 9];
        frame[4] = 1e9; // bogus dead-pixel sample
        let report = mask.interpolate(&mut frame);
        assert!((frame[4] - 2.0).abs() < 1e-12);
        assert_eq!(report.from_neighbors(), 1);
    }

    #[test]
    fn corner_pixel_uses_only_in_bounds_neighbors() {
        let mut usable = vec![true; 4];
        usable[0] = false;
        let mask = PixelMask::new(2, 2, usable);
        let mut frame = vec![0.0, 3.0, 6.0, 9.0];
        mask.interpolate(&mut frame);
        assert!((frame[0] - 6.0).abs() < 1e-12, "mean of 3, 6, 9");
    }

    #[test]
    fn isolated_cluster_falls_back_to_global_median() {
        // A fully masked 3-wide band: the middle column of the band has
        // no usable neighbor.
        let rows = 3;
        let cols = 5;
        let mut usable = vec![true; rows * cols];
        for r in 0..rows {
            for c in 1..4 {
                usable[r * cols + c] = false;
            }
        }
        let mask = PixelMask::new(rows, cols, usable);
        let mut frame = vec![7.0; rows * cols];
        for r in 0..rows {
            frame[r * cols + 2] = -1.0;
        }
        let report = mask.interpolate(&mut frame);
        assert_eq!(report.from_global_median(), rows);
        for r in 0..rows {
            assert!((frame[r * cols + 2] - 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fully_masked_frame_repairs_to_zero() {
        let mask = PixelMask::new(2, 2, vec![false; 4]);
        let mut frame = vec![42.0; 4];
        let report = mask.interpolate(&mut frame);
        assert_eq!(frame, vec![0.0; 4]);
        assert_eq!(report.repaired(), 4);
    }

    #[test]
    fn masked_fraction_counts() {
        let mask = PixelMask::new(2, 2, vec![true, false, false, true]);
        assert_eq!(mask.masked_count(), 2);
        assert!((mask.masked_fraction() - 0.5).abs() < 1e-12);
        assert!(mask.is_usable(0, 0));
        assert!(!mask.is_usable(0, 1));
    }

    #[test]
    fn repair_stack_repairs_every_frame() {
        let mut usable = vec![true; 4];
        usable[3] = false;
        let mask = PixelMask::new(2, 2, usable);
        let stack = FrameStack::new(
            2,
            2,
            vec![vec![1.0, 1.0, 1.0, 100.0], vec![2.0, 2.0, 2.0, -50.0]],
        );
        let repaired = mask.repair_stack(&stack);
        assert!((repaired.frame(0)[3] - 1.0).abs() < 1e-12);
        assert!((repaired.frame(1)[3] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "frame has")]
    fn length_mismatch_panics() {
        let mask = PixelMask::all_usable(2, 2);
        mask.interpolate(&mut [0.0; 3]);
    }
}
