//! Leaky integrate-and-fire neuron.
//!
//! A cheap point-neuron for simulating large cultures over the 128×128
//! array where the full Hodgkin–Huxley machinery is unnecessary: the chip
//! only sees the extracellular transient, whose stereotyped shape is
//! supplied by the junction model.

use bsa_units::Seconds;
use serde::{Deserialize, Serialize};

/// Leaky integrate-and-fire parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifParams {
    /// Membrane time constant.
    pub tau_m: Seconds,
    /// Resting potential in mV.
    pub v_rest: f64,
    /// Firing threshold in mV.
    pub v_threshold: f64,
    /// Post-spike reset potential in mV.
    pub v_reset: f64,
    /// Absolute refractory period.
    pub t_refractory: Seconds,
    /// Input resistance in MΩ (converts nA input to mV drive).
    pub r_m_mohm: f64,
}

impl Default for LifParams {
    fn default() -> Self {
        Self {
            tau_m: Seconds::from_milli(20.0),
            v_rest: -65.0,
            v_threshold: -50.0,
            v_reset: -70.0,
            t_refractory: Seconds::from_milli(2.0),
            r_m_mohm: 100.0,
        }
    }
}

/// Leaky integrate-and-fire state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lif {
    params: LifParams,
    v: f64,
    refractory_left: Seconds,
}

impl Lif {
    /// Creates a neuron at rest.
    pub fn new(params: LifParams) -> Self {
        let v = params.v_rest;
        Self {
            params,
            v,
            refractory_left: Seconds::ZERO,
        }
    }

    /// Present membrane potential in mV.
    pub fn voltage_mv(&self) -> f64 {
        self.v
    }

    /// The parameter set.
    pub fn params(&self) -> &LifParams {
        &self.params
    }

    /// Advances by `dt` with input current `i_na` (nA). Returns `true` if
    /// the neuron fired during this step.
    pub fn step(&mut self, i_na: f64, dt: Seconds) -> bool {
        if self.refractory_left.value() > 0.0 {
            self.refractory_left -= dt;
            self.v = self.params.v_reset;
            return false;
        }
        let p = &self.params;
        let v_inf = p.v_rest + p.r_m_mohm * i_na * 1e-3 * 1e3; // nA·MΩ = mV
        let alpha = (-dt.value() / p.tau_m.value()).exp();
        self.v = v_inf + (self.v - v_inf) * alpha;
        if self.v >= p.v_threshold {
            self.v = p.v_reset;
            self.refractory_left = p.t_refractory;
            true
        } else {
            false
        }
    }

    /// Steady-state firing rate (Hz) for a constant input current, from the
    /// analytic LIF rate equation; 0 if the input is subthreshold.
    pub fn rate_for(&self, i_na: f64) -> f64 {
        let p = &self.params;
        let v_inf = p.v_rest + p.r_m_mohm * i_na;
        if v_inf <= p.v_threshold {
            return 0.0;
        }
        let t_isi = p.t_refractory.value()
            + p.tau_m.value() * ((v_inf - p.v_reset) / (v_inf - p.v_threshold)).ln();
        1.0 / t_isi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: Seconds = Seconds::new(0.1e-3);

    #[test]
    fn rests_without_input() {
        let mut n = Lif::new(LifParams::default());
        for _ in 0..1000 {
            assert!(!n.step(0.0, DT));
        }
        assert!((n.voltage_mv() + 65.0).abs() < 1e-6);
    }

    #[test]
    fn fires_with_suprathreshold_input() {
        let mut n = Lif::new(LifParams::default());
        // v_inf = -65 + 100 MΩ · 0.2 nA · … = -45 mV > threshold −50.
        let mut spikes = 0;
        for _ in 0..10_000 {
            if n.step(0.2, DT) {
                spikes += 1;
            }
        }
        assert!(spikes > 10, "spikes = {spikes}");
    }

    #[test]
    fn subthreshold_input_never_fires() {
        let mut n = Lif::new(LifParams::default());
        // v_inf = -55 mV < −50 threshold.
        for _ in 0..50_000 {
            assert!(!n.step(0.1, DT));
        }
    }

    #[test]
    fn refractory_period_caps_rate() {
        let p = LifParams::default();
        let t_ref = p.t_refractory.value();
        let mut n = Lif::new(p);
        let mut spikes = 0;
        for _ in 0..100_000 {
            // Massive drive: rate must still stay below 1/t_ref.
            if n.step(100.0, DT) {
                spikes += 1;
            }
        }
        let rate = spikes as f64 / (100_000.0 * DT.value());
        assert!(rate <= 1.0 / t_ref + 1.0, "rate = {rate}");
        assert!(rate > 0.5 / t_ref, "rate = {rate}");
    }

    #[test]
    fn analytic_rate_matches_simulation() {
        let mut n = Lif::new(LifParams::default());
        let i = 0.3;
        let predicted = n.rate_for(i);
        let mut spikes = 0;
        let steps = 200_000;
        for _ in 0..steps {
            if n.step(i, DT) {
                spikes += 1;
            }
        }
        let measured = spikes as f64 / (steps as f64 * DT.value());
        assert!(
            (measured - predicted).abs() / predicted < 0.1,
            "measured {measured}, predicted {predicted}"
        );
    }

    #[test]
    fn analytic_rate_zero_below_threshold() {
        let n = Lif::new(LifParams::default());
        assert_eq!(n.rate_for(0.1), 0.0);
    }

    #[test]
    fn rate_is_monotone_in_drive() {
        let n = Lif::new(LifParams::default());
        let rates: Vec<f64> = (2..10).map(|k| n.rate_for(k as f64 * 0.1)).collect();
        assert!(rates.windows(2).all(|w| w[1] >= w[0]));
    }
}
