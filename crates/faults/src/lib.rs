// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Fault-injection models for the CMOS biosensor array chips.
//!
//! Real sensor arrays ship with defects: electrodes shorted during
//! post-processing, comparators stuck by gate-oxide damage, calibration
//! DACs that run out of range, multiplexer channels lost to metal opens.
//! The paper's chips tolerate this through periphery auto-calibration and
//! redundancy at the assay level; this crate provides the *defect side* of
//! that story so the readout pipelines in `bsa-core`, `bsa-dsp` and
//! `bsa-electrochem` can be exercised against known fault populations.
//!
//! The workflow is:
//!
//! 1. Describe defects with [`FaultKind`] values.
//! 2. Compose them into an [`InjectionPlan`] — per-pixel with
//!    [`InjectionPlan::at`], or array-wide at a target density with
//!    [`InjectionPlan::array_wide`].
//! 3. [`InjectionPlan::compile`] the plan for a concrete array geometry.
//!    Compilation is deterministic: the same plan, seed and geometry always
//!    select the same pixels.
//! 4. Hand the resulting [`CompiledFaults`] to a chip model
//!    (`DnaChip::inject_faults` / `NeuroChip::inject_faults` in
//!    `bsa-core`), which interprets each defect physically.
//!
//! ```
//! use bsa_faults::{FaultKind, InjectionPlan};
//! use bsa_units::Ampere;
//!
//! let plan = InjectionPlan::new(42)
//!     .at(3, 7, FaultKind::DeadPixel)
//!     .array_wide(0.05, FaultKind::LeakyElectrode { leakage: Ampere::from_pico(40.0) })
//!     .serial_bit_errors(1e-4);
//! let faults = plan.compile(8, 16);
//! assert!(faults.at(3, 7).dead);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kinds;
mod plan;

pub use kinds::{FaultClass, FaultKind, PixelFaults};
pub use plan::{CompiledFaults, InjectionPlan, PlanTarget, SerialCorruptor};
