//! Physical constants used across the simulation stack.

use crate::{Kelvin, Volt};

/// Boltzmann constant in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge in coulombs.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Faraday constant in C/mol.
pub const FARADAY: f64 = 96_485.332_12;

/// Molar gas constant in J/(mol·K).
pub const GAS_CONSTANT: f64 = 8.314_462_618;

/// Avogadro constant in 1/mol.
pub const AVOGADRO: f64 = 6.022_140_76e23;

/// Standard simulation temperature: 300 K.
pub const ROOM_TEMPERATURE: Kelvin = Kelvin::new(300.0);

/// Physiological temperature: 310 K (37 °C), used for cell-based assays.
pub const BODY_TEMPERATURE: Kelvin = Kelvin::new(310.0);

/// Thermal voltage kT/q at the given temperature.
///
/// # Examples
///
/// ```
/// use bsa_units::consts::{thermal_voltage, ROOM_TEMPERATURE};
/// let ut = thermal_voltage(ROOM_TEMPERATURE);
/// assert!((ut.as_milli() - 25.85).abs() < 0.05);
/// ```
pub fn thermal_voltage(t: Kelvin) -> Volt {
    Volt::new(BOLTZMANN * t.value() / ELEMENTARY_CHARGE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_at_room_temperature() {
        let ut = thermal_voltage(ROOM_TEMPERATURE);
        assert!((ut.value() - 0.025852).abs() < 1e-5);
    }

    #[test]
    fn thermal_voltage_scales_linearly() {
        let a = thermal_voltage(Kelvin::new(300.0));
        let b = thermal_voltage(Kelvin::new(600.0));
        assert!((b.value() / a.value() - 2.0).abs() < 1e-12);
    }
}
