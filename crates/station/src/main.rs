//! `bsa-station` binary: bind the acquisition server and serve forever.
//!
//! ```text
//! bsa-station [--addr HOST:PORT] [--queue N] [--timeout-secs S] [--max-sessions N]
//!             [--store DIR]
//! ```

use bsa_station::{Station, StationConfig};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> &'static str {
    "usage: bsa-station [--addr HOST:PORT] [--queue N] [--timeout-secs S] [--max-sessions N]\n\
     \x20                  [--store DIR]\n\
     \n\
     --addr HOST:PORT   listen address (default 127.0.0.1:7801)\n\
     --queue N          outbound queue depth per session (default 64)\n\
     --timeout-secs S   idle session timeout, 0 = none (default 30)\n\
     --max-sessions N   concurrent session cap (default 64)\n\
     --store DIR        recording store directory (default: record/replay disabled)"
}

fn parse_args(args: &[String]) -> Result<StationConfig, String> {
    let mut config = StationConfig {
        addr: "127.0.0.1:7801".into(),
        ..StationConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value_for("--addr")?,
            "--queue" => {
                config.queue_depth = value_for("--queue")?
                    .parse::<usize>()
                    .map_err(|e| format!("--queue: {e}"))?;
            }
            "--timeout-secs" => {
                let secs = value_for("--timeout-secs")?
                    .parse::<u64>()
                    .map_err(|e| format!("--timeout-secs: {e}"))?;
                config.read_timeout = (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--max-sessions" => {
                config.max_sessions = value_for("--max-sessions")?
                    .parse::<u64>()
                    .map_err(|e| format!("--max-sessions: {e}"))?;
            }
            "--store" => config.store_root = Some(value_for("--store")?.into()),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    match Station::bind(config) {
        Ok(handle) => {
            println!("bsa-station listening on {}", handle.addr());
            handle.wait();
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: bind failed: {err}");
            ExitCode::FAILURE
        }
    }
}
