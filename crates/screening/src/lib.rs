// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! The drug-screening pipeline of paper Fig. 1.
//!
//! "Schematic diagram depicting the drug-screening process flow aiming to
//! identify one (combination of) compound(s) out of millions … as a
//! suitable drug": compounds → molecular-based screen → cell-based screen
//! → animal tests → clinical trials, with **datapoints/day falling** and
//! **costs/datapoint rising** at every stage. This crate models that
//! funnel quantitatively, with the early (chip-amenable) stages backed by
//! the throughput of the simulated biosensor arrays.
//!
//! # Examples
//!
//! ```
//! use bsa_screening::compound::CompoundLibrary;
//! use bsa_screening::pipeline::Pipeline;
//!
//! let library = CompoundLibrary::generate(100_000, 1e-4, 7);
//! let report = Pipeline::classic().run(&library, 42);
//! assert!(report.stages.len() == 4);
//! // The funnel shrinks monotonically.
//! for w in report.stages.windows(2) {
//!     assert!(w[1].survivors <= w[0].survivors);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compound;
pub mod pipeline;
pub mod stage;
