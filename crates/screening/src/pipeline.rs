//! The end-to-end screening funnel.

use crate::compound::{Compound, CompoundLibrary};
use crate::stage::Stage;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// An ordered sequence of screening stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

/// Per-stage outcome of a pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// The stage that ran.
    pub stage: Stage,
    /// Compounds entering the stage.
    pub input_count: usize,
    /// Compounds passing to the next stage.
    pub survivors: usize,
    /// Truly active compounds among the survivors.
    pub true_actives_surviving: usize,
    /// Days spent at this stage.
    pub days: f64,
    /// Money spent at this stage.
    pub cost: f64,
}

/// Complete pipeline run outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Per-stage reports in order.
    pub stages: Vec<StageReport>,
    /// Compounds surviving the full funnel.
    pub final_candidates: Vec<Compound>,
}

impl PipelineReport {
    /// Total cost across stages.
    pub fn total_cost(&self) -> f64 {
        self.stages.iter().map(|s| s.cost).sum()
    }

    /// Total duration (stages run sequentially).
    pub fn total_days(&self) -> f64 {
        self.stages.iter().map(|s| s.days).sum()
    }

    /// Truly active compounds among the final candidates.
    pub fn true_hits(&self) -> usize {
        self.final_candidates.iter().filter(|c| c.active).count()
    }
}

impl Pipeline {
    /// Creates a pipeline from stages.
    pub fn new(stages: Vec<Stage>) -> Self {
        Self { stages }
    }

    /// The classic four-stage funnel of paper Fig. 1, with the early
    /// stages running on simulated biosensor chips: ten 16×8 microarray
    /// chips at two runs/day for the molecular screen, one hundred
    /// cell-chip wells for the cell-based screen.
    pub fn classic() -> Self {
        Self::new(vec![
            Stage::molecular_chip(128, 2.0, 10),
            Stage::cell_chip(100),
            Stage::animal_tests(),
            Stage::clinical_trials(),
        ])
    }

    /// A funnel without chip parallelism (single classic well-plate robot
    /// equivalent): the baseline Fig. 1 contrasts against.
    pub fn without_chip_parallelism() -> Self {
        let mut p = Self::classic();
        p.stages[0].datapoints_per_day = 1_000.0;
        p.stages[1].datapoints_per_day = 20.0;
        p
    }

    /// The stages.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Runs the funnel over a library.
    pub fn run(&self, library: &CompoundLibrary, seed: u64) -> PipelineReport {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut current: Vec<Compound> = library.compounds().to_vec();
        let mut reports = Vec::with_capacity(self.stages.len());

        for stage in &self.stages {
            let input_count = current.len();
            let survivors: Vec<Compound> = current
                .into_iter()
                .filter(|c| stage.test(c, &mut rng))
                .collect();
            reports.push(StageReport {
                stage: stage.clone(),
                input_count,
                survivors: survivors.len(),
                true_actives_surviving: survivors.iter().filter(|c| c.active).count(),
                days: stage.days_for(input_count),
                cost: stage.cost_for(input_count),
            });
            current = survivors;
        }

        PipelineReport {
            stages: reports,
            final_candidates: current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library() -> CompoundLibrary {
        CompoundLibrary::generate(1_000_000, 1e-4, 11)
    }

    #[test]
    fn funnel_shrinks_at_every_stage() {
        let report = Pipeline::classic().run(&library(), 1);
        assert_eq!(report.stages.len(), 4);
        for w in report.stages.windows(2) {
            assert!(w[1].input_count == w[0].survivors);
            assert!(w[1].survivors <= w[0].survivors);
        }
        assert!(report.stages[0].survivors < report.stages[0].input_count / 10);
    }

    #[test]
    fn enrichment_increases_along_the_funnel() {
        let report = Pipeline::classic().run(&library(), 2);
        let mut last_purity = 0.0;
        for s in &report.stages {
            if s.survivors == 0 {
                break;
            }
            let purity = s.true_actives_surviving as f64 / s.survivors as f64;
            assert!(
                purity >= last_purity,
                "purity must not fall: {purity} after {last_purity}"
            );
            last_purity = purity;
        }
        // By the end, candidates are overwhelmingly true actives.
        assert!(last_purity > 0.5, "final purity = {last_purity}");
    }

    #[test]
    fn early_stages_dominate_datapoints_late_stages_dominate_cost_share() {
        let report = Pipeline::classic().run(&library(), 3);
        // Fig. 1's claim restated: the first stage tests the most
        // compounds, the last has the highest per-datapoint cost.
        let first = &report.stages[0];
        let last = &report.stages[3];
        assert!(first.input_count > 100 * last.input_count.max(1));
        assert!(last.stage.cost_per_datapoint > 1e5 * first.stage.cost_per_datapoint);
    }

    #[test]
    fn chip_parallelism_cuts_early_stage_time() {
        let lib = library();
        let with = Pipeline::classic().run(&lib, 4);
        let without = Pipeline::without_chip_parallelism().run(&lib, 4);
        assert!(
            with.stages[0].days < without.stages[0].days / 2.0,
            "chip: {} days, robot: {} days",
            with.stages[0].days,
            without.stages[0].days
        );
    }

    #[test]
    fn some_true_hits_survive() {
        let report = Pipeline::classic().run(&library(), 5);
        assert!(report.true_hits() > 0, "the funnel should find something");
        // And false positives are essentially gone by the end.
        let fp = report.final_candidates.len() - report.true_hits();
        assert!(fp <= 2, "false positives at the end: {fp}");
    }

    #[test]
    fn totals_accumulate() {
        let report = Pipeline::classic().run(&library(), 6);
        let sum_cost: f64 = report.stages.iter().map(|s| s.cost).sum();
        assert_eq!(report.total_cost(), sum_cost);
        assert!(report.total_days() > 0.0);
    }

    #[test]
    fn run_is_seed_deterministic() {
        let lib = library();
        let a = Pipeline::classic().run(&lib, 7);
        let b = Pipeline::classic().run(&lib, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_library_passes_through() {
        let lib = CompoundLibrary::generate(0, 0.1, 1);
        let report = Pipeline::classic().run(&lib, 8);
        assert!(report.final_candidates.is_empty());
        assert_eq!(report.total_cost(), 0.0);
    }
}
