//! Hybridization match/mismatch calling on DNA-chip readouts.
//!
//! "Identification of the sites with double-stranded DNA thus reveals the
//! composition of the sample, since the probes and their positions are
//! known" (paper Section 2). With redox-cycling currents spanning
//! 1 pA … 100 nA, matched sites sit orders of magnitude above the
//! background; calling operates on log-currents with a robust
//! background-derived threshold.

use crate::stats::{mad_sigma, median};
use serde::{Deserialize, Serialize};

/// A per-site call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Call {
    /// Double-stranded DNA present (hybridized).
    Match,
    /// No (or mismatched, washed-away) hybridization.
    Mismatch,
}

/// Match-calling configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchCaller {
    /// Threshold above the background median, in robust σ of the
    /// log₁₀-current background distribution.
    pub threshold_sigmas: f64,
    /// Floor current (A) below which log-currents are clamped (avoids
    /// −∞ for zero-count sites).
    pub current_floor: f64,
    /// Minimum current ratio over the background median for a Match call —
    /// rejects faint residuals (partially washed single-mismatch sites)
    /// that clear the statistical threshold but carry no real coverage.
    pub min_ratio_over_background: f64,
}

impl Default for MatchCaller {
    fn default() -> Self {
        Self {
            threshold_sigmas: 6.0,
            current_floor: 1e-14,
            min_ratio_over_background: 30.0,
        }
    }
}

/// Result of calling an array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallingResult {
    /// Per-site calls in the input order.
    pub calls: Vec<Call>,
    /// The log₁₀(A) threshold used.
    pub log_threshold: f64,
    /// Median background current (A).
    pub background_current: f64,
}

impl CallingResult {
    /// Number of match calls.
    pub fn match_count(&self) -> usize {
        self.calls.iter().filter(|c| **c == Call::Match).count()
    }

    /// Indices of match calls.
    pub fn match_indices(&self) -> Vec<usize> {
        self.calls
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == Call::Match)
            .map(|(i, _)| i)
            .collect()
    }
}

impl MatchCaller {
    /// Calls every site from its estimated current (A).
    ///
    /// The background statistics are taken from the lower half of the
    /// log-current distribution, making the caller robust even when many
    /// sites are matches.
    pub fn call(&self, currents_a: &[f64]) -> CallingResult {
        if currents_a.is_empty() {
            return CallingResult {
                calls: Vec::new(),
                log_threshold: f64::INFINITY,
                background_current: 0.0,
            };
        }
        let logs: Vec<f64> = currents_a
            .iter()
            .map(|i| i.max(self.current_floor).log10())
            .collect();
        // Background: the lower half of sites.
        let mut sorted = logs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let half = (sorted.len() / 2).max(1);
        let lower = sorted.get(..half).unwrap_or(&sorted[..]);
        // `lower` is non-empty here, so the statistics cannot fail.
        let bg_median = median(lower).unwrap_or(0.0);
        let bg_sigma = mad_sigma(lower).unwrap_or(0.0).max(0.05);
        let log_threshold = (bg_median + self.threshold_sigmas * bg_sigma)
            .max(bg_median + self.min_ratio_over_background.log10());

        let calls = logs
            .iter()
            .map(|l| {
                if *l > log_threshold {
                    Call::Match
                } else {
                    Call::Mismatch
                }
            })
            .collect();
        CallingResult {
            calls,
            log_threshold,
            background_current: 10f64.powf(bg_median),
        }
    }

    /// Discrimination ratio: median matched current over median
    /// non-matched current, given ground-truth labels. Returns `None`
    /// unless both classes are present.
    pub fn discrimination_ratio(currents_a: &[f64], truth_match: &[bool]) -> Option<f64> {
        let matched: Vec<f64> = currents_a
            .iter()
            .zip(truth_match)
            .filter(|(_, m)| **m)
            .map(|(i, _)| *i)
            .collect();
        let unmatched: Vec<f64> = currents_a
            .iter()
            .zip(truth_match)
            .filter(|(_, m)| !**m)
            .map(|(i, _)| *i)
            .collect();
        if matched.is_empty() || unmatched.is_empty() {
            return None;
        }
        let med_matched = median(&matched).ok()?;
        let med_unmatched = median(&unmatched).ok()?;
        Some(med_matched / med_unmatched.max(1e-30))
    }
}

/// Confusion counts of calls against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallAccuracy {
    /// Matches called matches.
    pub true_positives: usize,
    /// Mismatches called matches.
    pub false_positives: usize,
    /// Mismatches called mismatches.
    pub true_negatives: usize,
    /// Matches called mismatches.
    pub false_negatives: usize,
}

impl CallAccuracy {
    /// Computes the confusion counts.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn of(calls: &[Call], truth_match: &[bool]) -> Self {
        assert_eq!(calls.len(), truth_match.len());
        let mut acc = Self {
            true_positives: 0,
            false_positives: 0,
            true_negatives: 0,
            false_negatives: 0,
        };
        for (c, &t) in calls.iter().zip(truth_match) {
            match (c, t) {
                (Call::Match, true) => acc.true_positives += 1,
                (Call::Match, false) => acc.false_positives += 1,
                (Call::Mismatch, false) => acc.true_negatives += 1,
                (Call::Mismatch, true) => acc.false_negatives += 1,
            }
        }
        acc
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total =
            self.true_positives + self.false_positives + self.true_negatives + self.false_negatives;
        if total == 0 {
            1.0
        } else {
            (self.true_positives + self.true_negatives) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 120 background sites near 1 pA (±20 %), 8 match sites near 50 nA.
    fn synthetic_array() -> (Vec<f64>, Vec<bool>) {
        let mut currents = Vec::new();
        let mut truth = Vec::new();
        for k in 0..128 {
            if k % 16 == 0 {
                currents.push(50e-9 * (1.0 + 0.1 * ((k % 7) as f64 - 3.0) / 3.0));
                truth.push(true);
            } else {
                currents.push(1e-12 * (1.0 + 0.2 * ((k % 11) as f64 - 5.0) / 5.0));
                truth.push(false);
            }
        }
        (currents, truth)
    }

    #[test]
    fn calls_synthetic_array_perfectly() {
        let (currents, truth) = synthetic_array();
        let result = MatchCaller::default().call(&currents);
        let acc = CallAccuracy::of(&result.calls, &truth);
        assert_eq!(acc.accuracy(), 1.0, "confusion: {acc:?}");
        assert_eq!(result.match_count(), 8);
    }

    #[test]
    fn background_statistics_are_sane() {
        let (currents, _) = synthetic_array();
        let result = MatchCaller::default().call(&currents);
        assert!(
            (result.background_current - 1e-12).abs() / 1e-12 < 0.3,
            "bg = {}",
            result.background_current
        );
        assert!(result.log_threshold < -9.0, "threshold too high");
    }

    #[test]
    fn discrimination_ratio_is_large() {
        let (currents, truth) = synthetic_array();
        let ratio = MatchCaller::discrimination_ratio(&currents, &truth).unwrap();
        assert!(ratio > 1e4, "ratio = {ratio}");
    }

    #[test]
    fn discrimination_ratio_requires_both_classes() {
        assert!(MatchCaller::discrimination_ratio(&[1.0, 2.0], &[true, true]).is_none());
        assert!(MatchCaller::discrimination_ratio(&[1.0, 2.0], &[false, false]).is_none());
    }

    #[test]
    fn zero_currents_are_floored_not_nan() {
        let result = MatchCaller::default().call(&[0.0, 0.0, 1e-8]);
        assert_eq!(result.calls[2], Call::Match);
        assert_eq!(result.calls[0], Call::Mismatch);
        assert!(result.log_threshold.is_finite());
    }

    #[test]
    fn all_background_array_calls_no_matches() {
        let currents: Vec<f64> = (0..64)
            .map(|k| 1e-12 * (1.0 + 0.1 * ((k % 5) as f64 - 2.0)))
            .collect();
        let result = MatchCaller::default().call(&currents);
        assert_eq!(result.match_count(), 0, "calls: {:?}", result.calls);
    }

    #[test]
    fn match_indices_reported() {
        let (currents, truth) = synthetic_array();
        let result = MatchCaller::default().call(&currents);
        let expected: Vec<usize> = truth
            .iter()
            .enumerate()
            .filter(|(_, t)| **t)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(result.match_indices(), expected);
    }

    #[test]
    fn accuracy_edge_case_empty() {
        let acc = CallAccuracy::of(&[], &[]);
        assert_eq!(acc.accuracy(), 1.0);
    }
}
