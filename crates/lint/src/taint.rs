//! Interprocedural taint tracking over the wire trust boundary
//! (DESIGN.md §16).
//!
//! Everything a peer or a stored segment can influence is *tainted*:
//! values produced by the little-endian decode helpers (`Reader`/`Cursor`
//! `u8`..`u64`, `from_le_bytes`), segment header metadata (`.meta()`),
//! buffers filled by `read_exact`, and fields destructured out of a
//! decoded [`Message`] (or `StreamPayload`) pattern. A tainted value must
//! not reach a *resource sink* — an allocation size (`with_capacity`,
//! `reserve`, `resize`, `vec![x; n]`), a slice index, or an unbounded
//! loop count — until a recognized validation idiom clears it:
//!
//! * an early-exit guard that upper-bounds it against an untainted value
//!   (`if n > MAX_X { return Err(..) }`, `if n != expected { .. }`),
//! * a non-exit guard whose body the bound dominates (`if n <= cap { .. }`),
//! * a `.min(untainted)` / `.clamp(..)` binding,
//! * rebinding/reassignment from untainted operands, or
//! * the `Reader::count()` idiom, which validates the declared element
//!   count against the remaining payload before returning it.
//!
//! Direction matters: `if n < MIN { return }` establishes only a *lower*
//! bound and clears nothing.
//!
//! The analysis is interprocedural: each function gets a bottom-up
//! summary of which parameters reach which sink kind, so passing a
//! tainted value into `fn grow(n: usize) { v.reserve(n) }` is flagged at
//! the call site. Cycles in the call graph are cut conservatively (the
//! back edge contributes no flows). Scope is limited to the three
//! wire-facing crates (`bsa-link`, `bsa-station`, `bsa-store`) — taint
//! does not originate anywhere else.
//!
//! Rules: `taint.wire-alloc` (allocation/loop-bound sinks),
//! `taint.wire-index` (slice indexing), `taint.wire-arith` (overflowable
//! `+`/`*` on tainted operands feeding a sink).

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::flow::{
    call_arg_range, enclosing_block_end, find_cmp, last_segment, matching, path_starting_at,
    statement_end, tok_ident, tok_punct, Cmp,
};
use crate::lexer::Token;
use crate::parser::{FnItem, ParsedFile};
use crate::rules::{index_site, violation, Violation};
use crate::summary::param_names;
use crate::workspace::SourceFile;

/// Path fragments selecting the wire-facing crates.
const WIRE_SCOPES: &[&str] = &["link/src/", "station/src/", "store/src/"];

/// Method/associated-fn names whose *result* is wire-derived.
const SOURCE_CALLS: &[&str] = &[
    "u8",
    "u16",
    "u32",
    "u64",
    "meta",
    "from_le_bytes",
    "from_be_bytes",
];

/// Methods whose result preserves the receiver's magnitude — taint
/// propagates through them. Everything else drops receiver taint
/// (`.len()`, `.count()`, `.iter()`, … yield validated or structural
/// values).
const PROPAGATE_RECV: &[&str] = &[
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap",
    "expect",
    "max",
    "pow",
    "abs",
    "clone",
    "copied",
    "cloned",
    "to_owned",
];

/// Methods that write their arguments into the receiver collection —
/// argument taint spreads to the receiver variable.
const GROW_METHODS: &[&str] = &[
    "push",
    "extend",
    "extend_from_slice",
    "insert",
    "append",
    "push_str",
    "copy_from_slice",
];

/// Allocation-size sink methods.
const ALLOC_METHODS: &[&str] = &[
    "with_capacity",
    "reserve",
    "reserve_exact",
    "resize",
    "set_len",
];

/// Enum roots whose destructuring patterns bind wire-decoded fields.
const WIRE_ENUMS: &[&str] = &["Message", "StreamPayload"];

/// What a tainted value is (bitwise) — the wire itself, and/or one or
/// more of the enclosing function's parameters (for summaries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct TaintSet {
    wire: bool,
    params: u64,
}

impl TaintSet {
    const EMPTY: Self = Self {
        wire: false,
        params: 0,
    };
    const WIRE: Self = Self {
        wire: true,
        params: 0,
    };

    fn param(k: usize) -> Self {
        Self {
            wire: false,
            params: 1u64 << k.min(63),
        }
    }

    fn is_empty(self) -> bool {
        !self.wire && self.params == 0
    }

    fn or(self, o: Self) -> Self {
        Self {
            wire: self.wire || o.wire,
            params: self.params | o.params,
        }
    }
}

/// One scoped taint state change for a variable. `taint: None` is a
/// cleanse (a recognized validation idiom). At a query point the event
/// with the latest `start` whose scope contains the point wins.
#[derive(Debug, Clone)]
struct Event {
    var: String,
    start: usize,
    scope: Range<usize>,
    taint: Option<TaintSet>,
}

fn query(events: &[Event], var: &str, at: usize) -> TaintSet {
    let mut best: Option<(usize, usize)> = None; // (start, event index)
    for (i, e) in events.iter().enumerate() {
        if e.var == var && e.scope.contains(&at) && best.is_none_or(|b| (e.start, i) >= b) {
            best = Some((e.start, i));
        }
    }
    best.and_then(|(_, i)| events.get(i))
        .and_then(|e| e.taint)
        .unwrap_or(TaintSet::EMPTY)
}

/// Taint of an expression: the union over every value path read in it.
/// Method-call receivers contribute nothing unless the method preserves
/// magnitude; `SOURCE_CALLS` results add wire taint directly.
fn expr_taint(tokens: &[Token], range: &Range<usize>, events: &[Event]) -> TaintSet {
    let mut set = TaintSet::EMPTY;
    let mut j = range.start;
    while j < range.end {
        // Skip member/method segments (`x.field`) — but not the end of
        // a `..` range, where the preceding dot is doubled.
        let member = (tok_punct(tokens, j.wrapping_sub(1), '.')
            && !tok_punct(tokens, j.wrapping_sub(2), '.'))
            || tok_punct(tokens, j.wrapping_sub(1), ':');
        if tok_ident(tokens, j).is_some() && !member {
            if let Some((path, after)) = path_starting_at(tokens, j) {
                let root = path.split(['.', ':']).next().unwrap_or("");
                if tok_punct(tokens, after, '(') {
                    let m = last_segment(&path);
                    let qualified = path.contains('.') || path.contains(':');
                    if qualified && SOURCE_CALLS.contains(&m) {
                        set = set.or(TaintSet::WIRE);
                    }
                    if path.contains('.') && PROPAGATE_RECV.contains(&m) {
                        set = set.or(query(events, root, j));
                    }
                    // Other calls: result treated as clean; their
                    // arguments are still scanned as the walk continues.
                } else {
                    // Plain value path: taints from its root variable
                    // (field reads like `meta.rows` inherit `meta`'s).
                    set = set.or(query(events, root, j));
                }
                j = after;
                continue;
            }
        }
        j += 1;
    }
    set
}

/// `RHS` ending in `.min(args)` / `.clamp(args)` where the clamp
/// arguments are untainted — the whole binding is bounded.
fn clamped_rhs(tokens: &[Token], rhs: &Range<usize>, events: &[Event]) -> bool {
    if rhs.len() < 4 || !tok_punct(tokens, rhs.end - 1, ')') {
        return false;
    }
    let mut k = rhs.start;
    while k + 3 < rhs.end {
        if tok_punct(tokens, k, '.')
            && matches!(tok_ident(tokens, k + 1), Some("min" | "clamp"))
            && tok_punct(tokens, k + 2, '(')
            && matching(tokens, k + 2) == Some(rhs.end - 1)
        {
            return expr_taint(tokens, &(k + 3..rhs.end - 1), events).is_empty();
        }
        k += 1;
    }
    false
}

/// Harvests the scoped taint events of one function body.
fn collect_events(tokens: &[Token], f: &FnItem, params: &[String]) -> Vec<Event> {
    let body = f.body.clone();
    let mut ev: Vec<Event> = Vec::new();
    for (k, p) in params.iter().enumerate() {
        if !p.is_empty() {
            ev.push(Event {
                var: p.clone(),
                start: body.start,
                scope: body.clone(),
                taint: Some(TaintSet::param(k)),
            });
        }
    }
    let mut i = body.start;
    while i < body.end {
        if let Some(name) = tok_ident(tokens, i) {
            match name {
                "let" => let_event(tokens, i, &body, &mut ev),
                "if" => guard_events(tokens, i, &body, &mut ev),
                _ if WIRE_ENUMS.contains(&name) => match_arm_events(tokens, i, &body, &mut ev),
                "read_exact" if tok_punct(tokens, i.wrapping_sub(1), '.') => {
                    read_exact_event(tokens, i, &body, &mut ev);
                }
                m if GROW_METHODS.contains(&m) && tok_punct(tokens, i.wrapping_sub(1), '.') => {
                    grow_event(tokens, i, &body, &mut ev);
                }
                _ => reassign_event(tokens, i, &body, &mut ev),
            }
        }
        i += 1;
    }
    ev
}

/// `let [mut] X [: T] = RHS;` — X takes the RHS taint (possibly empty,
/// which shadows/clears any earlier taint on the name).
fn let_event(tokens: &[Token], i: usize, body: &Range<usize>, ev: &mut Vec<Event>) {
    let mut j = i + 1;
    if tok_ident(tokens, j) == Some("mut") {
        j += 1;
    }
    let Some(var) = tok_ident(tokens, j) else {
        return; // tuple/struct patterns: untracked (conservatively clean)
    };
    // Depth-0 `=` before the statement's `;` (skipping a `: Type`).
    let mut eq = j + 1;
    let mut d = 0i64;
    loop {
        match tokens.get(eq) {
            Some(t) if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') => d += 1,
            Some(t) if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') => d -= 1,
            Some(t) if t.is_punct('=') && d == 0 => break,
            Some(t) if t.is_punct(';') && d == 0 => return,
            None => return,
            _ => {}
        }
        if eq >= body.end {
            return;
        }
        eq += 1;
    }
    if tok_punct(tokens, eq + 1, '=') {
        return; // `==` in a `let` guard position
    }
    let Some(end) = statement_end(tokens, eq + 1, body) else {
        return;
    };
    let rhs = eq + 1..end;
    let set = if clamped_rhs(tokens, &rhs, ev) {
        TaintSet::EMPTY
    } else {
        expr_taint(tokens, &rhs, ev)
    };
    ev.push(Event {
        var: var.to_string(),
        start: end,
        scope: end..enclosing_block_end(tokens, end, body.end),
        taint: Some(set),
    });
}

/// `X = RHS;` / `X op= RHS;` — rebinding from untainted operands clears.
fn reassign_event(tokens: &[Token], i: usize, body: &Range<usize>, ev: &mut Vec<Event>) {
    if tok_punct(tokens, i.wrapping_sub(1), '.') || tok_punct(tokens, i.wrapping_sub(1), ':') {
        return;
    }
    if matches!(
        tok_ident(tokens, i.wrapping_sub(1)),
        Some("let" | "mut" | "const" | "static" | "fn")
    ) {
        return;
    }
    let Some(var) = tok_ident(tokens, i) else {
        return;
    };
    let (rhs_start, carry) = if tok_punct(tokens, i + 1, '=')
        && !tok_punct(tokens, i + 2, '=')
        && !tok_punct(tokens, i + 2, '>')
    {
        (i + 2, false)
    } else if "+-*/%&|^".chars().any(|c| tok_punct(tokens, i + 1, c))
        && tok_punct(tokens, i + 2, '=')
    {
        (i + 3, true)
    } else {
        return;
    };
    let Some(end) = statement_end(tokens, rhs_start, body) else {
        return;
    };
    let mut set = expr_taint(tokens, &(rhs_start..end), ev);
    if carry {
        set = set.or(query(ev, var, i));
    }
    ev.push(Event {
        var: var.to_string(),
        start: end,
        scope: end..enclosing_block_end(tokens, end, body.end),
        taint: Some(set),
    });
}

/// The body-open brace of an `if`/`for`/guard header starting after `at`.
fn header_open(tokens: &[Token], at: usize, body: &Range<usize>) -> Option<usize> {
    let mut d = 0i64;
    let mut j = at;
    while j < body.end {
        let t = tokens.get(j)?;
        if t.is_punct('(') || t.is_punct('[') {
            d += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            d -= 1;
        } else if t.is_punct('{') {
            if d == 0 {
                return Some(j);
            }
            d += 1;
        } else if t.is_punct('}') {
            d -= 1;
        }
        j += 1;
    }
    None
}

/// Splits a condition on a doubled punct (`&&` / `||`) at depth 0.
fn split_on(tokens: &[Token], range: &Range<usize>, c: char) -> Vec<Range<usize>> {
    let mut parts = Vec::new();
    let mut d = 0i64;
    let mut start = range.start;
    let mut j = range.start;
    while j < range.end {
        match tokens.get(j) {
            Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => d += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => d -= 1,
            Some(t) if d == 0 && t.is_punct(c) && tok_punct(tokens, j + 1, c) => {
                parts.push(start..j);
                j += 1;
                start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    parts.push(start..range.end);
    parts
}

fn has_depth0_double(tokens: &[Token], range: &Range<usize>, c: char) -> bool {
    split_on(tokens, range, c).len() > 1
}

/// `if COND { .. }` — the validation-idiom sanitizer. An exiting body
/// (`return`/`break`/`continue` first) clears any variable the *negated*
/// condition upper-bounds against an untainted value, for the rest of
/// the enclosing block; a non-exiting body clears variables the
/// condition itself upper-bounds, inside the body only.
fn guard_events(tokens: &[Token], i: usize, body: &Range<usize>, ev: &mut Vec<Event>) {
    if tok_ident(tokens, i + 1) == Some("let") {
        return;
    }
    let Some(open) = header_open(tokens, i + 1, body) else {
        return;
    };
    let Some(close) = matching(tokens, open) else {
        return;
    };
    let cond = i + 1..open;
    let exits = matches!(
        tok_ident(tokens, open + 1),
        Some("return" | "break" | "continue")
    );
    let (parts, scope, start) = if exits {
        // ¬(d1 ∨ d2 ∨ …) ⇒ every ¬dk holds afterwards; a mixed `&&`
        // yields no per-variable bound.
        if has_depth0_double(tokens, &cond, '&') {
            return;
        }
        let scope = close + 1..enclosing_block_end(tokens, close + 1, body.end);
        (split_on(tokens, &cond, '|'), scope, close)
    } else {
        // c1 ∧ c2 ∧ … all hold inside the body.
        if has_depth0_double(tokens, &cond, '|') {
            return;
        }
        (split_on(tokens, &cond, '&'), open + 1..close, open)
    };
    for part in parts {
        if let Some(var) = bounded_var(tokens, &part, ev, exits) {
            ev.push(Event {
                var,
                start,
                scope: scope.clone(),
                taint: None,
            });
        }
    }
}

/// The variable a comparison upper-bounds (post-negation when `negated`)
/// against an untainted other side. `n < MIN` style lower bounds return
/// `None` — they validate nothing about allocation size.
fn bounded_var(
    tokens: &[Token],
    part: &Range<usize>,
    ev: &[Event],
    negated: bool,
) -> Option<String> {
    let (lhs, op, rhs_start) = find_cmp(tokens, part)?;
    let rhs = rhs_start..part.end;
    let upper_on_lhs = if negated {
        // after `if v OP b { exit }`: ¬OP bounds v for Gt/Ge/Ne
        matches!(op, Cmp::Gt | Cmp::Ge | Cmp::Ne)
    } else {
        matches!(op, Cmp::Lt | Cmp::Le | Cmp::Eq)
    };
    let upper_on_rhs = if negated {
        matches!(op, Cmp::Lt | Cmp::Le | Cmp::Ne)
    } else {
        matches!(op, Cmp::Gt | Cmp::Ge | Cmp::Eq)
    };
    // The bound itself must not be wire-derived (`header_end > index_off`
    // with a tainted `index_off` validates nothing). A parameter-tainted
    // bound is fine: the value is then no worse than what the caller
    // already controls, and the parameter's own flows are summarized.
    if upper_on_lhs {
        if let Some(v) = simple_var(tokens, &lhs) {
            if !expr_taint(tokens, &rhs, ev).wire {
                return Some(v);
            }
        }
    }
    if upper_on_rhs {
        if let Some(v) = simple_var(tokens, &rhs) {
            if !expr_taint(tokens, &lhs, ev).wire {
                return Some(v);
            }
        }
    }
    None
}

/// A comparison side that is a single variable, modulo parentheses,
/// dereference and `as` casts: `n`, `(n as u64)`, `*n as usize`.
fn simple_var(tokens: &[Token], range: &Range<usize>) -> Option<String> {
    let mut j = range.start;
    while tok_punct(tokens, j, '(') || tok_punct(tokens, j, '*') || tok_punct(tokens, j, '&') {
        j += 1;
    }
    let var = tok_ident(tokens, j)?;
    let mut k = j + 1;
    while k < range.end {
        match tokens.get(k) {
            Some(t) if t.is_punct(')') => {}
            Some(t) if t.ident() == Some("as") => {}
            Some(t) if t.ident().is_some() && tok_ident(tokens, k - 1) == Some("as") => {
                let _ = t;
            }
            _ => return None,
        }
        k += 1;
    }
    Some(var.to_string())
}

/// `Message::Variant { a, b, .. } => ..` / tuple form — the bindings are
/// wire-decoded fields, tainted for the arm body.
fn match_arm_events(tokens: &[Token], i: usize, body: &Range<usize>, ev: &mut Vec<Event>) {
    if !(tok_punct(tokens, i + 1, ':') && tok_punct(tokens, i + 2, ':')) {
        return;
    }
    if tok_ident(tokens, i + 3).is_none() {
        return;
    }
    let pat_open = i + 4;
    let (inner, pat_close) = if tok_punct(tokens, pat_open, '{') || tok_punct(tokens, pat_open, '(')
    {
        let Some(c) = matching(tokens, pat_open) else {
            return;
        };
        (pat_open + 1..c, c)
    } else {
        return; // unit variant: nothing bound
    };
    // Pattern, not construction: an arm arrow must follow at depth 0.
    let mut j = pat_close + 1;
    let mut d = 0i64;
    let arrow = loop {
        if j + 1 >= body.end || d < 0 {
            return;
        }
        let Some(t) = tokens.get(j) else { return };
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            d += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            d -= 1;
        } else if d == 0 && t.is_punct('=') && tok_punct(tokens, j + 1, '>') {
            break j;
        } else if d == 0 && (t.is_punct(',') || t.is_punct(';')) {
            return;
        }
        j += 1;
    };
    // Arm body: a brace block, or everything up to the arm's `,` / the
    // match's closing `}`.
    let bstart = arrow + 2;
    let bend = if tok_punct(tokens, bstart, '{') {
        match matching(tokens, bstart) {
            Some(c) => c + 1,
            None => return,
        }
    } else {
        let mut j = bstart;
        let mut d = 0i64;
        loop {
            if j >= body.end {
                break j;
            }
            let Some(t) = tokens.get(j) else { break j };
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                d += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                if d == 0 {
                    break j;
                }
                d -= 1;
            } else if d == 0 && t.is_punct(',') {
                break j;
            }
            j += 1;
        }
    };
    // Bindings: idents not introducing a field name (`field: pat`) and
    // not pattern keywords. A stray nested-enum segment binds a name no
    // expression reads — harmless.
    for k in inner.clone() {
        if let Some(name) = tok_ident(tokens, k) {
            if matches!(name, "mut" | "ref" | "_") || tok_punct(tokens, k + 1, ':') {
                continue;
            }
            ev.push(Event {
                var: name.to_string(),
                start: arrow,
                scope: bstart..bend,
                taint: Some(TaintSet::WIRE),
            });
        }
    }
}

/// `recv.read_exact(&mut BUF)?` — BUF now holds wire bytes.
fn read_exact_event(tokens: &[Token], i: usize, body: &Range<usize>, ev: &mut Vec<Event>) {
    if !tok_punct(tokens, i + 1, '(') {
        return;
    }
    let Some(close) = matching(tokens, i + 1) else {
        return;
    };
    let mut j = i + 2;
    if tok_punct(tokens, j, '&') {
        j += 1;
    }
    if tok_ident(tokens, j) == Some("mut") {
        j += 1;
    }
    let Some(var) = tok_ident(tokens, j) else {
        return;
    };
    if j + 1 != close {
        return; // dotted/complex target: untracked
    }
    ev.push(Event {
        var: var.to_string(),
        start: close,
        scope: close..enclosing_block_end(tokens, close, body.end),
        taint: Some(TaintSet::WIRE),
    });
}

/// `recv.push(X)` and friends — argument taint spreads to the receiver
/// collection's root variable.
fn grow_event(tokens: &[Token], i: usize, body: &Range<usize>, ev: &mut Vec<Event>) {
    if !tok_punct(tokens, i + 1, '(') || i < 2 {
        return;
    }
    let Some(close) = matching(tokens, i + 1) else {
        return;
    };
    let Some(root) = tok_ident(tokens, i - 2) else {
        return;
    };
    if tok_ident(tokens, i.wrapping_sub(3)).is_some() || tok_punct(tokens, i.wrapping_sub(3), '.') {
        return; // deeper receiver path (`self.x.push`): untracked
    }
    let args = expr_taint(tokens, &(i + 2..close), ev);
    if args.is_empty() {
        return;
    }
    let set = args.or(query(ev, root, i));
    ev.push(Event {
        var: root.to_string(),
        start: close,
        scope: close..enclosing_block_end(tokens, close, body.end),
        taint: Some(set),
    });
}

// ---------------------------------------------------------------------------
// Sinks and interprocedural summaries
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SinkKind {
    Alloc,
    Index,
}

impl SinkKind {
    fn rule(self) -> &'static str {
        match self {
            SinkKind::Alloc => "taint.wire-alloc",
            SinkKind::Index => "taint.wire-index",
        }
    }

    fn noun(self) -> &'static str {
        match self {
            SinkKind::Alloc => "allocation/loop bound",
            SinkKind::Index => "slice index",
        }
    }
}

/// A binary `+` or `*` at depth 0 (overflow candidates feeding a sink).
fn depth0_arith(tokens: &[Token], range: &Range<usize>) -> bool {
    let mut d = 0i64;
    for j in range.start..range.end {
        match tokens.get(j) {
            Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => d += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => d -= 1,
            Some(_) if d == 0 && binary_arith_at(tokens, range, j) => return true,
            _ => {}
        }
    }
    false
}

/// A binary `+` or `*` anywhere in the range, parenthesized or not —
/// used for `let t = (a * b) as usize;` bindings that feed a sink.
fn any_arith(tokens: &[Token], range: &Range<usize>) -> bool {
    (range.start..range.end).any(|j| binary_arith_at(tokens, range, j))
}

fn binary_arith_at(tokens: &[Token], range: &Range<usize>, j: usize) -> bool {
    let Some(t) = tokens.get(j) else { return false };
    if !(t.is_punct('+') || t.is_punct('*')) || j == range.start {
        return false;
    }
    // Binary, not unary/deref: an operand must precede.
    tokens
        .get(j.wrapping_sub(1))
        .is_some_and(|prev| prev.ident().is_some() || prev.is_punct(')') || prev.is_punct(']'))
}

struct Ctx<'a> {
    sources: &'a [SourceFile],
    parsed: &'a [ParsedFile],
    /// Uniquely-named wire-crate functions: bare name → (file, fn, has_self).
    unique: BTreeMap<String, (usize, usize, bool)>,
}

type Key = (usize, usize);
type Flows = Vec<(usize, SinkKind)>;

/// Bottom-up param→sink summary with conservative cycle cut: a back
/// edge (`visiting` hit) contributes no flows.
fn summarize(
    ctx: &Ctx,
    key: Key,
    memo: &mut BTreeMap<Key, Flows>,
    viols: &mut BTreeMap<Key, Vec<Violation>>,
    visiting: &mut BTreeSet<Key>,
) -> Flows {
    if let Some(m) = memo.get(&key) {
        return m.clone();
    }
    if !visiting.insert(key) {
        return Vec::new();
    }
    let (flows, v) = analyze_fn(ctx, key, memo, viols, visiting);
    visiting.remove(&key);
    memo.insert(key, flows.clone());
    viols.insert(key, v);
    flows
}

/// Full sink scan of one function: wire-tainted sink reaches become
/// violations, parameter-tainted ones become summary flows.
fn analyze_fn(
    ctx: &Ctx,
    key: Key,
    memo: &mut BTreeMap<Key, Flows>,
    viols: &mut BTreeMap<Key, Vec<Violation>>,
    visiting: &mut BTreeSet<Key>,
) -> (Flows, Vec<Violation>) {
    let (Some(sf), Some(f)) = (
        ctx.sources.get(key.0),
        ctx.parsed.get(key.0).and_then(|pf| pf.fns.get(key.1)),
    ) else {
        return (Vec::new(), Vec::new());
    };
    let tokens = &sf.tokens;
    let (params, _) = param_names(tokens, f);
    let ev = collect_events(tokens, f, &params);
    let mut flows: Flows = Vec::new();
    let mut out: Vec<Violation> = Vec::new();
    let mut wire_args: Vec<Range<usize>> = Vec::new();

    let sink = |range: Range<usize>,
                kind: SinkKind,
                line: usize,
                what: &str,
                out: &mut Vec<Violation>,
                flows: &mut Flows,
                wire_args: &mut Vec<Range<usize>>| {
        let set = expr_taint(tokens, &range, &ev);
        if set.wire {
            out.push(violation(
                &sf.path,
                line,
                kind.rule(),
                format!("wire-derived value reaches {what} without a recognized bounds check"),
            ));
            if depth0_arith(tokens, &range) {
                out.push(violation(
                    &sf.path,
                    line,
                    "taint.wire-arith",
                    format!("overflowable arithmetic on wire-derived operands feeds {what}"),
                ));
            }
            wire_args.push(range.clone());
        }
        for k in 0..params.len().min(64) {
            if set.params & (1u64 << k) != 0 {
                flows.push((k, kind));
            }
        }
    };

    // `let` bindings computing tainted arithmetic; flagged wire-arith if
    // the bound variable later appears in a wire-flagged sink argument.
    let mut arith_lets: Vec<(String, usize)> = Vec::new();

    let mut i = f.body.start;
    while i < f.body.end {
        if let Some(name) = tok_ident(tokens, i) {
            let method_like = tok_punct(tokens, i.wrapping_sub(1), '.')
                || tok_punct(tokens, i.wrapping_sub(1), ':');
            if method_like && ALLOC_METHODS.contains(&name) && tok_punct(tokens, i + 1, '(') {
                if let Some(close) = matching(tokens, i + 1) {
                    let line = tokens.get(i).map(|t| t.line).unwrap_or(f.line);
                    sink(
                        i + 2..close,
                        SinkKind::Alloc,
                        line,
                        &format!("`{name}`"),
                        &mut out,
                        &mut flows,
                        &mut wire_args,
                    );
                }
            } else if name == "vec"
                && tok_punct(tokens, i + 1, '!')
                && tok_punct(tokens, i + 2, '[')
            {
                if let Some(close) = matching(tokens, i + 2) {
                    // `vec![elem; count]`: the count is the last depth-0 `;`.
                    let mut d = 0i64;
                    let mut semi = None;
                    for j in i + 3..close {
                        match tokens.get(j) {
                            Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => {
                                d += 1;
                            }
                            Some(t) if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => {
                                d -= 1;
                            }
                            Some(t) if t.is_punct(';') && d == 0 => semi = Some(j),
                            _ => {}
                        }
                    }
                    if let Some(s) = semi {
                        let line = tokens.get(i).map(|t| t.line).unwrap_or(f.line);
                        sink(
                            s + 1..close,
                            SinkKind::Alloc,
                            line,
                            "a `vec![elem; n]` length",
                            &mut out,
                            &mut flows,
                            &mut wire_args,
                        );
                    }
                }
            } else if name == "for" {
                // `for P in A..B {` — an unvalidated count as iteration bound.
                if let Some(open) = header_open(tokens, i + 1, &f.body) {
                    let mut d = 0i64;
                    let mut in_at = None;
                    for j in i + 1..open {
                        match tokens.get(j) {
                            Some(t) if t.is_punct('(') || t.is_punct('[') => d += 1,
                            Some(t) if t.is_punct(')') || t.is_punct(']') => d -= 1,
                            Some(t) if d == 0 && t.ident() == Some("in") => {
                                in_at = Some(j);
                                break;
                            }
                            _ => {}
                        }
                    }
                    if let Some(at) = in_at {
                        let iter = at + 1..open;
                        let dotdot = (iter.start..iter.end.saturating_sub(1))
                            .any(|j| tok_punct(tokens, j, '.') && tok_punct(tokens, j + 1, '.'));
                        if dotdot {
                            let line = tokens.get(i).map(|t| t.line).unwrap_or(f.line);
                            sink(
                                iter,
                                SinkKind::Alloc,
                                line,
                                "a loop bound",
                                &mut out,
                                &mut flows,
                                &mut wire_args,
                            );
                        }
                    }
                }
            } else if name == "let" {
                let mut j = i + 1;
                if tok_ident(tokens, j) == Some("mut") {
                    j += 1;
                }
                if let Some(var) = tok_ident(tokens, j) {
                    if let Some(end) = statement_end(tokens, j + 1, &f.body) {
                        let rhs = j + 1..end;
                        if any_arith(tokens, &rhs) && expr_taint(tokens, &rhs, &ev).wire {
                            arith_lets.push((
                                var.to_string(),
                                tokens.get(i).map(|t| t.line).unwrap_or(f.line),
                            ));
                        }
                    }
                }
            }
        } else if tok_punct(tokens, i, '[') && index_site(tokens, i) {
            if let Some(close) = matching(tokens, i) {
                let line = tokens.get(i).map(|t| t.line).unwrap_or(f.line);
                sink(
                    i + 1..close,
                    SinkKind::Index,
                    line,
                    "a slice index",
                    &mut out,
                    &mut flows,
                    &mut wire_args,
                );
            }
        } else if tok_punct(tokens, i, '(') {
            // Interprocedural: a call whose callee's summary says this
            // argument position reaches a sink.
            if let Some(path) = crate::flow::path_ending_at(tokens, i.wrapping_sub(1)) {
                if let Some(&(cfi, cgi, has_self)) = ctx.unique.get(last_segment(&path)) {
                    if has_self == path.contains('.') && (cfi, cgi) != key {
                        let callee_flows = summarize(ctx, (cfi, cgi), memo, viols, visiting);
                        if !callee_flows.is_empty() {
                            if let Some(close) = matching(tokens, i) {
                                for &(k, kind) in &callee_flows {
                                    let Some(arg) = call_arg_range(tokens, i + 1, close, k) else {
                                        continue;
                                    };
                                    let set = expr_taint(tokens, &arg, &ev);
                                    if set.wire {
                                        let line = tokens.get(i).map(|t| t.line).unwrap_or(f.line);
                                        out.push(violation(
                                            &sf.path,
                                            line,
                                            kind.rule(),
                                            format!(
                                                "wire-derived argument flows into `{callee}`, \
                                                 where it reaches a {noun} unvalidated",
                                                callee = last_segment(&path),
                                                noun = kind.noun(),
                                            ),
                                        ));
                                        wire_args.push(arg.clone());
                                    }
                                    for p in 0..params.len().min(64) {
                                        if set.params & (1u64 << p) != 0 {
                                            flows.push((p, kind));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }

    // One-hop arith feeding a sink: `let t = a * b; .. with_capacity(t)`.
    for (var, line) in arith_lets {
        let feeds = wire_args.iter().any(|r| {
            (r.start..r.end).any(|j| {
                tok_ident(tokens, j) == Some(var.as_str())
                    && !tok_punct(tokens, j.wrapping_sub(1), '.')
                    && !tok_punct(tokens, j.wrapping_sub(1), ':')
            })
        });
        if feeds {
            out.push(violation(
                &sf.path,
                line,
                "taint.wire-arith",
                format!("overflowable arithmetic on wire-derived operands binds `{var}`, which feeds a sink"),
            ));
        }
    }

    flows.sort_unstable_by_key(|&(k, kind)| (k, kind.rule()));
    flows.dedup();
    (flows, out)
}

/// Workspace taint pass: analyzes every function in the wire-facing
/// crates, bottom-up over the call graph.
pub fn taint_pass(sources: &[SourceFile], parsed: &[ParsedFile], out: &mut Vec<Violation>) {
    let in_scope: Vec<bool> = sources
        .iter()
        .map(|s| WIRE_SCOPES.iter().any(|w| s.path.contains(w)))
        .collect();

    // Bare-name-unique functions (ambiguity judged workspace-wide so a
    // wire-crate call cannot bind a same-named foreign function).
    let mut by_name: BTreeMap<String, Option<(usize, usize)>> = BTreeMap::new();
    for (fi, pf) in parsed.iter().enumerate() {
        for (gi, f) in pf.fns.iter().enumerate() {
            by_name
                .entry(last_segment(&f.name).to_string())
                .and_modify(|e| *e = None)
                .or_insert(Some((fi, gi)));
        }
    }
    let mut unique = BTreeMap::new();
    for (name, slot) in by_name {
        if let Some((fi, gi)) = slot {
            let wire = in_scope.get(fi) == Some(&true);
            let item = sources
                .get(fi)
                .zip(parsed.get(fi).and_then(|pf| pf.fns.get(gi)));
            if let (true, Some((sf, f))) = (wire, item) {
                let (_, has_self) = param_names(&sf.tokens, f);
                unique.insert(name, (fi, gi, has_self));
            }
        }
    }
    let ctx = Ctx {
        sources,
        parsed,
        unique,
    };

    let mut memo: BTreeMap<Key, Flows> = BTreeMap::new();
    let mut viols: BTreeMap<Key, Vec<Violation>> = BTreeMap::new();
    let mut visiting: BTreeSet<Key> = BTreeSet::new();
    let mut keys: Vec<Key> = Vec::new();
    for (fi, pf) in parsed.iter().enumerate() {
        if in_scope.get(fi) != Some(&true) {
            continue;
        }
        for gi in 0..pf.fns.len() {
            keys.push((fi, gi));
        }
    }
    for &key in &keys {
        summarize(&ctx, key, &mut memo, &mut viols, &mut visiting);
    }
    let mut seen: BTreeSet<(String, usize, &'static str)> = BTreeSet::new();
    for key in keys {
        for v in viols.remove(&key).unwrap_or_default() {
            if seen.insert((v.file.clone(), v.line, v.rule)) {
                out.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn run(src: &str) -> Vec<Violation> {
        run_at("crates/link/src/test.rs", src)
    }

    fn run_at(path: &str, src: &str) -> Vec<Violation> {
        let sf = SourceFile {
            path: path.to_string(),
            tokens: lex(src),
        };
        let pf = parse_file(path, &sf.tokens);
        let mut out = Vec::new();
        taint_pass(&[sf], &[pf], &mut out);
        out
    }

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn wire_count_to_with_capacity_flagged() {
        let v = run("fn f(b: [u8; 4]) -> Vec<u8> { \
               let n = u32::from_le_bytes(b) as usize; \
               Vec::with_capacity(n) }");
        assert_eq!(rules(&v), ["taint.wire-alloc"], "{v:#?}");
    }

    #[test]
    fn upper_bound_exit_guard_sanitizes() {
        let v = run("fn f(b: [u8; 4]) -> Vec<u8> { \
               let n = u32::from_le_bytes(b) as usize; \
               if n > MAX_COUNT { return Vec::new(); } \
               Vec::with_capacity(n) }");
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn lower_bound_guard_does_not_sanitize() {
        let v = run("fn f(b: [u8; 4]) -> Vec<u8> { \
               let n = u32::from_le_bytes(b) as usize; \
               if n < MIN_COUNT { return Vec::new(); } \
               Vec::with_capacity(n) }");
        assert_eq!(rules(&v), ["taint.wire-alloc"], "{v:#?}");
    }

    #[test]
    fn ne_exit_guard_sanitizes() {
        let v = run("fn f(b: [u8; 4], want: usize) -> Vec<u8> { \
               let n = u32::from_le_bytes(b) as usize; \
               if n != want { return Vec::new(); } \
               Vec::with_capacity(n) }");
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn min_clamp_sanitizes() {
        let v = run("fn f(b: [u8; 4]) -> Vec<u8> { \
               let n = (u32::from_le_bytes(b) as usize).min(64); \
               Vec::with_capacity(n) }");
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn reader_count_is_trusted() {
        let v = run("fn f(payload: &[u8]) -> Result<Vec<u8>, E> { \
               let mut r = Reader::new(payload); \
               let n = r.count(8, \"samples\")?; \
               Ok(Vec::with_capacity(n)) }");
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn wire_index_flagged_and_guard_clears_it() {
        let v = run("fn f(xs: &[u8], b: [u8; 4]) -> u8 { \
               let i = u32::from_le_bytes(b) as usize; \
               xs[i] }");
        assert_eq!(rules(&v), ["taint.wire-index"], "{v:#?}");
        let v = run("fn f(xs: &[u8], b: [u8; 4]) -> u8 { \
               let i = u32::from_le_bytes(b) as usize; \
               if i < xs.len() { xs[i] } else { 0 } }");
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn arith_in_sink_arg_doubles_up() {
        let v = run("fn f(b: [u8; 4]) -> Vec<u8> { \
               let n = u32::from_le_bytes(b) as usize; \
               Vec::with_capacity(n * 8) }");
        assert_eq!(
            rules(&v),
            ["taint.wire-alloc", "taint.wire-arith"],
            "{v:#?}"
        );
    }

    #[test]
    fn arith_let_feeding_sink_flagged() {
        let v = run("fn f(b: [u8; 8]) -> Vec<u8> { \
               let n = u64::from_le_bytes(b); \
               let total = (n * 8) as usize; \
               Vec::with_capacity(total) }");
        assert_eq!(
            rules(&v),
            ["taint.wire-alloc", "taint.wire-arith"],
            "{v:#?}"
        );
    }

    #[test]
    fn match_arm_binding_is_tainted() {
        let v = run("fn f(msg: Message) -> Vec<u8> { \
               match msg { \
                 Message::StreamRequest { frames, window } => { \
                   let _ = window; \
                   Vec::with_capacity(frames as usize) \
                 } \
                 _ => Vec::new(), \
               } }");
        assert_eq!(rules(&v), ["taint.wire-alloc"], "{v:#?}");
    }

    #[test]
    fn message_construction_binds_nothing() {
        let v = run("fn f(token: u64) -> Message { \
               let reply = Message::Pong { token }; \
               let _ = Vec::<u8>::with_capacity(token as usize); \
               reply }");
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn read_exact_buffer_then_decode_flagged() {
        let v = run("fn f(r: &mut R) -> Vec<u8> { \
               let mut hdr = [0u8; 4]; \
               r.read_exact(&mut hdr); \
               let n = u32::from_le_bytes(hdr) as usize; \
               vec![0u8; n] }");
        assert_eq!(rules(&v), ["taint.wire-alloc"], "{v:#?}");
    }

    #[test]
    fn loop_bound_flagged() {
        let v = run("fn f(b: [u8; 4]) -> u64 { \
               let n = u32::from_le_bytes(b); \
               let mut acc = 0u64; \
               for _ in 0..n { acc += 1; } \
               acc }");
        assert_eq!(rules(&v), ["taint.wire-alloc"], "{v:#?}");
    }

    #[test]
    fn reassignment_from_clean_clears() {
        let v = run("fn f(b: [u8; 4]) -> Vec<u8> { \
               let mut n = u32::from_le_bytes(b) as usize; \
               n = 4; \
               Vec::with_capacity(n) }");
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn interprocedural_param_flow_flagged_at_call_site() {
        let v = run("fn grow(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n\
             fn f(b: [u8; 4]) -> Vec<u8> { \
               let n = u32::from_le_bytes(b) as usize; \
               grow(n) }");
        assert_eq!(rules(&v), ["taint.wire-alloc"], "{v:#?}");
        assert!(v[0].message.contains("grow"), "{v:#?}");
    }

    #[test]
    fn interprocedural_guarded_callee_is_clean() {
        let v = run("fn grow(n: usize) -> Vec<u8> { \
               if n > MAX_N { return Vec::new(); } \
               Vec::with_capacity(n) }\n\
             fn f(b: [u8; 4]) -> Vec<u8> { \
               let n = u32::from_le_bytes(b) as usize; \
               grow(n) }");
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn recursion_cycle_is_cut() {
        let v = run("fn a(n: usize) -> Vec<u8> { b(n) }\n\
             fn b(n: usize) -> Vec<u8> { a(n) }\n\
             fn f(x: [u8; 4]) -> Vec<u8> { a(u32::from_le_bytes(x) as usize) }");
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn non_wire_crate_is_out_of_scope() {
        let v = run_at(
            "crates/dsp/src/test.rs",
            "fn f(b: [u8; 4]) -> Vec<u8> { \
               let n = u32::from_le_bytes(b) as usize; \
               Vec::with_capacity(n) }",
        );
        assert!(v.is_empty(), "{v:#?}");
    }
}
