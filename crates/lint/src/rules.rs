//! The three rule families: determinism, panic-freedom, unit-safety.
//!
//! Each pass walks the (test-stripped) token stream of one file and emits
//! [`Violation`]s. The passes are deliberately syntactic — they trade a
//! little precision for zero dependencies and total predictability, and the
//! allowlist (`lint.allow.toml`) absorbs the handful of justified cases.

use crate::lexer::Token;
use std::fmt;

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Stable rule identifier, e.g. `panic.unwrap`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rule families apply to a given file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    /// `det.*`: wall-clock, RNG, hash-iteration and unordered reductions.
    pub determinism: bool,
    /// `panic.*`: unwrap/expect/panicking macros/direct indexing.
    pub panic_freedom: bool,
    /// `units.raw-f64`: raw `f64` in public signatures where a
    /// `bsa-units` newtype exists.
    pub unit_safety: bool,
}

impl RuleSet {
    /// No rules — the file is out of scope.
    pub const NONE: Self = Self {
        determinism: false,
        panic_freedom: false,
        unit_safety: false,
    };

    /// `true` if at least one family applies.
    pub fn any(&self) -> bool {
        self.determinism || self.panic_freedom || self.unit_safety
    }
}

/// All stable rule identifiers, for `--help` and the allowlist validator.
pub const RULE_IDS: &[&str] = &[
    "det.time",
    "det.rng",
    "det.hash-collection",
    "det.unordered-reduce",
    "panic.unwrap",
    "panic.expect",
    "panic.macro",
    "panic.indexing",
    "units.raw-f64",
    "reach.panic",
    "proto.exhaustive",
    "proto.error-reply",
    "conc.atomic-rmw",
    "conc.ordering",
    "conc.hold-and-block",
    "flow.unit",
    "flow.range",
    "conc.lock-order",
    "proto.abi",
    "flow.summary",
    "taint.wire-alloc",
    "taint.wire-index",
    "taint.wire-arith",
];

/// One-line description per rule id, for `rules` output.
pub fn rule_description(id: &str) -> &'static str {
    match id {
        "det.time" => "wall-clock reads (Instant/SystemTime) in deterministic paths",
        "det.rng" => "unseeded RNG (thread_rng/rand::random) in deterministic paths",
        "det.hash-collection" => "HashMap/HashSet iteration-order nondeterminism",
        "det.unordered-reduce" => "parallel float reduction in thread-dependent order",
        "panic.unwrap" => ".unwrap() in non-test library code",
        "panic.expect" => ".expect() in non-test library code",
        "panic.macro" => "panic!/unreachable!/todo!/unimplemented! in library code",
        "panic.indexing" => "direct slice indexing that can panic",
        "units.raw-f64" => "raw f64 where a bsa-units newtype exists",
        "reach.panic" => "panic reachable through the call graph from a pub API fn",
        "proto.exhaustive" => {
            "Message/ProtocolError variant missing encode/decode/handler coverage"
        }
        "proto.error-reply" => "typed reply code never constructed by the station",
        "conc.atomic-rmw" => "non-atomic read-modify-write on an atomic counter",
        "conc.ordering" => "inconsistent memory Ordering across uses of one atomic",
        "conc.hold-and-block" => "blocking call while holding a lock",
        "flow.unit" => "dimension-mixing assignment or sum found by unit dataflow",
        "flow.range" => "interval analysis proves an index/divisor can panic",
        "conc.lock-order" => "lock/channel acquisition-order cycle (potential deadlock)",
        "proto.abi" => "wire encoding drifted from the committed link.abi.lock",
        "flow.summary" => "function-summary contract proves a cross-function index panics",
        "taint.wire-alloc" => "wire-derived count reaches an allocation or loop bound unvalidated",
        "taint.wire-index" => "wire-derived value used as a slice index unvalidated",
        "taint.wire-arith" => "overflowable arithmetic on wire-derived operands feeds a sink",
        _ => "unknown rule",
    }
}

/// Runs every enabled rule family over a test-stripped token stream.
pub fn run_rules(file: &str, tokens: &[Token], rules: RuleSet) -> Vec<Violation> {
    let mut out = Vec::new();
    if rules.determinism {
        determinism_pass(file, tokens, &mut out);
    }
    if rules.panic_freedom {
        panic_pass(file, tokens, &mut out);
    }
    if rules.unit_safety {
        unit_pass(file, tokens, &mut out);
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

pub(crate) fn violation(
    file: &str,
    line: usize,
    rule: &'static str,
    message: impl Into<String>,
) -> Violation {
    Violation {
        file: file.to_string(),
        line,
        rule,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Family 1: determinism
// ---------------------------------------------------------------------------

/// Reduction adapters that are order-sensitive over floats: following one of
/// the rayon fan-out adapters with these makes the result depend on the
/// runtime split, breaking bit-identical-across-thread-counts replay.
const UNORDERED_REDUCERS: &[&str] = &["sum", "reduce", "fold_with", "product"];

/// Rayon adapters that fan a computation out across threads.
const PAR_ADAPTERS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_exact",
    "par_bridge",
];

fn determinism_pass(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        match name {
            "Instant" | "SystemTime" => {
                // `Instant::now()` / any SystemTime use: wall-clock reads
                // make scan output depend on scheduling.
                out.push(violation(
                    file,
                    t.line,
                    "det.time",
                    format!("`{name}` in a deterministic path (wall-clock dependence)"),
                ));
            }
            "thread_rng" | "ThreadRng" if is_method_or_path_call(tokens, i) => {
                out.push(violation(
                    file,
                    t.line,
                    "det.rng",
                    format!("`{name}` in a deterministic path (unseeded RNG); use a seeded StdRng"),
                ));
            }
            // `rand::random` free function (a method `rng.random()` on a
            // seeded generator is deterministic and fine).
            "random"
                if i >= 1
                    && tokens[i - 1].is_punct(':')
                    && matches!(tokens.get(i + 1), Some(t) if t.is_punct('(')) =>
            {
                out.push(violation(
                    file,
                    t.line,
                    "det.rng",
                    "`rand::random` in a deterministic path (unseeded RNG); use a seeded StdRng",
                ));
            }
            "HashMap" | "HashSet" => {
                out.push(violation(
                    file,
                    t.line,
                    "det.hash-collection",
                    format!(
                        "`{name}` in a deterministic path (iteration order varies per process); \
                         use BTreeMap/BTreeSet or a Vec"
                    ),
                ));
            }
            _ if PAR_ADAPTERS.contains(&name) => {
                // Look ahead within the same statement for an
                // order-sensitive reduction.
                if let Some((j, red)) = find_reducer_in_statement(tokens, i) {
                    out.push(violation(
                        file,
                        tokens[j].line,
                        "det.unordered-reduce",
                        format!(
                            "`{name}()…{red}()` reduces floats in a thread-dependent order; \
                             reduce per-chunk then combine sequentially"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// `true` if the identifier at `i` is used as a call or path segment
/// (`thread_rng()`, `rand::thread_rng`, `rng.random()`), not a mere
/// variable named e.g. `random`.
fn is_method_or_path_call(tokens: &[Token], i: usize) -> bool {
    matches!(tokens.get(i + 1), Some(t) if t.is_punct('('))
        || matches!(tokens.get(i + 1), Some(t) if t.is_punct(':'))
}

/// Scans forward from a parallel adapter to the end of the statement,
/// returning the first order-sensitive reducer called *on the chain
/// itself* (paren depth 0). A reducer nested inside a `.map(|chunk| …)`
/// argument runs per-item/per-chunk and stays deterministic — that is
/// exactly the recommended rewrite, so it must not be flagged.
fn find_reducer_in_statement(tokens: &[Token], start: usize) -> Option<(usize, &'static str)> {
    let mut j = start + 1;
    let mut brace_depth = 0usize;
    let mut paren_depth = 0usize;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('{') {
            brace_depth += 1;
        } else if t.is_punct('}') {
            if brace_depth == 0 {
                return None;
            }
            brace_depth -= 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            paren_depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren_depth = paren_depth.saturating_sub(1);
        } else if t.is_punct(';') && brace_depth == 0 && paren_depth == 0 {
            return None;
        } else if brace_depth == 0 && paren_depth == 0 {
            if let Some(name) = t.ident() {
                if let Some(red) = UNORDERED_REDUCERS.iter().find(|r| **r == name) {
                    // Must be a method call: `.sum(` / `.reduce(`.
                    let dotted = j >= 1 && tokens[j - 1].is_punct('.');
                    let called =
                        matches!(tokens.get(j + 1), Some(t) if t.is_punct('(') || t.is_punct(':'));
                    if dotted && called {
                        return Some((j, red));
                    }
                }
            }
        }
        j += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// Family 2: panic-freedom
// ---------------------------------------------------------------------------

/// Keywords that, before `[`, mean the bracket is not an index expression
/// (array literals, slice types, generics positions, attribute openers).
const NON_INDEX_PREFIX_KEYWORDS: &[&str] = &[
    "let", "mut", "in", "if", "else", "match", "return", "as", "fn", "impl", "for", "while",
    "loop", "move", "ref", "pub", "use", "where", "break", "continue", "const", "static", "type",
    "struct", "enum", "trait", "unsafe", "dyn", "box", "await", "yield",
];

/// Panicking macros we flag. Plain `assert*!` are *not* flagged: they state
/// an invariant the caller already violated and are the idiomatic guard —
/// the rule targets implicit panics, not explicit contracts.
const FLAGGED_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub(crate) fn panic_pass(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        // `.unwrap()` / `.expect(` at method position.
        if let Some(name) = t.ident() {
            let dotted = i >= 1 && tokens[i - 1].is_punct('.');
            let called = matches!(tokens.get(i + 1), Some(t) if t.is_punct('('));
            if dotted && called && name == "unwrap" {
                out.push(violation(
                    file,
                    t.line,
                    "panic.unwrap",
                    "`.unwrap()` in non-test library code; return a typed error or use a total method",
                ));
            } else if dotted && called && name == "expect" {
                out.push(violation(
                    file,
                    t.line,
                    "panic.expect",
                    "`.expect()` in non-test library code; return a typed error or allowlist with justification",
                ));
            } else if matches!(tokens.get(i + 1), Some(t) if t.is_punct('!'))
                && FLAGGED_MACROS.contains(&name)
            {
                out.push(violation(
                    file,
                    t.line,
                    "panic.macro",
                    format!("`{name}!` in non-test library code; return a typed error instead"),
                ));
            }
        }

        // Direct slice/array indexing: `expr[...]` where expr ends in an
        // identifier, `]` or `)`. `[..]` (full range) cannot panic and is
        // exempt; everything else (including partial ranges) can.
        if index_site(tokens, i) {
            out.push(violation(
                file,
                t.line,
                "panic.indexing",
                "direct slice indexing can panic; use get()/get_mut() or iterate, \
                 or allowlist with a bounds justification",
            ));
        }
    }
}

/// `true` when token `i` is a `[` opening a direct index expression that
/// `panic.indexing` flags. Shared with the `flow.range` prover so interval
/// proofs discharge exactly the sites the syntactic rule reports.
pub(crate) fn index_site(tokens: &[Token], i: usize) -> bool {
    let Some(t) = tokens.get(i) else { return false };
    if !t.is_punct('[') || i == 0 {
        return false;
    }
    let prev = &tokens[i - 1];
    let indexes_expr = match prev.ident() {
        Some(name) => !NON_INDEX_PREFIX_KEYWORDS.contains(&name),
        None => prev.is_punct(']') || prev.is_punct(')'),
    };
    let full_range = tokens.get(i + 1).map(|t| t.is_punct('.')) == Some(true)
        && tokens.get(i + 2).map(|t| t.is_punct('.')) == Some(true)
        && tokens.get(i + 3).map(|t| t.is_punct(']')) == Some(true);
    indexes_expr && !full_range
}

// ---------------------------------------------------------------------------
// Family 3: unit-safety
// ---------------------------------------------------------------------------

/// Maps a parameter name to the `bsa-units` newtype it should use, if the
/// name suggests a dimensioned quantity.
pub fn suggested_unit_type(name: &str) -> Option<&'static str> {
    let lower = name.to_ascii_lowercase();
    let l = lower.as_str();
    // Frequencies: sampling rates, corner frequencies, band edges.
    if matches!(l, "fs" | "fc" | "f0" | "f_lo" | "f_hi" | "f_low" | "f_high")
        || l.contains("freq")
        || l.ends_with("_hz")
    {
        return Some("Hertz");
    }
    if l.contains("volt") || l.ends_with("_v") || l == "vdd" || l == "vref" {
        return Some("Volt");
    }
    if l.contains("current") || l.ends_with("_amp") || l.ends_with("_amps") || l.ends_with("_a") {
        return Some("Ampere");
    }
    if l == "dt"
        || l.ends_with("_s")
        || l.ends_with("_sec")
        || l.ends_with("_seconds")
        || l.contains("duration")
        || l.contains("period")
        || l == "time"
        || l.ends_with("_time")
    {
        return Some("Seconds");
    }
    None
}

fn unit_pass(file: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("pub") {
            if let Some((name_idx, params_start)) = public_fn_params(tokens, i) {
                check_fn_params(file, tokens, name_idx, params_start, out);
            }
        }
        i += 1;
    }
}

/// If `tokens[i]` starts `pub … fn name …(`, returns the indices of the
/// function-name token and of the opening `(` of its parameter list.
fn public_fn_params(tokens: &[Token], i: usize) -> Option<(usize, usize)> {
    let mut j = i + 1;
    // Visibility qualifier `pub(crate)` / `pub(in …)`.
    if tokens.get(j)?.is_punct('(') {
        let mut depth = 1usize;
        j += 1;
        while depth > 0 {
            let t = tokens.get(j)?;
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
            }
            j += 1;
        }
    }
    // Optional qualifiers before `fn`.
    while matches!(
        tokens.get(j)?.ident(),
        Some("const" | "unsafe" | "async" | "extern")
    ) {
        j += 1;
        // `extern "C"` carries a literal.
        if matches!(tokens.get(j)?.kind, crate::lexer::TokenKind::Literal(_)) {
            j += 1;
        }
    }
    if !tokens.get(j)?.is_ident("fn") {
        return None;
    }
    j += 1;
    let name_idx = j;
    tokens.get(j)?.ident()?;
    j += 1;
    // Generic parameter list `<…>` (angle-bracket depth; `>>` lexes as two).
    if tokens.get(j)?.is_punct('<') {
        let mut depth = 1usize;
        j += 1;
        while depth > 0 {
            let t = tokens.get(j)?;
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
            }
            j += 1;
        }
    }
    if tokens.get(j)?.is_punct('(') {
        Some((name_idx, j))
    } else {
        None
    }
}

/// Splits the parameter list at `params_start` (an opening paren) into
/// top-level comma segments and flags raw-`f64` parameters whose names
/// suggest a dimensioned quantity.
fn check_fn_params(
    file: &str,
    tokens: &[Token],
    name_idx: usize,
    params_start: usize,
    out: &mut Vec<Violation>,
) {
    let fn_name = tokens[name_idx].ident().unwrap_or("?");
    let mut depth = 1usize;
    let mut angle = 0usize;
    let mut j = params_start + 1;
    let mut seg_start = j;
    let mut segments: Vec<(usize, usize)> = Vec::new();
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                if j > seg_start {
                    segments.push((seg_start, j));
                }
                break;
            }
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = angle.saturating_sub(1);
        } else if t.is_punct(',') && depth == 1 && angle == 0 {
            segments.push((seg_start, j));
            seg_start = j + 1;
        }
        j += 1;
    }

    for (a, b) in segments {
        let seg = &tokens[a..b];
        // First top-level `:` splits pattern from type (`self` has none).
        let Some(colon) = seg.iter().position(|t| t.is_punct(':')) else {
            continue;
        };
        // `::` path in a pattern would confuse this; params here are plain.
        if seg.get(colon + 1).map(|t| t.is_punct(':')) == Some(true) {
            continue;
        }
        let ty = &seg[colon + 1..];
        // Raw f64: the type tokens are exactly `f64` (no reference, no
        // generics — `&[f64]` sample buffers are fine, single scalars are
        // where the unit mixup hides).
        let is_raw_f64 = ty.len() == 1 && ty[0].is_ident("f64");
        if !is_raw_f64 {
            continue;
        }
        let Some(param_name) = seg[..colon].iter().rev().find_map(|t| t.ident()) else {
            continue;
        };
        if let Some(unit) = suggested_unit_type(param_name) {
            out.push(violation(
                file,
                seg[0].line,
                "units.raw-f64",
                format!(
                    "`pub fn {fn_name}` takes `{param_name}: f64`; use `bsa_units::{unit}` \
                     so unit mixups fail to compile"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};

    const ALL: RuleSet = RuleSet {
        determinism: true,
        panic_freedom: true,
        unit_safety: true,
    };

    fn check(src: &str) -> Vec<Violation> {
        run_rules("test.rs", &strip_test_code(&lex(src)), ALL)
    }

    fn rules_found(src: &str) -> Vec<&'static str> {
        check(src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_instant_now() {
        assert_eq!(
            rules_found("fn f() { let t = Instant::now(); }"),
            vec!["det.time"]
        );
    }

    #[test]
    fn flags_thread_rng_but_not_variables_named_random() {
        assert_eq!(
            rules_found("fn f() { let mut rng = rand::thread_rng(); }"),
            vec!["det.rng"]
        );
        assert!(rules_found("fn f(random: u64) { let x = random + 1; }").is_empty());
    }

    #[test]
    fn flags_hash_collections() {
        assert_eq!(
            rules_found("use std::collections::HashMap; "),
            vec!["det.hash-collection"]
        );
    }

    #[test]
    fn flags_unordered_parallel_sum() {
        let src = "fn f(x: &[f64]) -> f64 { x.par_iter().map(|v| v * v).sum() }";
        // `}` terminates the statement scan only at depth 0; the closure
        // braces are `|v| v * v` (no braces), so the reducer is found.
        assert_eq!(rules_found(src), vec!["det.unordered-reduce"]);
    }

    #[test]
    fn per_chunk_sum_then_sequential_combine_is_fine() {
        let src = "fn f(x: &[f64]) -> f64 { \
                   let p: Vec<f64> = x.par_chunks(1024).map(|c| c.iter().sum::<f64>()).collect(); \
                   p.iter().sum() }";
        assert!(rules_found(src).is_empty());
    }

    #[test]
    fn allows_ordered_parallel_collect() {
        let src = "fn f(x: &[f64]) -> Vec<f64> { x.par_iter().map(|v| v * v).collect() }";
        assert!(rules_found(src).is_empty());
    }

    #[test]
    fn flags_unwrap_and_expect_only_as_method_calls() {
        assert_eq!(rules_found("fn f() { x.unwrap(); }"), vec!["panic.unwrap"]);
        assert_eq!(
            rules_found("fn f() { x.expect(\"msg\"); }"),
            vec!["panic.expect"]
        );
        // unwrap_or and friends are total.
        assert!(rules_found("fn f() { x.unwrap_or(0.0); }").is_empty());
        assert!(rules_found("fn f() { x.unwrap_or_else(|| 0.0); }").is_empty());
    }

    #[test]
    fn flags_panicking_macros_but_not_asserts() {
        assert_eq!(
            rules_found("fn f() { panic!(\"boom\"); }"),
            vec!["panic.macro"]
        );
        assert_eq!(
            rules_found("fn f() { unreachable!(); }"),
            vec!["panic.macro"]
        );
        assert!(rules_found("fn f(n: usize) { assert!(n > 0); }").is_empty());
        assert!(rules_found("fn f(n: usize) { debug_assert_eq!(n, 1); }").is_empty());
    }

    #[test]
    fn flags_direct_indexing_but_not_array_literals_or_full_range() {
        assert_eq!(
            rules_found("fn f(x: &[f64]) { let v = x[3]; }"),
            vec!["panic.indexing"]
        );
        assert_eq!(
            rules_found("fn f(x: &[f64]) { let v = &x[1..4]; }"),
            vec!["panic.indexing"]
        );
        assert!(rules_found("fn f() { let a = [0u8; 4]; }").is_empty());
        assert!(rules_found("fn f(x: &[f64]) { let v = &x[..]; }").is_empty());
        assert!(rules_found("fn f(x: &[f64]) { let v = x.get(3); }").is_empty());
    }

    #[test]
    fn indexing_after_call_or_index_is_flagged() {
        assert_eq!(
            rules_found("fn f() { let v = g()[0]; }"),
            vec!["panic.indexing"]
        );
        assert_eq!(
            rules_found("fn f(m: &M) { let v = m.rows[0][1]; }"),
            vec!["panic.indexing", "panic.indexing"]
        );
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
            pub fn lib() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.unwrap(); y[0]; panic!(); }
            }
        "#;
        assert!(rules_found(src).is_empty());
    }

    #[test]
    fn flags_raw_f64_frequency_param() {
        let v = check("pub fn lowpass(fc: f64, fs: f64) -> Biquad { todo() }");
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "units.raw-f64"));
        assert!(v[0].message.contains("Hertz"));
    }

    #[test]
    fn flags_raw_f64_voltage_and_current_and_time() {
        assert_eq!(
            rules_found("pub fn set_bias(bias_voltage: f64) {}"),
            vec!["units.raw-f64"]
        );
        assert_eq!(
            rules_found("pub fn drive(current_a: f64) {}"),
            vec!["units.raw-f64"]
        );
        assert_eq!(
            rules_found("pub fn step(dt: f64) {}"),
            vec!["units.raw-f64"]
        );
    }

    #[test]
    fn newtyped_and_slice_and_private_params_are_fine() {
        assert!(rules_found("pub fn lowpass(fc: Hertz, fs: Hertz) {}").is_empty());
        assert!(rules_found("pub fn mean(samples: &[f64]) -> f64 { 0.0 }").is_empty());
        assert!(rules_found("fn helper(fs: f64) {}").is_empty());
        assert!(rules_found("pub fn scale(gain: f64) {}").is_empty());
    }

    #[test]
    fn pub_crate_fns_are_checked_too() {
        assert_eq!(
            rules_found("pub(crate) fn tick(dt: f64) {}"),
            vec!["units.raw-f64"]
        );
    }

    #[test]
    fn generic_fn_params_are_parsed() {
        assert_eq!(
            rules_found("pub fn f<T: Into<Vec<u8>>>(x: T, fs: f64) {}"),
            vec!["units.raw-f64"]
        );
    }

    #[test]
    fn violations_are_sorted_by_line() {
        let src = "fn f() {\n x.unwrap();\n let t = Instant::now();\n}";
        let v = check(src);
        assert_eq!(v.len(), 2);
        assert!(v[0].line < v[1].line);
    }
}
