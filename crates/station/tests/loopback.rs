//! End-to-end loopback tests: real TCP sockets against an in-process
//! station.
//!
//! The headline property is determinism across the wire — a neuro stream
//! served over TCP is *bit-identical* (`f64::to_bits`) to an in-process
//! `record()` call built from the same wire specs, because the station
//! constructs chips through the very same `registry` conversion functions
//! these tests use for the reference.

#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically

use bsa_core::neuro_chip::NeuroChip;
use bsa_link::{
    read_message, write_message, CultureSpec, DnaChipSpec, FaultEntrySpec, FaultKindSpec,
    FaultPlanSpec, FaultTargetSpec, Message, NeuroChipSpec, TargetSpec,
};
use bsa_station::{
    culture_from_spec, neuro_config_from_spec, Station, StationClient, StationConfig,
};
use bsa_units::Seconds;
use std::net::TcpStream;
use std::time::Duration;

fn start_station() -> bsa_station::StationHandle {
    Station::bind(StationConfig::default()).expect("bind loopback station")
}

const NEURO_SEED: u64 = 0x0EE5_1281;
const CULTURE_SEED: u64 = 77;

fn neuro_spec(rows: u16, cols: u16) -> NeuroChipSpec {
    NeuroChipSpec {
        rows,
        cols,
        channels: 16,
        seed: NEURO_SEED,
        frame_rate_hz: 0.0,
    }
}

fn culture_spec(frames: u32) -> CultureSpec {
    CultureSpec {
        seed: CULTURE_SEED,
        neuron_count: 24,
        // Long enough that spikes cover the whole recording window.
        spike_duration_s: f64::from(frames) / 1000.0,
    }
}

/// Records the reference frames in-process, through the same spec
/// conversions the server uses.
fn reference_frames(spec: &NeuroChipSpec, culture: &CultureSpec, frames: usize) -> Vec<Vec<f64>> {
    let config = neuro_config_from_spec(spec).unwrap();
    let mut chip = NeuroChip::new(config).unwrap();
    let culture = culture_from_spec(culture);
    let recording = chip.record(&culture, Seconds::new(0.0), frames);
    recording
        .frames()
        .iter()
        .map(|f| f.samples().to_vec())
        .collect()
}

/// The acceptance-criteria test: a full 128x128 chip streams >= 100
/// frames over TCP, and every sample is bit-identical to the in-process
/// recording.
#[test]
fn streamed_frames_bit_identical_to_direct_record() {
    let station = start_station();
    let spec = neuro_spec(128, 128);
    let culture = culture_spec(112);

    let mut client = StationClient::connect(station.addr(), "bit-identical").unwrap();
    let attached = client.attach_neuro(&spec).unwrap();
    assert_eq!((attached.rows, attached.cols), (128, 128));

    let stream = client
        .stream_neuro(attached.chip, 112, 8, Seconds::new(0.0), &culture)
        .unwrap();
    assert!(
        stream.frames.len() >= 100,
        "only {} frames arrived",
        stream.frames.len()
    );
    assert_eq!(
        u32::try_from(stream.frames.len()).unwrap(),
        stream.frames_sent
    );
    assert_eq!(stream.frames_sent + stream.frames_dropped, 112);
    // Local client drains the loopback socket fast enough that nothing
    // should be dropped; if this ever flakes the bit-identity check below
    // still covers whatever arrived.
    assert_eq!(stream.frames_dropped, 0, "loopback client fell behind");

    let reference = reference_frames(&spec, &culture_spec(112), 112);
    assert_eq!(stream.frames.len(), reference.len());
    for (i, (got, want)) in stream.frames.iter().zip(&reference).enumerate() {
        assert_eq!(got.len(), want.len(), "frame {i} sample count");
        for (j, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "frame {i} sample {j}: {g} != {w}");
        }
    }
}

/// Two clients work the station concurrently — one runs a DNA assay with
/// streamed counts, the other streams neuro frames — and both see
/// correct, isolated results.
#[test]
fn two_concurrent_clients_dna_and_neuro() {
    let station = start_station();
    let addr = station.addr();

    let neuro_thread = std::thread::spawn(move || {
        let spec = neuro_spec(32, 32);
        let culture = culture_spec(64);
        let mut client = StationClient::connect(addr, "neuro-client").unwrap();
        let attached = client.attach_neuro(&spec).unwrap();
        let stream = client
            .stream_neuro(attached.chip, 64, 4, Seconds::new(0.0), &culture)
            .unwrap();
        assert_eq!(stream.frames_sent + stream.frames_dropped, 64);
        let reference = reference_frames(&spec, &culture_spec(64), 64);
        for (got, want) in stream.frames.iter().zip(&reference) {
            let same = got
                .iter()
                .zip(want)
                .all(|(g, w)| g.to_bits() == w.to_bits());
            assert!(same, "neuro frames diverged under concurrent load");
        }
        stream.frames.len()
    });

    let dna_thread = std::thread::spawn(move || {
        let mut client = StationClient::connect(addr, "dna-client").unwrap();
        let attached = client
            .attach_dna(&DnaChipSpec {
                rows: 0,
                cols: 0,
                seed: 42,
                frame_time_s: 0.0,
            })
            .unwrap();
        assert_eq!((attached.rows, attached.cols), (8, 16));
        let cal = client.calibrate(attached.chip).unwrap();
        assert!(cal.healthy > 0);
        let probe = "ACGTACGTACGT".to_string();
        client
            .configure_assay(
                attached.chip,
                vec![probe.clone()],
                vec![TargetSpec {
                    sequence: probe,
                    concentration_molar: 1e-9,
                }],
            )
            .unwrap();
        let outcome = client.run_assay(attached.chip, true).unwrap();
        assert_eq!(outcome.counts.len(), 8 * 16);
        assert_eq!(outcome.estimated_currents_a.len(), 8 * 16);
        // Streamed per-pixel counts must agree with the final result.
        let (sent, dropped) = outcome.stream_accounting.unwrap();
        assert_eq!(usize::try_from(sent).unwrap(), outcome.streamed.len());
        assert_eq!(dropped, 0);
        for reading in &outcome.streamed {
            let idx = usize::from(reading.row) * 16 + usize::from(reading.col);
            assert_eq!(outcome.counts.get(idx).copied(), Some(reading.count));
        }
        outcome.counts.iter().sum::<u64>()
    });

    let neuro_frames = neuro_thread.join().expect("neuro client panicked");
    let total_counts = dna_thread.join().expect("dna client panicked");
    assert!(neuro_frames > 0);
    assert!(
        total_counts > 0,
        "a matched 1 nM target must produce counts"
    );

    let stats = station.stats();
    assert!(stats.sessions_opened >= 2);
    assert_eq!(stats.chips_attached, 2);
    assert!(stats.frames_served > 0);
}

/// Killing a client mid-stream must not take the station down: the
/// surviving session keeps getting served.
#[test]
fn killing_one_client_leaves_the_other_served() {
    let station = start_station();
    let addr = station.addr();

    // Victim speaks raw protocol so we can drop the socket mid-stream.
    let mut victim = TcpStream::connect(addr).unwrap();
    victim
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_message(
        &mut victim,
        &Message::Hello {
            client: "victim".into(),
        },
    )
    .unwrap();
    assert!(matches!(
        read_message(&mut victim).unwrap(),
        Message::HelloAck { .. }
    ));
    write_message(&mut victim, &Message::AttachNeuro(neuro_spec(32, 32))).unwrap();
    let chip = match read_message(&mut victim).unwrap() {
        Message::Attached { chip, .. } => chip,
        other => panic!("expected Attached, got {other:?}"),
    };
    write_message(
        &mut victim,
        &Message::StartNeuroStream {
            chip,
            frames: 256,
            chunk_frames: 1,
            t0_s: 0.0,
            culture: culture_spec(256),
        },
    )
    .unwrap();
    // Take exactly one chunk, then vanish without a goodbye.
    assert!(matches!(
        read_message(&mut victim).unwrap(),
        Message::StreamData { .. }
    ));
    drop(victim);

    // The survivor connects afterwards and must get full service.
    let mut survivor = StationClient::connect(addr, "survivor").unwrap();
    let attached = survivor.attach_neuro(&neuro_spec(16, 16)).unwrap();
    let stream = survivor
        .stream_neuro(attached.chip, 32, 4, Seconds::new(0.0), &culture_spec(32))
        .unwrap();
    assert_eq!(stream.frames_sent + stream.frames_dropped, 32);
    assert!(!stream.frames.is_empty());
    survivor.ping(0xDEAD_BEEF).unwrap();
}

/// Fault injection round-trips over the wire: a dead pixel and a lost
/// channel show up in the health report.
#[test]
fn fault_injection_over_the_wire() {
    let station = start_station();
    let mut client = StationClient::connect(station.addr(), "faults").unwrap();
    let attached = client.attach_neuro(&neuro_spec(16, 16)).unwrap();
    client
        .inject_faults(
            attached.chip,
            FaultPlanSpec {
                seed: 3,
                entries: vec![
                    FaultEntrySpec {
                        target: FaultTargetSpec::Pixel { row: 2, col: 3 },
                        kind: FaultKindSpec::DeadPixel,
                    },
                    FaultEntrySpec {
                        target: FaultTargetSpec::Global,
                        kind: FaultKindSpec::ChannelLoss { channel: 1 },
                    },
                ],
            },
        )
        .unwrap();
    let health = client.health(attached.chip).unwrap();
    assert_eq!(health.total_pixels, 256);
    assert_eq!(health.lost_channels, vec![1]);
    assert!(health.injected >= 1);
}

/// Wire-level errors come back as typed `ErrorReply`s, not dropped
/// connections: unknown chip ids and malformed assay configs.
#[test]
fn server_replies_with_typed_errors() {
    let station = start_station();
    let mut client = StationClient::connect(station.addr(), "errors").unwrap();

    let err = client.calibrate(99).unwrap_err();
    assert!(
        matches!(err, bsa_station::ClientError::Server { .. }),
        "unknown chip must yield a server error, got {err:?}"
    );

    // The session survives the error.
    client.ping(5).unwrap();

    let attached = client.attach_neuro(&neuro_spec(16, 16)).unwrap();
    let err = client
        .stream_neuro(
            attached.chip,
            0, // zero frames is invalid
            1,
            Seconds::new(0.0),
            &culture_spec(1),
        )
        .unwrap_err();
    assert!(matches!(err, bsa_station::ClientError::Server { .. }));

    // Detach then use-after-detach.
    client.detach(attached.chip).unwrap();
    let err = client.calibrate(attached.chip).unwrap_err();
    assert!(matches!(err, bsa_station::ClientError::Server { .. }));
}

/// Station shutdown mid-stream is graceful: the in-flight stream is
/// delivered whole (no partial frame), `StreamEnd` arrives, and the
/// next request fails with a typed error instead of hanging.
#[test]
fn shutdown_mid_stream_delivers_stream_end_then_typed_error() {
    let station = start_station();
    let addr = station.addr();

    let mut client = TcpStream::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_message(
        &mut client,
        &Message::Hello {
            client: "shutdown-victim".into(),
        },
    )
    .unwrap();
    assert!(matches!(
        read_message(&mut client).unwrap(),
        Message::HelloAck { .. }
    ));
    write_message(&mut client, &Message::AttachNeuro(neuro_spec(32, 32))).unwrap();
    let chip = match read_message(&mut client).unwrap() {
        Message::Attached { chip, .. } => chip,
        other => panic!("expected Attached, got {other:?}"),
    };
    write_message(
        &mut client,
        &Message::StartNeuroStream {
            chip,
            frames: 64,
            chunk_frames: 4,
            t0_s: 0.0,
            culture: culture_spec(64),
        },
    )
    .unwrap();
    // Take one chunk, then shut the station down under the stream.
    let first = read_message(&mut client).unwrap();
    assert!(matches!(first, Message::StreamData { .. }));
    station.shutdown();

    // The rest of the stream still arrives: whole frames only, then a
    // clean StreamEnd.
    let frame_len = 32usize * 32;
    let mut samples_seen = match first {
        Message::StreamData {
            payload: bsa_link::StreamPayload::NeuroFrames { samples, .. },
            ..
        } => samples.len(),
        _ => 0,
    };
    let (frames_sent, frames_dropped) = loop {
        match read_message(&mut client).expect("stream continues past shutdown") {
            Message::StreamData {
                payload: bsa_link::StreamPayload::NeuroFrames { samples, .. },
                ..
            } => {
                assert_eq!(
                    samples.len() % frame_len,
                    0,
                    "chunk must contain whole frames"
                );
                samples_seen += samples.len();
            }
            Message::StreamEnd {
                frames_sent,
                frames_dropped,
                ..
            } => break (frames_sent, frames_dropped),
            other => panic!("unexpected message {other:?}"),
        }
    };
    assert_eq!(samples_seen, (frames_sent as usize) * frame_len);
    assert_eq!(u64::from(frames_sent) + u64::from(frames_dropped), 64);

    // The session's read half is gone: the next request errors (EOF or
    // reset) within the client deadline — it does not hang.
    write_message(&mut client, &Message::Ping { token: 7 }).ok();
    assert!(
        read_message(&mut client).is_err(),
        "request after shutdown must fail with a typed error"
    );
}

/// Idle sessions are reaped: with `max_sessions: 1` and a short server
/// read timeout, an idle client is disconnected and its slot freed, so
/// a second client gets admitted instead of an Overloaded refusal.
#[test]
fn idle_sessions_are_reaped_and_slots_freed() {
    let station = Station::bind(StationConfig {
        read_timeout: Some(Duration::from_millis(200)),
        max_sessions: 1,
        ..StationConfig::default()
    })
    .unwrap();
    let addr = station.addr();

    let mut first = StationClient::connect(addr, "idler").unwrap();
    first.ping(1).unwrap();

    // While the first session is live, the slot is taken.
    let refused = StationClient::connect(addr, "refused");
    assert!(
        refused.is_err(),
        "second session must be refused while busy"
    );

    // Go idle past the server read timeout; the reaper frees the slot.
    std::thread::sleep(Duration::from_millis(600));
    let mut second = StationClient::connect(addr, "admitted").unwrap();
    second.ping(2).unwrap();

    // The idle client was disconnected by the reap.
    assert!(
        first.ping(3).is_err(),
        "reaped session must be disconnected"
    );
}

/// The store acceptance test: record a live 128x128 neuro stream and a
/// DNA assay to disk, then replay both through a *fresh* station session
/// and require the replayed data to be indistinguishable from the live
/// acquisition — `f64::to_bits`-identical neuro samples, identical DNA
/// counts, the same `StreamData`*/`StreamEnd` grammar.
#[test]
fn recorded_streams_replay_bit_identical_through_fresh_session() {
    let store_root = std::env::temp_dir().join(format!("bsa-station-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);
    let station = Station::bind(StationConfig {
        store_root: Some(store_root.clone()),
        ..StationConfig::default()
    })
    .unwrap();
    let addr = station.addr();

    let spec = neuro_spec(128, 128);
    let culture = culture_spec(48);
    let dna_counts;
    {
        let mut recorder = StationClient::connect(addr, "recorder").unwrap();

        // Live neuro stream, teed to the store.
        let attached = recorder.attach_neuro(&spec).unwrap();
        recorder
            .start_recording(attached.chip, "neuro-take")
            .unwrap();
        let stream = recorder
            .stream_neuro(attached.chip, 48, 8, Seconds::new(0.0), &culture)
            .unwrap();
        assert_eq!(stream.frames_sent + stream.frames_dropped, 48);
        let summary = recorder.stop_recording(attached.chip).unwrap();
        assert_eq!(summary.name, "neuro-take");
        // The tee runs before the outbound offer, so the segment holds
        // every produced frame whatever TCP backpressure did; the store
        // queue is deeper than the stream, so nothing drops here either.
        assert_eq!(summary.frames_written, 48, "store writer fell behind");
        assert_eq!(summary.frames_dropped, 0);
        assert!(summary.bytes_written > 0);

        // DNA assay, one record per pixel reading.
        let dna = recorder
            .attach_dna(&DnaChipSpec {
                rows: 0,
                cols: 0,
                seed: 42,
                frame_time_s: 0.0,
            })
            .unwrap();
        let probe = "ACGTACGTACGT".to_string();
        recorder
            .configure_assay(
                dna.chip,
                vec![probe.clone()],
                vec![TargetSpec {
                    sequence: probe,
                    concentration_molar: 1e-9,
                }],
            )
            .unwrap();
        recorder.start_recording(dna.chip, "assay-take").unwrap();
        // Not streamed to the client — the tee persists the readout
        // independently of `stream_counts`.
        let outcome = recorder.run_assay(dna.chip, false).unwrap();
        let summary = recorder.stop_recording(dna.chip).unwrap();
        assert_eq!(summary.frames_written, 8 * 16);
        assert_eq!(summary.frames_dropped, 0);
        dna_counts = outcome.counts;
    }

    // Fresh session: the catalog lists both takes with their geometry.
    let mut replayer = StationClient::connect(addr, "replayer").unwrap();
    let entries = replayer.recordings().unwrap();
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["assay-take", "neuro-take"]);
    let neuro_entry = entries.iter().find(|e| e.name == "neuro-take").unwrap();
    assert_eq!(neuro_entry.kind, bsa_link::ChipKind::Neuro);
    assert_eq!((neuro_entry.rows, neuro_entry.cols), (128, 128));
    assert_eq!(neuro_entry.frames, 48);

    // Replayed neuro frames are bit-identical to an in-process record()
    // built from the same wire specs — the recording really did capture
    // the acquisition, not an approximation of it.
    let replayed = replayer.replay("neuro-take", 0).unwrap();
    assert_eq!(replayed.kind, bsa_link::ChipKind::Neuro);
    assert_eq!((replayed.rows, replayed.cols), (128, 128));
    assert_eq!(replayed.frames_sent + replayed.frames_dropped, 48);
    assert_eq!(replayed.frames_dropped, 0, "loopback replay fell behind");
    let reference = reference_frames(&spec, &culture_spec(48), 48);
    assert_eq!(replayed.frames.len(), reference.len());
    for (i, (got, want)) in replayed.frames.iter().zip(&reference).enumerate() {
        assert_eq!(got.len(), want.len(), "frame {i} sample count");
        for (j, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "frame {i} sample {j}: {g} != {w}");
        }
    }

    // Replayed assay readings reproduce the live counts exactly.
    let assay = replayer.replay("assay-take", 0).unwrap();
    assert_eq!(assay.kind, bsa_link::ChipKind::Dna);
    assert_eq!(assay.readings.len(), 8 * 16);
    for reading in &assay.readings {
        let idx = usize::from(reading.row) * 16 + usize::from(reading.col);
        assert_eq!(dna_counts.get(idx).copied(), Some(reading.count));
    }

    // A bogus name is a typed server error on the same session.
    let err = replayer.replay("no-such-take", 0).unwrap_err();
    assert!(matches!(err, bsa_station::ClientError::Server { .. }));

    drop(station);
    let _ = std::fs::remove_dir_all(&store_root);
}

/// A recording whose stored header declares an absurd frame geometry is
/// refused at replay with a typed server error before the session sizes
/// any sample buffer from it — the header is segment-controlled data,
/// the same trust boundary as the wire.
#[test]
fn replay_refuses_oversized_recorded_geometry() {
    use bsa_store::{fnv1a64, Recorder, SegmentMeta};

    let store_root = std::env::temp_dir().join(format!("bsa-station-geom-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);

    // Plant a structurally valid segment (real CRCs, real footer) whose
    // header claims a 8192x8192 array — far past MAX_REPLAY_DIM, and a
    // ~25 GiB chunk buffer if the session trusted it.
    let meta = SegmentMeta {
        chip: 1,
        kind: bsa_link::ChipKind::Neuro,
        rows: 8192,
        cols: 8192,
        config_hash: fnv1a64(b"rogue"),
        spec: "rogue".into(),
    };
    let mut rec = Recorder::create(&store_root, "rogue-take", &meta, 16, 4).unwrap();
    rec.offer(0, vec![0u8; 16]).unwrap();
    rec.finish().unwrap();

    let station = Station::bind(StationConfig {
        store_root: Some(store_root.clone()),
        ..StationConfig::default()
    })
    .unwrap();
    let mut client = StationClient::connect(station.addr(), "geom").unwrap();
    let err = client.replay("rogue-take", 0).unwrap_err();
    match err {
        bsa_station::ClientError::Server { message, .. } => {
            assert!(
                message.contains("replay limit"),
                "unexpected server message: {message}"
            );
        }
        other => panic!("expected typed server error, got {other:?}"),
    }

    drop(station);
    let _ = std::fs::remove_dir_all(&store_root);
}

/// Pixel masking round-trips: masked pixels are repaired by neighbor
/// interpolation bit-identically to an in-process `PixelMask` repair of
/// the same recording, and bad indices get a typed error.
#[test]
fn masked_stream_matches_in_process_repair() {
    let station = start_station();
    let mut client = StationClient::connect(station.addr(), "masker").unwrap();
    let spec = neuro_spec(16, 16);
    let culture = culture_spec(8);
    let attached = client.attach_neuro(&spec).unwrap();

    // Out-of-range index is rejected, session survives.
    let err = client.mask_pixels(attached.chip, &[256]).unwrap_err();
    assert!(matches!(err, bsa_station::ClientError::Server { .. }));

    // Mask three pixels; repeated masking unions.
    assert_eq!(client.mask_pixels(attached.chip, &[0, 17]).unwrap(), 2);
    assert_eq!(client.mask_pixels(attached.chip, &[17, 40]).unwrap(), 3);

    let stream = client
        .stream_neuro(attached.chip, 8, 4, Seconds::new(0.0), &culture)
        .unwrap();
    assert_eq!(stream.frames.len(), 8);

    // Reference: same recording, repaired in-process with the same mask.
    let mut usable = vec![true; 256];
    for idx in [0usize, 17, 40] {
        usable[idx] = false;
    }
    let mask = bsa_dsp::masking::PixelMask::new(16, 16, usable);
    let reference = reference_frames(&spec, &culture, 8);
    for (served, reference) in stream.frames.iter().zip(reference.iter()) {
        let mut repaired = reference.clone();
        let _ = mask.interpolate(&mut repaired);
        let served_bits: Vec<u64> = served.iter().map(|s| s.to_bits()).collect();
        let repaired_bits: Vec<u64> = repaired.iter().map(|s| s.to_bits()).collect();
        assert_eq!(served_bits, repaired_bits);
    }

    // Detaching clears the mask: a fresh chip with the same spec streams
    // the unmasked recording again.
    client.detach(attached.chip).unwrap();
    let fresh = client.attach_neuro(&spec).unwrap();
    let unmasked = client
        .stream_neuro(fresh.chip, 8, 4, Seconds::new(0.0), &culture)
        .unwrap();
    for (served, reference) in unmasked.frames.iter().zip(reference.iter()) {
        let served_bits: Vec<u64> = served.iter().map(|s| s.to_bits()).collect();
        let reference_bits: Vec<u64> = reference.iter().map(|s| s.to_bits()).collect();
        assert_eq!(served_bits, reference_bits);
    }
}
