// Experiment binaries abort on broken I/O or impossible configs by design.
#![allow(clippy::unwrap_used)]
//! Experiment E-F6c: full-array neural recording (paper §3, Figs. 5–6).
//!
//! Records a cultured network with the 128×128 chip at 2 kframes/s,
//! detects action potentials per pixel, and checks that every firing
//! neuron is localized by the activity map regardless of its position —
//! plus a frame-rate ablation for spike recall.

use bsa_bench::{banner, eng, pct, sig, Table};
use bsa_core::array::PixelAddress;
use bsa_core::neuro_chip::{NeuroChip, NeuroChipConfig};
use bsa_dsp::frames::FrameStack;
use bsa_dsp::spike::{score_detections, SpikeDetector};
use bsa_neuro::culture::{Culture, CultureConfig};
use bsa_units::{Hertz, Meter, Seconds};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn record_stack(chip: &mut NeuroChip, culture: &Culture, frames: usize) -> FrameStack {
    let rec = chip.record(culture, Seconds::ZERO, frames);
    let g = rec.geometry();
    let gain = rec.nominal_voltage_gain();
    let frames: Vec<Vec<f64>> = rec
        .frames()
        .iter()
        .map(|f| f.samples().iter().map(|s| s / gain).collect())
        .collect();
    FrameStack::new(g.rows(), g.cols(), frames)
}

fn main() {
    banner(
        "E-F6c",
        "Figs. 5–6 (128×128 array recording at 2 kframes/s)",
        "each cell monitored independent of position; amplitudes 100 µV – 5 mV",
    );

    let mut rng = SmallRng::seed_from_u64(2026);
    let cfg = CultureConfig {
        neuron_count: 12,
        mean_rate_hz: 30.0,
        ..CultureConfig::default()
    };
    let mut culture = Culture::random(&cfg, &mut rng);
    let duration = Seconds::from_milli(250.0);
    culture.generate_spikes(duration, &mut rng);

    let mut chip = NeuroChip::new(NeuroChipConfig::default()).expect("valid config");
    let timing = chip.timing();
    println!(
        "Recording {} neurons for {} at {} ({} frames of {}×{} pixels, dwell {}).",
        culture.neurons().len(),
        duration,
        timing.frame_rate,
        (duration.value() * timing.frame_rate.value()).round() as usize,
        chip.config().geometry.rows(),
        chip.config().geometry.cols(),
        eng(timing.pixel_dwell.value(), "s"),
    );
    let frames = (duration.value() * timing.frame_rate.value()).round() as usize;
    let stack = record_stack(&mut chip, &culture, frames).detrended();
    println!(
        "Recorded. Total culture spikes: {}.",
        culture.total_spikes()
    );
    println!();

    // (a) Localization: suprathreshold events detected per pixel — a
    // spike-count map over the surface.
    let geometry = chip.config().geometry;
    let detector = SpikeDetector::default();
    let event_map: Vec<usize> = (0..geometry.rows())
        .flat_map(|r| {
            let stack = &stack;
            let detector = &detector;
            (0..geometry.cols()).map(move |c| detector.detect(&stack.pixel_series(r, c)).len())
        })
        .collect();
    let total_events: usize = event_map.iter().sum();
    let active_pixels = event_map.iter().filter(|e| **e > 0).count();
    let mut t = Table::new(
        "Neuron localization via the per-pixel spike-event map",
        &[
            "neuron",
            "position (µm)",
            "diameter",
            "true spikes",
            "events under soma",
            "localized",
        ],
    );
    let mut localized = 0usize;
    for (k, n) in culture.neurons().iter().enumerate() {
        let row = ((n.y.value() / geometry.pitch().value()) as usize).min(geometry.rows() - 1);
        let col = ((n.x.value() / geometry.pitch().value()) as usize).min(geometry.cols() - 1);
        // Events summed over every pixel under the soma footprint — the
        // paper's claim is that *some* pixel monitors each cell.
        let reach = (n.radius().value() / geometry.pitch().value()).ceil() as i64;
        let mut events = 0usize;
        for dr in -reach..=reach {
            for dc in -reach..=reach {
                let r = row as i64 + dr;
                let c = col as i64 + dc;
                if r < 0 || c < 0 || r >= geometry.rows() as i64 || c >= geometry.cols() as i64 {
                    continue;
                }
                let (px, py) = geometry
                    .position_of(bsa_core::array::PixelAddress::new(r as usize, c as usize));
                let dist = ((px - n.x).value().powi(2) + (py - n.y).value().powi(2)).sqrt();
                if dist <= n.radius().value() {
                    events += event_map[r as usize * geometry.cols() + c as usize];
                }
            }
        }
        let is_localized = !n.spikes.is_empty() && events >= 1;
        localized += is_localized as usize;
        t.add_row(vec![
            k.to_string(),
            format!("({:.0}, {:.0})", n.x.as_micro(), n.y.as_micro()),
            eng(n.diameter.value(), "m"),
            n.spikes.len().to_string(),
            events.to_string(),
            is_localized.to_string(),
        ]);
    }
    t.print();
    let firing = culture
        .neurons()
        .iter()
        .filter(|n| !n.spikes.is_empty())
        .count();
    println!();
    println!(
        "Localized {localized}/{firing} firing neurons; {active_pixels}/{} pixels saw events ({} events total).",
        geometry.len(),
        total_events
    );
    // Export the spike-event map as an image artifact.
    let map: Vec<f64> = event_map.iter().map(|e| *e as f64).collect();
    let pgm = std::path::Path::new("target/experiments/f6c_event_map.pgm");
    if bsa_bench::save_pgm(pgm, &map, geometry.rows(), geometry.cols()).is_ok() {
        println!("Spike-event map image written to {}.", pgm.display());
    }
    println!();

    // (b) Per-pixel spike detection at the best-coupled neuron.
    let best = culture
        .neurons()
        .iter()
        .enumerate()
        .filter(|(_, n)| !n.spikes.is_empty())
        .max_by(|a, b| {
            a.1.template
                .amplitude()
                .partial_cmp(&b.1.template.amplitude())
                .unwrap()
        })
        .map(|(k, _)| k)
        .expect("at least one firing neuron");
    let n = &culture.neurons()[best];
    let row = ((n.y.value() / geometry.pitch().value()) as usize).min(geometry.rows() - 1);
    let col = ((n.x.value() / geometry.pitch().value()) as usize).min(geometry.cols() - 1);
    let series = stack.pixel_series(row, col);
    let det = SpikeDetector::default().detect(&series);
    let truth: Vec<usize> = n
        .spikes
        .iter()
        .map(|s| (s.value() * timing.frame_rate.value()) as usize)
        .filter(|f| *f < series.len())
        .collect();
    let score = score_detections(&det, &truth, 3);
    println!(
        "Spike detection at neuron {best}'s pixel ({row}, {col}): recall {} precision {} (truth {}, detected {}).",
        pct(score.recall()),
        pct(score.precision()),
        truth.len(),
        det.len()
    );
    println!();

    // (c) Frame-rate ablation on a smaller array (16×16 under one neuron).
    let mut t = Table::new(
        "Frame-rate ablation: spike recall at the soma pixel (16×16 sub-array)",
        &["frame rate", "recall", "precision"],
    );
    for rate_k in [0.5, 1.0, 2.0, 4.0] {
        let sub_cfg = NeuroChipConfig {
            geometry: bsa_core::array::ArrayGeometry::new(16, 16, Meter::from_micro(7.8))
                .expect("valid geometry"),
            channels: 4,
            frame_rate: Hertz::from_kilo(rate_k),
            ..NeuroChipConfig::default()
        };
        let mut sub = NeuroChip::new(sub_cfg).expect("valid config");
        // Single well-coupled neuron mid-array, regular 20 Hz firing.
        let mut c1 = Culture::empty(Meter::from_milli(1.0), Meter::from_milli(1.0));
        let (x, y) = sub.config().geometry.position_of(PixelAddress::new(8, 8));
        let template = bsa_neuro::junction::ApTemplate::from_hh(
            &bsa_neuro::junction::CleftJunction::nominal(),
            Seconds::new(10e-6),
        )
        .scaled(3.0);
        let mut rng2 = SmallRng::seed_from_u64(5);
        let pattern = bsa_neuro::firing::FiringPattern::Regular {
            rate_hz: 20.0,
            phase: 0.13,
            jitter_s: 1e-3,
        };
        let spikes = pattern.generate(Seconds::from_milli(500.0), &mut rng2);
        c1.push(bsa_neuro::culture::CulturedNeuron {
            x,
            y,
            diameter: Meter::from_micro(40.0),
            pattern,
            template,
            spikes: spikes.clone(),
        });
        let frames = (0.5 * rate_k * 1e3).round() as usize;
        let stack = record_stack(&mut sub, &c1, frames).detrended();
        let series = stack.pixel_series(8, 8);
        let det = SpikeDetector::default().detect(&series);
        let truth: Vec<usize> = spikes
            .iter()
            .map(|s| (s.value() * rate_k * 1e3) as usize)
            .filter(|f| *f < series.len())
            .collect();
        let score = score_detections(&det, &truth, 3);
        t.add_row(vec![
            eng(rate_k * 1e3, "Hz"),
            pct(score.recall()),
            pct(score.precision()),
        ]);
    }
    t.print();
    println!();
    println!("Sub-millisecond APs need ≥2 kframes/s for reliable capture — the paper's");
    println!("full-frame-rate choice.");
    let _ = sig(0.0, 1);
}
