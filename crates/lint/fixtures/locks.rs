//! Seeded acquisition-order cycles for `conc.lock-order` (semantic lint
//! fixture — lexed and parsed, never compiled).
//!
//! Each cycle is reported once, attributed to the provenance of the
//! canonical cycle's first edge (the rotation starting at the
//! lexicographically smallest node), so exactly one line per cycle
//! carries a marker.

pub struct Station {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    gamma: Mutex<u32>,
    delta: Mutex<u32>,
    gate: Mutex<Vec<u32>>,
    mu: Mutex<u32>,
    nu: Mutex<u32>,
    frames_tx: Sender<u32>,
    frames_rx: Receiver<u32>,
}

impl Station {
    // -- cycle 1: two fns take the same two locks in opposite orders.
    // Canonical cycle [lock:alpha, lock:beta]; its first edge is the
    // later acquisition in `forward`, so the marker lands there.

    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock(); //~ conc.lock-order
        drop((a, b));
    }

    pub fn backward(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        drop((b, a));
    }

    // -- cycle 2: a lock held across a blocking send, and the receive
    // end taking the same lock. Both channel endpoints alias to
    // `chan:frames`; canonical cycle [chan:frames, lock:gate] puts the
    // marker on the lock acquisition in `consume`.

    pub fn publish(&self, v: u32) {
        let g = self.gate.lock();
        self.frames_tx.send(v);
        drop(g);
    }

    pub fn consume(&self) -> u32 {
        let v = self.frames_rx.recv();
        let g = self.gate.lock(); //~ conc.lock-order
        drop(g);
        v
    }

    // -- cycle 3: the opposite order arises only through calls — each
    // half acquires its second node inside a (uniquely named) callee.
    // Canonical cycle [lock:mu, lock:nu]; the first edge comes from the
    // call in `outer_mu_then_nu`.

    pub fn outer_mu_then_nu(&self) {
        let m = self.mu.lock();
        self.take_nu(); //~ conc.lock-order
        drop(m);
    }

    fn take_nu(&self) {
        let n = self.nu.lock();
        drop(n);
    }

    pub fn outer_nu_then_mu(&self) {
        let n = self.nu.lock();
        self.take_mu();
        drop(n);
    }

    fn take_mu(&self) {
        let m = self.mu.lock();
        drop(m);
    }

    // -- consistent order everywhere: no cycle, no report.

    pub fn ordered_one(&self) {
        let g = self.gamma.lock();
        let d = self.delta.lock();
        drop((g, d));
    }

    pub fn ordered_two(&self) {
        let g = self.gamma.lock();
        let d = self.delta.lock();
        drop((g, d));
    }
}
