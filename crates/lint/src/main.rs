//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p bsa-lint -- check     # enforce (CI gate): exit 1 on any
//!                                    # non-allowlisted violation or any
//!                                    # stale allowlist budget
//! cargo run -p bsa-lint -- check --format json   # machine-readable report
//! cargo run -p bsa-lint -- check --format sarif  # SARIF 2.1.0 for code scanning
//! cargo run -p bsa-lint -- list     # every raw violation, pre-allowlist
//! cargo run -p bsa-lint -- budget   # total allowlist budget (CI compares
//!                                    # this against the baseline)
//! cargo run -p bsa-lint -- tighten  # rewrite lint.allow.toml budgets
//!                                    # down to the actual counts
//! cargo run -p bsa-lint -- abi regen  # refingerprint the wire ABI into
//!                                      # link.abi.lock (review the diff!)
//! cargo run -p bsa-lint -- abi show   # print the lock HEAD would produce
//! ```

use bsa_lint::{
    allow, canonical_entries, check_workspace, load_lock_state, load_sources, render_json,
    render_lock, render_sarif, rule_description, workspace_root, AbiSummary, Allowlist,
    PassTimings, ProtoSummary, Report, LOCK_FILE, RULE_IDS,
};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

const ALLOWLIST: &str = "lint.allow.toml";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => match parse_format(&args) {
            Ok(format) => cmd_check(format),
            Err(e) => {
                eprintln!("bsa-lint: {e}");
                ExitCode::from(2)
            }
        },
        Some("list") => cmd_list(),
        Some("budget") => cmd_budget(),
        Some("tighten") => cmd_tighten(),
        Some("abi") => cmd_abi(args.get(1).map(String::as_str)),
        Some("rules") => {
            for id in RULE_IDS {
                println!("{id:<22} {}", rule_description(id));
            }
            ExitCode::SUCCESS
        }
        other => {
            let name = other.unwrap_or("<none>");
            eprintln!("bsa-lint: unknown command `{name}`");
            eprintln!(
                "usage: cargo run -p bsa-lint -- <check|list|budget|tighten|rules|abi> \
                 [--format json|sarif]"
            );
            ExitCode::from(2)
        }
    }
}

/// Output shape for `check`.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

/// `--format json|sarif` or `--format=…` anywhere after the command.
fn parse_format(args: &[String]) -> Result<Format, String> {
    let mut prev_was_format = false;
    for a in args {
        let value = if let Some(v) = a.strip_prefix("--format=") {
            Some(v)
        } else if prev_was_format {
            Some(a.as_str())
        } else {
            None
        };
        prev_was_format = a == "--format";
        match value {
            Some("json") => return Ok(Format::Json),
            Some("sarif") => return Ok(Format::Sarif),
            Some(other) => return Err(format!("unknown format `{other}` (json|sarif)")),
            None => {}
        }
    }
    if prev_was_format {
        return Err("missing value after --format (json|sarif)".to_string());
    }
    Ok(Format::Human)
}

fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    let path = root.join(ALLOWLIST);
    if !path.is_file() {
        return Ok(Allowlist::default());
    }
    let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Allowlist::parse(&text).map_err(|e| e.to_string())
}

/// One-line protocol coverage summary for the human-readable output.
fn proto_line(p: &ProtoSummary) -> String {
    if !p.message_found {
        return "proto: Message enum not found".to_string();
    }
    format!(
        "proto: Message {}/{n} encoded, {}/{n} decoded, {}/{n} handled; \
         ProtocolError {}/{} mapped; ErrorCode {}/{} constructed",
        p.encoded,
        p.decoded,
        p.handled,
        p.error_mapped,
        p.error_variants,
        p.reply_constructed,
        p.reply_variants,
        n = p.message_variants,
    )
}

/// One-line ABI summary for the human-readable output.
fn abi_line(abi: Option<&AbiSummary>) -> String {
    match abi {
        Some(a) if a.lock_present => {
            format!(
                "abi: {}/{} encodings match {LOCK_FILE}",
                a.matched, a.variants
            )
        }
        Some(_) => format!("abi: {LOCK_FILE} missing — run `abi regen`"),
        None => "abi: pass skipped".to_string(),
    }
}

/// One-line pass-timing summary for the human-readable output.
fn timings_line(t: &PassTimings) -> String {
    format!(
        "timings: lexical {}ms, parse {}ms, summary {}ms, flow {}ms, taint {}ms, \
         reach {}ms, proto {}ms, conc {}ms, lock-order {}ms, abi {}ms — total {}ms",
        t.lexical_us / 1000,
        t.parse_us / 1000,
        t.summary_us / 1000,
        t.flow_us / 1000,
        t.taint_us / 1000,
        t.reach_us / 1000,
        t.proto_us / 1000,
        t.conc_us / 1000,
        t.lock_order_us / 1000,
        t.abi_us / 1000,
        t.total_us / 1000,
    )
}

fn cmd_check(format: Format) -> ExitCode {
    let root = workspace_root();
    let allowlist = match load_allowlist(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bsa-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sources = match load_sources(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bsa-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lock = load_lock_state(&root);
    let outcome = bsa_lint::check_sources_full(&sources, &allowlist, Some(&lock));
    let (violations, proto) = (&outcome.violations, &outcome.proto);
    let rec = allow::reconcile(violations, &allowlist);

    if format != Format::Human {
        match format {
            Format::Json => print!(
                "{}",
                render_json(&Report {
                    files_checked: sources.len(),
                    violations_total: violations.len(),
                    rec: &rec,
                    allow: &allowlist,
                    proto,
                    abi: outcome.abi.as_ref(),
                    timings: &outcome.timings,
                })
            ),
            _ => print!("{}", render_sarif(violations, &rec)),
        }
        return if rec.clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for v in &rec.unallowed {
        println!("{v}");
    }
    for (entry, actual) in &rec.stale {
        println!(
            "{}: [stale-budget] allowlist grants {} × {} but only {actual} remain; \
             run `cargo run -p bsa-lint -- tighten`",
            entry.file, entry.max, entry.rule
        );
    }

    println!("{}", proto_line(proto));
    println!("{}", abi_line(outcome.abi.as_ref()));
    println!("{}", timings_line(&outcome.timings));
    let allowed = violations.len() - rec.unallowed.len();
    if rec.clean() {
        println!(
            "bsa-lint: clean — {} violations, all within the {} allowlisted budgets \
             (total budget {})",
            allowed,
            allowlist.entries.len(),
            allowlist.total_budget()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "bsa-lint: FAILED — {} non-allowlisted violation(s), {} stale budget(s)",
            rec.unallowed.len(),
            rec.stale.len()
        );
        ExitCode::FAILURE
    }
}

fn cmd_list() -> ExitCode {
    let root = workspace_root();
    let allowlist = match load_allowlist(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bsa-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check_workspace(&root, &allowlist) {
        Ok(outcome) => {
            for v in &outcome.violations {
                println!("{v}");
            }
            let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
            for v in &outcome.violations {
                *by_rule.entry(v.rule).or_default() += 1;
            }
            println!("-- {} total", outcome.violations.len());
            for (rule, n) in by_rule {
                println!("--   {rule}: {n}");
            }
            println!("-- {}", proto_line(&outcome.proto));
            println!("-- {}", abi_line(outcome.abi.as_ref()));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bsa-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_budget() -> ExitCode {
    let root = workspace_root();
    match load_allowlist(&root) {
        Ok(a) => {
            println!("{}", a.total_budget());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bsa-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `abi regen` rewrites `link.abi.lock` from HEAD's encodings; `abi show`
/// prints the same text without touching the file (for review/diffing).
fn cmd_abi(sub: Option<&str>) -> ExitCode {
    let rendered = render_lock(&canonical_entries());
    match sub {
        Some("regen") => {
            let path = workspace_root().join(LOCK_FILE);
            if let Err(e) = fs::write(&path, &rendered) {
                eprintln!("bsa-lint: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!(
                "bsa-lint: wrote {LOCK_FILE} ({} encodings); review the diff like any \
                 other wire-format change",
                canonical_entries().len()
            );
            ExitCode::SUCCESS
        }
        Some("show") => {
            print!("{rendered}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!(
                "bsa-lint: unknown abi subcommand `{}`; usage: abi <regen|show>",
                other.unwrap_or("<none>")
            );
            ExitCode::from(2)
        }
    }
}

fn cmd_tighten() -> ExitCode {
    let root = workspace_root();
    let allowlist = match load_allowlist(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bsa-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let violations = match check_workspace(&root, &allowlist) {
        Ok(outcome) => outcome.violations,
        Err(e) => {
            eprintln!("bsa-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for v in &violations {
        *counts
            .entry((v.file.clone(), v.rule.to_string()))
            .or_default() += 1;
    }
    let mut tightened = Allowlist::default();
    for entry in &allowlist.entries {
        let actual = counts
            .get(&(entry.file.clone(), entry.rule.clone()))
            .copied()
            .unwrap_or(0);
        if actual == 0 {
            println!(
                "dropping ({}, {}) — no violations remain",
                entry.file, entry.rule
            );
            continue;
        }
        if actual != entry.max {
            println!(
                "tightening ({}, {}) from {} to {actual}",
                entry.file, entry.rule, entry.max
            );
        }
        tightened.entries.push(allow::AllowEntry {
            max: actual,
            ..entry.clone()
        });
    }
    let path = root.join(ALLOWLIST);
    if let Err(e) = fs::write(&path, tightened.to_toml()) {
        eprintln!("bsa-lint: {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "bsa-lint: wrote {} ({} entries, total budget {})",
        ALLOWLIST,
        tightened.entries.len(),
        tightened.total_budget()
    );
    ExitCode::SUCCESS
}
