#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! Property-based tests for the quantity algebra.

use bsa_units::sweep::{decades, linspace, logspace};
use bsa_units::{Ampere, Coulomb, Farad, Hertz, Ohm, Seconds, Volt};
use proptest::prelude::*;

proptest! {
    /// Addition/subtraction are inverse operations.
    #[test]
    fn add_sub_inverse(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let x = Volt::new(a);
        let y = Volt::new(b);
        let back = (x + y) - y;
        prop_assert!((back - x).abs().value() <= 1e-9 * (1.0 + a.abs() + b.abs()));
    }

    /// Scalar multiplication distributes over addition.
    #[test]
    fn scalar_distributes(a in -1e3f64..1e3, b in -1e3f64..1e3, k in -1e3f64..1e3) {
        let lhs = (Ampere::new(a) + Ampere::new(b)) * k;
        let rhs = Ampere::new(a) * k + Ampere::new(b) * k;
        prop_assert!((lhs - rhs).abs().value() < 1e-6 * (1.0 + lhs.value().abs()));
    }

    /// Q = C·V then Q/C = V and Q/V = C (for nonzero values).
    #[test]
    fn charge_triangle(c_ff in 0.1f64..1e6, v in 0.001f64..100.0) {
        let c = Farad::from_femto(c_ff);
        let vv = Volt::new(v);
        let q: Coulomb = c * vv;
        prop_assert!(((q / c) - vv).abs().value() < 1e-9 * v);
        prop_assert!(((q / vv) - c).abs().value() < 1e-9 * c.value());
    }

    /// I·t = Q and the two inversions agree.
    #[test]
    fn current_time_triangle(i_na in 0.001f64..1e6, t_us in 0.001f64..1e6) {
        let i = Ampere::from_nano(i_na);
        let t = Seconds::from_micro(t_us);
        let q = i * t;
        prop_assert!(((q / i) - t).abs().value() < 1e-9 * t.value());
        prop_assert!(((q / t) - i).abs().value() < 1e-9 * i.value());
    }

    /// Frequency/period reciprocity.
    #[test]
    fn recip_involution(f in 1e-3f64..1e9) {
        let f = Hertz::new(f);
        let back = f.recip().recip();
        prop_assert!((back / f - 1.0).abs() < 1e-12);
    }

    /// Ordering agrees with raw values, and min/max bracket both operands.
    #[test]
    fn ordering_laws(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let x = Ohm::new(a);
        let y = Ohm::new(b);
        prop_assert_eq!(x < y, a < b);
        let lo = x.min(y);
        let hi = x.max(y);
        prop_assert!(lo <= x && lo <= y);
        prop_assert!(hi >= x && hi >= y);
        prop_assert!(x.clamp(lo, hi) == x);
    }

    /// linspace covers endpoints with uniform steps.
    #[test]
    fn linspace_uniform(lo in -1e3f64..1e3, span in 0.001f64..1e3, n in 2usize..100) {
        let hi = lo + span;
        let pts = linspace(lo, hi, n);
        prop_assert_eq!(pts.len(), n);
        prop_assert!((pts[0] - lo).abs() < 1e-9);
        prop_assert!((pts[n - 1] - hi).abs() < 1e-6);
        let step = (hi - lo) / (n - 1) as f64;
        for (k, w) in pts.windows(2).enumerate() {
            prop_assert!(((w[1] - w[0]) - step).abs() < 1e-9 * (1.0 + step.abs()), "at {k}");
        }
    }

    /// logspace points have a constant ratio and are monotone.
    #[test]
    fn logspace_constant_ratio(lo_exp in -12.0f64..0.0, decades_n in 0.5f64..10.0, n in 3usize..50) {
        let lo = 10f64.powf(lo_exp);
        let hi = lo * 10f64.powf(decades_n);
        let pts = logspace(lo, hi, n);
        let ratio = pts[1] / pts[0];
        for w in pts.windows(2) {
            prop_assert!((w[1] / w[0] / ratio - 1.0).abs() < 1e-9);
        }
    }

    /// decades() endpoints match the requested range.
    #[test]
    fn decades_endpoints(lo_exp in -12.0f64..-1.0, n_dec in 1usize..6, per in 1usize..10) {
        let lo = 10f64.powf(lo_exp);
        let hi = lo * 10f64.powi(n_dec as i32);
        let pts = decades(lo, hi, per);
        prop_assert!((pts[0] / lo - 1.0).abs() < 1e-9);
        prop_assert!((pts[pts.len() - 1] / hi - 1.0).abs() < 1e-9);
        prop_assert_eq!(pts.len(), n_dec * per + 1);
    }

    /// Display + FromStr round-trips within formatting precision for every
    /// quantity type exercised here.
    #[test]
    fn display_parse_roundtrip(v in 1e-13f64..1e8) {
        let i = Ampere::new(v);
        let parsed: Ampere = i.to_string().parse().unwrap();
        prop_assert!((parsed.value() / v - 1.0).abs() < 1e-3);
    }
}
