//! Experiment E-F1: the drug-screening funnel (paper Fig. 1).
//!
//! Reproduces the figure's two monotone trends — datapoints/day falling
//! and cost/datapoint rising along compounds → molecular-based →
//! cell-based → animal tests → clinical trials — and quantifies how
//! chip-parallel early stages change the funnel's wall-clock time.

use bsa_bench::{banner, sig, Table};
use bsa_screening::compound::CompoundLibrary;
use bsa_screening::pipeline::Pipeline;

fn main() {
    banner(
        "E-F1",
        "Fig. 1 (drug-screening process flow)",
        "datapoints/day decrease and costs/datapoint increase along the funnel",
    );

    let library = CompoundLibrary::generate(1_000_000, 1e-4, 2026);
    let active_pct = 100.0 * library.true_active_count() as f64 / library.len() as f64;
    println!(
        "Compound library: {} compounds, {} truly active ({active_pct:.3} %).",
        library.len(),
        library.true_active_count(),
    );
    println!();

    let report = Pipeline::classic().run(&library, 1);
    let mut t = Table::new(
        "Funnel with chip-based early stages",
        &[
            "stage",
            "datapoints/day",
            "cost/datapoint",
            "compounds in",
            "survivors",
            "true actives",
            "days",
            "stage cost",
        ],
    );
    for s in &report.stages {
        t.add_row(vec![
            s.stage.kind.name().to_string(),
            sig(s.stage.datapoints_per_day, 3),
            format!("{}", sig(s.stage.cost_per_datapoint, 3)),
            s.input_count.to_string(),
            s.survivors.to_string(),
            s.true_actives_surviving.to_string(),
            sig(s.days, 3),
            sig(s.cost, 4),
        ]);
    }
    t.print();
    println!();
    println!(
        "Totals: {:.0} days, cost {:.0}, final candidates {} ({} true hits).",
        report.total_days(),
        report.total_cost(),
        report.final_candidates.len(),
        report.true_hits()
    );

    // Monotonicity check (the figure's arrows).
    let monotone = report.stages.windows(2).all(|w| {
        w[1].stage.datapoints_per_day < w[0].stage.datapoints_per_day
            && w[1].stage.cost_per_datapoint > w[0].stage.cost_per_datapoint
    });
    println!("Fig. 1 monotonicity (datapoints/day ↓, cost/datapoint ↑): {monotone}");
    println!();

    // Ablation: remove chip parallelism from the early stages.
    let baseline = Pipeline::without_chip_parallelism().run(&library, 1);
    let mut t = Table::new(
        "Ablation: chip-parallel vs robot-serial early stages",
        &["pipeline", "molecular days", "cell days", "total days"],
    );
    for (name, r) in [("chip-parallel", &report), ("robot-serial", &baseline)] {
        t.add_row(vec![
            name.to_string(),
            sig(r.stages[0].days, 3),
            sig(r.stages[1].days, 3),
            sig(r.total_days(), 3),
        ]);
    }
    t.print();
    println!();
    println!(
        "Chip parallelism accelerates the screening-dominated phase by ×{:.1}.",
        baseline.stages[0].days / report.stages[0].days
    );
}
