//! The electrode-potential regulation loop (paper Fig. 3, left).
//!
//! "The voltage of the sensor electrode is controlled by a regulation loop
//! via an operational amplifier and a source follower transistor." The
//! op-amp compares the electrode potential against the DAC-provided
//! setpoint and drives the gate of a source-follower MOSFET whose source
//! feeds the electrode; the sensor current is then passed on to the
//! integrator. Holding the electrode potential steady across five decades
//! of current is what makes the electrochemistry well-defined.

use crate::error::CircuitError;
use crate::mosfet::{Mosfet, MosfetParams};
use crate::opamp::{OpAmp, OpAmpSpec};
use bsa_units::{Ampere, Farad, Seconds, Volt};
use serde::{Deserialize, Serialize};

/// Closed-loop electrode-potential regulator: op-amp + source follower.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegulationLoop {
    amp: OpAmp,
    follower: Mosfet,
    /// Electrode node capacitance (double layer + wiring).
    electrode_cap: Farad,
    /// Present electrode potential.
    v_electrode: Volt,
    /// Supply rail feeding the follower drain.
    vdd: Volt,
}

impl RegulationLoop {
    /// Creates a regulator with the given op-amp spec, follower device and
    /// electrode capacitance.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if any sub-block rejects its parameters.
    pub fn new(
        amp_spec: OpAmpSpec,
        follower_params: MosfetParams,
        electrode_cap: Farad,
        vdd: Volt,
    ) -> Result<Self, CircuitError> {
        if electrode_cap.value() <= 0.0 {
            return Err(CircuitError::NonPositiveParameter {
                name: "electrode capacitance",
                value: electrode_cap.value(),
            });
        }
        Ok(Self {
            amp: OpAmp::new(amp_spec)?,
            follower: Mosfet::try_new(follower_params)?,
            electrode_cap,
            v_electrode: Volt::ZERO,
            vdd,
        })
    }

    /// A regulator sized like the DNA pixel's: default op-amp, 20/1 µm
    /// follower, 500 pF electrode (the double layer dominates).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if a sub-block rejects the defaults
    /// (cannot happen for the constants here, but fallible so no panic
    /// hides behind a public constructor).
    pub fn dna_pixel_default() -> Result<Self, CircuitError> {
        Self::new(
            OpAmpSpec::default(),
            MosfetParams::n05um(20.0, 1.0),
            Farad::from_pico(500.0),
            Volt::new(5.0),
        )
    }

    /// Present electrode potential.
    pub fn electrode_voltage(&self) -> Volt {
        self.v_electrode
    }

    /// Advances the loop by `dt`: the op-amp drives the follower gate, the
    /// follower sources current into the electrode node, and the sensor
    /// (electrochemical) current `i_sensor` discharges it.
    ///
    /// Returns the current delivered by the follower during this step —
    /// in steady state it equals the sensor current, and it is what the
    /// integrator stage digitizes.
    pub fn step(&mut self, v_set: Volt, i_sensor: Ampere, dt: Seconds) -> Ampere {
        // Op-amp: non-inverting input = setpoint, inverting = electrode.
        let v_gate = self.amp.step(v_set, self.v_electrode, dt);
        // Source follower: gate at v_gate, source at electrode, drain VDD.
        let i_follower = self
            .follower
            .drain_current(v_gate, self.v_electrode, self.vdd);
        // Electrode node: follower charges, sensor current discharges.
        let net = i_follower - i_sensor;
        self.v_electrode += (net * dt) / self.electrode_cap;
        self.v_electrode = self.v_electrode.clamp(Volt::ZERO, self.vdd);
        i_follower
    }

    /// Runs the loop to steady state at the given setpoint and sensor
    /// current, returning the settled electrode potential and the residual
    /// regulation error.
    ///
    /// The follower can only source current, so the loop is started at the
    /// operating point (electrode at the setpoint, amp output at the gate
    /// bias that balances the sensor current) — the slew from power-up is
    /// handled by the chip's startup sequence, not the regulation loop.
    pub fn settle(&mut self, v_set: Volt, i_sensor: Ampere) -> (Volt, Volt) {
        self.v_electrode = v_set.clamp(Volt::ZERO, self.vdd);
        if let Some(vg) = self.follower.gate_voltage_for_current(
            i_sensor,
            self.v_electrode,
            self.vdd,
            Volt::ZERO,
            self.vdd,
        ) {
            self.amp.set_output(vg);
        }
        // Refine: 2 ms at 20 ns steps (the amp pole and the slow electrode
        // node converge jointly on the ~100 µs … 1 ms scale).
        let dt = Seconds::from_nano(20.0);
        for _ in 0..100_000 {
            self.step(v_set, i_sensor, dt);
        }
        (self.v_electrode, self.v_electrode - v_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_setpoint_at_mid_current() {
        let mut looop = RegulationLoop::dna_pixel_default().expect("defaults valid");
        let (v, err) = looop.settle(Volt::new(1.0), Ampere::from_nano(1.0));
        assert!(
            err.abs().value() < 2e-3,
            "electrode at {v}, error {err} must be < 2 mV"
        );
    }

    #[test]
    fn regulation_error_small_over_five_decades() {
        // The loop must hold the electrode potential across 1 pA … 100 nA
        // — the whole point of regulating rather than biasing openly.
        let mut worst = 0.0f64;
        for exp in [-12.0f64, -11.0, -10.0, -9.0, -8.0, -7.0] {
            let mut looop = RegulationLoop::dna_pixel_default().expect("defaults valid");
            let i = Ampere::new(10f64.powf(exp));
            let (_, err) = looop.settle(Volt::new(1.0), i);
            worst = worst.max(err.abs().value());
        }
        assert!(worst < 5e-3, "worst regulation error = {worst} V");
    }

    #[test]
    fn follower_supplies_the_sensor_current() {
        let mut looop = RegulationLoop::dna_pixel_default().expect("defaults valid");
        let i_sensor = Ampere::from_nano(10.0);
        looop.settle(Volt::new(1.0), i_sensor);
        // One more step at steady state: delivered current ≈ sensor current.
        let delivered = looop.step(Volt::new(1.0), i_sensor, Seconds::from_nano(10.0));
        let rel = (delivered.value() - i_sensor.value()).abs() / i_sensor.value();
        assert!(rel < 0.05, "delivered {delivered} vs sensor {i_sensor}");
    }

    #[test]
    fn tracks_setpoint_changes() {
        let mut looop = RegulationLoop::dna_pixel_default().expect("defaults valid");
        let (v1, _) = looop.settle(Volt::new(0.8), Ampere::from_nano(1.0));
        let (v2, _) = looop.settle(Volt::new(1.4), Ampere::from_nano(1.0));
        assert!((v1.value() - 0.8).abs() < 5e-3);
        assert!((v2.value() - 1.4).abs() < 5e-3);
    }

    #[test]
    fn rejects_bad_electrode_cap() {
        assert!(RegulationLoop::new(
            OpAmpSpec::default(),
            MosfetParams::n05um(20.0, 1.0),
            Farad::ZERO,
            Volt::new(5.0)
        )
        .is_err());
    }

    #[test]
    fn electrode_stays_within_rails() {
        let mut looop = RegulationLoop::dna_pixel_default().expect("defaults valid");
        // Absurd setpoint: the electrode saturates at the rail, not beyond.
        let (v, _) = looop.settle(Volt::new(10.0), Ampere::from_nano(1.0));
        assert!(v <= Volt::new(5.0));
    }
}
