#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! Determinism contracts for the parallel readout engine: recordings must
//! be bit-identical across runs and across worker-thread counts, because
//! every noise draw comes from a per-stream RNG seeded only by (die seed,
//! stream identity) — never from scheduling order.

use bsa_core::array::ArrayGeometry;
use bsa_core::dna_chip::{DnaChip, DnaChipConfig};
use bsa_core::neuro_chip::{NeuroChip, NeuroChipConfig, Recording};
use bsa_core::scan::{channel_stream_seed, conversion_stream_seed};
use bsa_core::ScanOptions;
use bsa_neuro::culture::{Culture, CultureConfig};
use bsa_units::{Ampere, Hertz, Meter, Seconds};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn neuro_config() -> NeuroChipConfig {
    NeuroChipConfig {
        geometry: ArrayGeometry::new(16, 16, Meter::from_micro(7.8)).unwrap(),
        frame_rate: Hertz::from_kilo(2.0),
        channels: 4,
        ..NeuroChipConfig::default()
    }
}

fn test_culture() -> Culture {
    let cfg = CultureConfig::default();
    let mut rng = SmallRng::seed_from_u64(42);
    Culture::random(&cfg, &mut rng)
}

fn record_fresh(opts: ScanOptions) -> Recording {
    let mut chip = NeuroChip::new(neuro_config()).unwrap();
    chip.record_with(&test_culture(), Seconds::ZERO, 6, opts)
}

#[test]
fn neuro_recording_is_identical_across_runs() {
    let a = record_fresh(ScanOptions::default());
    let b = record_fresh(ScanOptions::default());
    assert_eq!(a, b, "two identically seeded runs must match bit-for-bit");
}

#[test]
fn neuro_recording_is_identical_across_thread_counts() {
    let serial = record_fresh(ScanOptions::serial());
    for threads in [2, 3, 4, 8] {
        let parallel = record_fresh(ScanOptions::with_threads(threads));
        assert_eq!(
            serial, parallel,
            "recording with {threads} worker threads diverged from serial"
        );
    }
    let auto = record_fresh(ScanOptions::default());
    assert_eq!(serial, auto, "auto thread count diverged from serial");
}

#[test]
fn neuro_uncalibrated_recording_is_thread_count_independent() {
    let culture = test_culture();
    let mut a = NeuroChip::new(neuro_config()).unwrap();
    let mut b = NeuroChip::new(neuro_config()).unwrap();
    let ra = a.record_uncalibrated_with(&culture, Seconds::ZERO, 4, ScanOptions::serial());
    let rb = b.record_uncalibrated_with(&culture, Seconds::ZERO, 4, ScanOptions::with_threads(4));
    assert_eq!(ra, rb);
}

#[test]
fn dna_conversion_is_identical_across_thread_counts() {
    let currents: Vec<Ampere> = (0..128)
        .map(|k| Ampere::from_nano(1.0 + 0.05 * k as f64))
        .collect();
    let mut counts = Vec::new();
    let mut reference = Vec::new();
    for (i, threads) in [Some(1), Some(2), Some(4), None].iter().enumerate() {
        let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();
        chip.set_scan_threads(*threads);
        chip.measure_currents_into(&currents, &mut counts).unwrap();
        if i == 0 {
            reference = counts.clone();
        } else {
            assert_eq!(
                counts, reference,
                "conversion with threads={threads:?} diverged from serial"
            );
        }
    }
}

#[test]
fn dna_repeated_conversions_draw_fresh_noise_but_reproduce() {
    // Same chip, two conversions: different epochs → different noise.
    let currents: Vec<Ampere> = vec![Ampere::from_nano(5.0); 128];
    let mut chip = DnaChip::new(DnaChipConfig::default()).unwrap();
    let first = chip.measure_currents(&currents).unwrap();
    let second = chip.measure_currents(&currents).unwrap();
    assert_ne!(first, second, "conversion epochs must advance the noise");

    // A fresh chip replays the exact same epoch sequence.
    let mut replay = DnaChip::new(DnaChipConfig::default()).unwrap();
    assert_eq!(replay.measure_currents(&currents).unwrap(), first);
    assert_eq!(replay.measure_currents(&currents).unwrap(), second);
}

proptest! {
    /// Channel streams never alias for any die seed: 256 channels (16×
    /// the paper's channel count) produce 256 distinct seeds, and none
    /// collides with the raw die seed itself.
    #[test]
    fn channel_streams_do_not_alias(die_seed in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for ch in 0..256usize {
            let s = channel_stream_seed(die_seed, ch);
            prop_assert!(seen.insert(s), "channel {ch} aliased another stream");
            prop_assert_ne!(s, die_seed);
        }
    }

    /// Conversion streams stay distinct across epochs and pixels for any
    /// die seed — repeated conversions of the 16×8 array never replay a
    /// pixel's noise stream.
    #[test]
    fn conversion_streams_do_not_alias(die_seed in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..16u64 {
            for pixel in 0..128usize {
                let s = conversion_stream_seed(die_seed, epoch, pixel);
                prop_assert!(
                    seen.insert(s),
                    "epoch {epoch} pixel {pixel} aliased another stream"
                );
            }
        }
    }
}
