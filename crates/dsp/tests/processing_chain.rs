#![allow(clippy::unwrap_used)] // tests/benches unwrap idiomatically
//! The DSP modules composed as the real readout pipeline: band-pass →
//! detect → snippet → sort → score, on synthetic drifting recordings.

use bsa_dsp::filter::{BandPass, Biquad};
use bsa_dsp::snr::peak_snr;
use bsa_dsp::sorting::{extract_snippets, sort_spikes};
use bsa_dsp::spectrum::Periodogram;
use bsa_dsp::spike::{score_detections, SpikeDetector};
use bsa_units::Hertz;

/// 2 kS/s series: slow sinusoidal drift + noise + biphasic spikes.
fn synthetic_recording(spike_at: &[usize], amp: f64) -> Vec<f64> {
    let n = 4000;
    let mut state = 77u64;
    let mut series: Vec<f64> = (0..n)
        .map(|k| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.04;
            // 1 Hz drift of ±0.5 — much larger than the spikes.
            0.5 * (2.0 * std::f64::consts::PI * k as f64 / 2000.0).sin() + noise
        })
        .collect();
    for &s in spike_at {
        if s + 1 < n {
            series[s] += amp;
            series[s + 1] -= 0.4 * amp;
        }
    }
    series
}

#[test]
fn bandpass_rescues_detection_under_drift() {
    let truth: Vec<usize> = (200..3800).step_by(450).collect();
    let series = synthetic_recording(&truth, 0.25);

    // Raw detection drowns in the drift (MAD is drift-dominated).
    let raw = SpikeDetector::default().detect(&series);
    let raw_score = score_detections(&raw, &truth, 3);

    // Band-pass 20–500 Hz removes the drift, detection recovers.
    let mut bp = BandPass::new(Hertz::new(20.0), Hertz::new(500.0), Hertz::new(2000.0));
    let filtered = bp.process_slice(&series);
    let det = SpikeDetector::default().detect(&filtered);
    let score = score_detections(&det, &truth, 3);

    assert!(
        score.recall() > raw_score.recall() + 0.3,
        "filtered recall {} must beat raw {}",
        score.recall(),
        raw_score.recall()
    );
    assert!(score.recall() >= 0.85, "recall = {}", score.recall());
    assert!(
        score.precision() >= 0.85,
        "precision = {}",
        score.precision()
    );
}

#[test]
fn filtering_improves_measured_snr() {
    let truth: Vec<usize> = (300..3700).step_by(500).collect();
    let series = synthetic_recording(&truth, 0.3);
    let mut bp = BandPass::new(Hertz::new(20.0), Hertz::new(500.0), Hertz::new(2000.0));
    let filtered = bp.process_slice(&series);

    let raw_snr = peak_snr(&series, &truth).unwrap();
    let filt_snr = peak_snr(&filtered, &truth).unwrap();
    assert!(
        filt_snr > 2.0 * raw_snr,
        "filtered SNR {filt_snr} vs raw {raw_snr}"
    );
}

#[test]
fn spectrum_confirms_what_the_filter_removed() {
    let series = synthetic_recording(&[], 0.0);
    let mut hp = Biquad::highpass(Hertz::new(20.0), Hertz::new(2000.0));
    let filtered = hp.process_slice(&series);

    let before = Periodogram::compute(&series, Hertz::new(2000.0));
    let after = Periodogram::compute(&filtered[500..], Hertz::new(2000.0));
    // The 1 Hz drift dominates the raw spectrum's lowest band and is gone
    // after the high-pass.
    let low_before = before.band_power(Hertz::new(0.5), Hertz::new(5.0));
    let low_after = after.band_power(Hertz::new(0.5), Hertz::new(5.0));
    assert!(
        low_after < low_before / 100.0,
        "drift power {low_before} → {low_after}"
    );
    // Mid-band noise power is preserved within a factor of two.
    let mid_before = before.band_power(Hertz::new(100.0), Hertz::new(400.0));
    let mid_after = after.band_power(Hertz::new(100.0), Hertz::new(400.0));
    assert!((mid_after / mid_before - 1.0).abs() < 0.5);
}

#[test]
fn full_chain_detect_then_sort_two_amplitudes() {
    let big: Vec<usize> = (200..3800).step_by(700).collect();
    let small: Vec<usize> = (550..3800).step_by(700).collect();
    let mut truth: Vec<usize> = big.iter().chain(small.iter()).copied().collect();
    truth.sort_unstable();
    let mut series = synthetic_recording(&big, 0.5);
    for &s in &small {
        series[s] += 0.2;
        series[s + 1] -= 0.08;
    }

    let mut bp = BandPass::new(Hertz::new(20.0), Hertz::new(500.0), Hertz::new(2000.0));
    let filtered = bp.process_slice(&series);
    let det = SpikeDetector::default().detect(&filtered);
    let score = score_detections(&det, &truth, 3);
    assert!(score.recall() > 0.8, "recall = {}", score.recall());

    let snippets = extract_snippets(&filtered, &det, 2, 4);
    let sorted = sort_spikes(&snippets, 2);
    // The high-amplitude cluster contains (almost) only `big` events.
    let big_cluster = if sorted.centroids[0][0] > sorted.centroids[1][0] {
        0
    } else {
        1
    };
    let big_train = sorted.unit_spikes(&snippets, big_cluster);
    let hits = big
        .iter()
        .filter(|t| big_train.iter().any(|d| d.abs_diff(**t) <= 2))
        .count();
    assert!(
        hits >= big.len() - 1,
        "big unit recovered {hits}/{}",
        big.len()
    );
    let contaminants = big_train
        .iter()
        .filter(|d| small.iter().any(|t| d.abs_diff(*t) <= 2))
        .count();
    assert!(contaminants <= 1, "contamination = {contaminants}");
}
