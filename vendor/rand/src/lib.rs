//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and no crates.io cache, so
//! the workspace vendors the small slice of `rand` it actually uses:
//! [`Rng`]/[`RngCore`]/[`SeedableRng`], the [`rngs::SmallRng`] generator
//! (xoshiro256++ seeded via SplitMix64, as in upstream `rand` on 64-bit
//! targets) and [`thread_rng`]. Streams are deterministic for a given seed
//! but are not bit-compatible with upstream `rand`; nothing in this
//! workspace depends on upstream's exact streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's full output range
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn uniformly from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded draw; bias is < 2^-64, irrelevant
                // for simulation use.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level sampling interface, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Draws a value of a standard-sampleable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Bundled pseudo-random generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++ with SplitMix64
    /// seed expansion (the algorithm upstream `rand 0.8` uses for
    /// `SmallRng` on 64-bit platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A non-deterministically seeded generator, for example code that does not
/// need reproducibility. (Seeded from the system clock; this vendored
/// build has no OS entropy dependency.)
pub fn thread_rng() -> rngs::SmallRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    <rngs::SmallRng as SeedableRng>::seed_from_u64(nanos ^ 0xD15E_A5E5_0FF1_CE64)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn f64_is_unit_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let k = rng.gen_range(0..4usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
        for _ in 0..1000 {
            let k = rng.gen_range(5..=7u64);
            assert!((5..=7).contains(&k));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (hits as f64 / 10_000.0 - 0.25).abs() < 0.02,
            "hits = {hits}"
        );
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_rng<R: Rng>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = SmallRng::seed_from_u64(5);
        let a = takes_rng(&mut rng);
        let b = takes_rng(&mut &mut rng);
        assert_ne!(a, b);
    }
}
