//! Error type for circuit-model construction and simulation.

use std::error::Error;
use std::fmt;

/// Error produced when constructing or operating a circuit model with
/// invalid parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A parameter that must be strictly positive was zero or negative.
    NonPositiveParameter {
        /// Human-readable parameter name, e.g. `"channel width"`.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A parameter fell outside its allowed range.
    OutOfRange {
        /// Human-readable parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// A parameter was NaN or infinite.
    NonFinite {
        /// Human-readable parameter name.
        name: &'static str,
    },
    /// A bias solve found no operating point in the search window (e.g.
    /// the requested current exceeds what the device can conduct).
    NoOperatingPoint {
        /// What was being solved for, e.g. `"nominal gate bias"`.
        name: &'static str,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonPositiveParameter { name, value } => {
                write!(f, "{name} must be positive, got {value}")
            }
            Self::OutOfRange {
                name,
                value,
                min,
                max,
            } => write!(f, "{name} = {value} outside allowed range [{min}, {max}]"),
            Self::NonFinite { name } => write!(f, "{name} must be finite"),
            Self::NoOperatingPoint { name } => {
                write!(f, "no operating point found for {name}")
            }
        }
    }
}

impl Error for CircuitError {}

/// Validates that `value` is strictly positive and finite.
pub(crate) fn require_positive(name: &'static str, value: f64) -> Result<f64, CircuitError> {
    if !value.is_finite() {
        return Err(CircuitError::NonFinite { name });
    }
    if value <= 0.0 {
        return Err(CircuitError::NonPositiveParameter { name, value });
    }
    Ok(value)
}

/// Validates that `value` lies in `[min, max]` and is finite.
pub(crate) fn require_in_range(
    name: &'static str,
    value: f64,
    min: f64,
    max: f64,
) -> Result<f64, CircuitError> {
    if !value.is_finite() {
        return Err(CircuitError::NonFinite { name });
    }
    if value < min || value > max {
        return Err(CircuitError::OutOfRange {
            name,
            value,
            min,
            max,
        });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_check() {
        assert_eq!(require_positive("x", 1.0), Ok(1.0));
        assert!(require_positive("x", 0.0).is_err());
        assert!(require_positive("x", -1.0).is_err());
        assert!(require_positive("x", f64::NAN).is_err());
    }

    #[test]
    fn range_check() {
        assert_eq!(require_in_range("x", 0.5, 0.0, 1.0), Ok(0.5));
        assert!(require_in_range("x", 1.5, 0.0, 1.0).is_err());
        assert!(require_in_range("x", f64::INFINITY, 0.0, 1.0).is_err());
    }

    #[test]
    fn display_messages() {
        let e = CircuitError::NonPositiveParameter {
            name: "channel width",
            value: -2.0,
        };
        assert_eq!(e.to_string(), "channel width must be positive, got -2");
        let e = CircuitError::OutOfRange {
            name: "duty",
            value: 2.0,
            min: 0.0,
            max: 1.0,
        };
        assert!(e.to_string().contains("outside allowed range"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<CircuitError>();
    }
}
