// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Analog/mixed-signal circuit-simulation substrate.
//!
//! This crate provides the device- and block-level models from which the
//! biosensor chips of Thewes et al. (DATE 2005) are assembled:
//!
//! * [`mosfet`] — an EKV-style long-channel MOSFET model that is continuous
//!   from weak through strong inversion, which matters because the DNA chip's
//!   sensor currents span 1 pA … 100 nA (five decades) and the neural chip's
//!   sensor transistors operate near moderate inversion.
//! * [`mismatch`] — Pelgrom-law device mismatch and process corners; the
//!   whole point of the per-pixel calibration loops in both chips is to
//!   cancel exactly this.
//! * [`noise`] — seeded Gaussian/pink/Poisson generators plus thermal,
//!   flicker and shot spectral densities.
//! * [`passive`] — capacitors, switches with charge injection, resistors and
//!   non-ideal current sources.
//! * [`opamp`] — a single-pole op-amp with finite gain, GBW, slew and offset.
//! * [`comparator`] — offset/hysteresis/propagation-delay comparator used by
//!   the in-pixel sawtooth converter (paper Fig. 3).
//! * [`reference`] — bandgap voltage reference and current mirrors/references
//!   (the DNA chip's periphery).
//! * [`dac`] — binary-weighted DAC providing the electrochemical potentials.
//! * [`digital`] — reset-event counter and shift register backing the
//!   in-pixel A/D conversion and serial readout.
//! * [`waveform`] — uniformly sampled waveforms and the transient clock.
//!
//! # Examples
//!
//! A sensor transistor biased in moderate inversion:
//!
//! ```
//! use bsa_circuit::mosfet::{Mosfet, MosfetParams};
//! use bsa_units::Volt;
//!
//! let m = Mosfet::new(MosfetParams::n05um(10.0, 2.0));
//! let id = m.drain_current(Volt::new(1.2), Volt::new(0.0), Volt::new(2.5));
//! assert!(id.value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparator;
pub mod dac;
pub mod digital;
pub mod error;
pub mod mismatch;
pub mod mosfet;
pub mod noise;
pub mod opamp;
pub mod passive;
pub mod reference;
pub mod regulation;
pub mod waveform;

pub use error::CircuitError;
