//! Probe-panel design for microarray assays.
//!
//! A practical microarray run needs a *panel*: one probe per target
//! sequence, all usable under a single hybridization/wash condition. That
//! requires (a) melting temperatures inside a common window, so one
//! stringency discriminates every site, and (b) low cross-hybridization
//! between each probe and the other targets. This module selects such
//! probe sets from target sequences — the design step upstream of
//! [`crate::assay`].

use crate::hybridization::HybridizationModel;
use crate::sequence::DnaSequence;
use bsa_units::Kelvin;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Panel-design parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelDesign {
    /// Probe length in bases (the paper: typically 15–40).
    pub probe_length: usize,
    /// Acceptable melting-temperature window.
    pub tm_min: Kelvin,
    /// Upper edge of the window.
    pub tm_max: Kelvin,
    /// Maximum tolerated complementarity (matched bases at the best
    /// alignment) between a probe and any *other* panel target.
    pub max_cross_matches: usize,
    /// Hybridization model used for Tm evaluation.
    pub model: HybridizationModel,
}

impl Default for PanelDesign {
    /// 20-mers with Tm in 310–360 K and ≤ 13/20 cross-matches.
    fn default() -> Self {
        Self {
            probe_length: 20,
            tm_min: Kelvin::new(310.0),
            tm_max: Kelvin::new(360.0),
            max_cross_matches: 13,
            model: HybridizationModel::default(),
        }
    }
}

/// One designed probe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignedProbe {
    /// Index of the target this probe detects.
    pub target_index: usize,
    /// Offset of the probe window within the target.
    pub offset: usize,
    /// The probe sequence (reverse complement of the target window).
    pub probe: DnaSequence,
    /// Predicted melting temperature against its own target.
    pub tm: Kelvin,
    /// Worst cross-complementarity against any other target.
    pub worst_cross_matches: usize,
}

/// Error when no valid probe exists for a target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignPanelError {
    /// Index of the target that could not be covered.
    pub target_index: usize,
}

impl fmt::Display for DesignPanelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no probe window satisfies the panel constraints for target {}",
            self.target_index
        )
    }
}

impl Error for DesignPanelError {}

impl PanelDesign {
    /// Designs one probe per target.
    ///
    /// For each target, every probe-length window is scored; windows whose
    /// Tm falls in the panel window and whose cross-complementarity with
    /// every other target stays below the limit are candidates, and the
    /// candidate with the lowest cross-complementarity (ties: most central
    /// Tm) wins.
    ///
    /// # Errors
    ///
    /// Returns [`DesignPanelError`] naming the first target for which no
    /// window qualifies.
    pub fn design(&self, targets: &[DnaSequence]) -> Result<Vec<DesignedProbe>, DesignPanelError> {
        let tm_mid = 0.5 * (self.tm_min.value() + self.tm_max.value());
        let mut out = Vec::with_capacity(targets.len());
        for (ti, target) in targets.iter().enumerate() {
            let mut best: Option<DesignedProbe> = None;
            if target.len() >= self.probe_length {
                for offset in 0..=(target.len() - self.probe_length) {
                    let window = DnaSequence::new(
                        target.bases()[offset..offset + self.probe_length].to_vec(),
                    );
                    let probe = window.reverse_complement();
                    let tm = self.model.melting_temperature(&probe, target);
                    if tm < self.tm_min || tm > self.tm_max {
                        continue;
                    }
                    let worst_cross = targets
                        .iter()
                        .enumerate()
                        .filter(|(tj, _)| *tj != ti)
                        .map(|(_, other)| probe.complementary_matches(other))
                        .max()
                        .unwrap_or(0);
                    if worst_cross > self.max_cross_matches {
                        continue;
                    }
                    let candidate = DesignedProbe {
                        target_index: ti,
                        offset,
                        probe,
                        tm,
                        worst_cross_matches: worst_cross,
                    };
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            candidate.worst_cross_matches < b.worst_cross_matches
                                || (candidate.worst_cross_matches == b.worst_cross_matches
                                    && (candidate.tm.value() - tm_mid).abs()
                                        < (b.tm.value() - tm_mid).abs())
                        }
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
            }
            match best {
                Some(p) => out.push(p),
                None => return Err(DesignPanelError { target_index: ti }),
            }
        }
        Ok(out)
    }

    /// Spread of panel melting temperatures (max − min), the uniformity a
    /// shared wash condition needs.
    pub fn tm_spread(probes: &[DesignedProbe]) -> Kelvin {
        let min = probes
            .iter()
            .map(|p| p.tm.value())
            .fold(f64::INFINITY, f64::min);
        let max = probes.iter().map(|p| p.tm.value()).fold(0.0, f64::max);
        if probes.is_empty() {
            Kelvin::ZERO
        } else {
            Kelvin::new(max - min)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn random_targets(n: usize, len: usize, seed: u64) -> Vec<DnaSequence> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| DnaSequence::random(len, &mut rng)).collect()
    }

    #[test]
    fn designs_one_probe_per_target() {
        let targets = random_targets(8, 120, 1);
        let panel = PanelDesign::default().design(&targets).unwrap();
        assert_eq!(panel.len(), 8);
        for (i, p) in panel.iter().enumerate() {
            assert_eq!(p.target_index, i);
            assert_eq!(p.probe.len(), 20);
        }
    }

    #[test]
    fn probes_perfectly_match_their_own_target() {
        let targets = random_targets(5, 100, 2);
        let panel = PanelDesign::default().design(&targets).unwrap();
        for p in &panel {
            assert!(p.probe.is_perfect_match(&targets[p.target_index]));
        }
    }

    #[test]
    fn cross_hybridization_is_bounded() {
        let targets = random_targets(10, 100, 3);
        let design = PanelDesign::default();
        let panel = design.design(&targets).unwrap();
        for p in &panel {
            assert!(p.worst_cross_matches <= design.max_cross_matches);
            // Verify against the actual other targets.
            for (tj, other) in targets.iter().enumerate() {
                if tj != p.target_index {
                    assert!(p.probe.complementary_matches(other) <= design.max_cross_matches);
                }
            }
        }
    }

    #[test]
    fn tm_window_is_respected() {
        let targets = random_targets(6, 150, 4);
        let design = PanelDesign::default();
        let panel = design.design(&targets).unwrap();
        for p in &panel {
            assert!(
                p.tm >= design.tm_min && p.tm <= design.tm_max,
                "Tm = {}",
                p.tm
            );
        }
        let spread = PanelDesign::tm_spread(&panel);
        assert!(spread.value() < (design.tm_max - design.tm_min).value() + 1e-9);
    }

    #[test]
    fn identical_targets_cannot_be_separated() {
        // Two copies of the same target: any probe for one fully matches
        // the other, so the cross-hybridization constraint must fail.
        let t = random_targets(1, 100, 5).remove(0);
        let targets = vec![t.clone(), t];
        let err = PanelDesign::default().design(&targets).unwrap_err();
        assert_eq!(err.target_index, 0);
        assert!(err.to_string().contains("target 0"));
    }

    #[test]
    fn short_target_fails_cleanly() {
        let targets = vec![DnaSequence::new(vec![])];
        assert!(PanelDesign::default().design(&targets).is_err());
    }

    #[test]
    fn designed_panel_works_in_the_assay() {
        use crate::assay::{AssayConditions, SpottedSite};
        use bsa_units::Molar;

        let targets = random_targets(4, 100, 6);
        let panel = PanelDesign::default().design(&targets).unwrap();
        let cond = AssayConditions::default();

        // Each probe binds its own target strongly and the others weakly.
        for p in &panel {
            let site = SpottedSite::new(p.probe.clone());
            let own = site
                .run(&targets[p.target_index], Molar::from_nano(100.0), &cond)
                .final_coverage;
            assert!(own > 0.3, "own-target coverage = {own}");
            for (tj, other) in targets.iter().enumerate() {
                if tj != p.target_index {
                    let cross = site
                        .run(other, Molar::from_nano(100.0), &cond)
                        .final_coverage;
                    assert!(
                        cross < own / 10.0,
                        "cross-coverage {cross} vs own {own} (target {tj})"
                    );
                }
            }
        }
    }

    #[test]
    fn tm_spread_of_empty_panel_is_zero() {
        assert_eq!(PanelDesign::tm_spread(&[]), Kelvin::ZERO);
    }
}
