//! Enzyme-label turnover.
//!
//! In the redox-cycling assay the target molecules carry an enzyme label
//! (e.g. alkaline phosphatase). After hybridization and washing, a
//! substrate (p-aminophenyl phosphate) is applied; the enzyme converts it
//! to the electrochemically active product (p-aminophenol) which the
//! interdigitated electrodes oxidize/reduce. The sensor current is thus
//! proportional to the surface density of bound, labelled targets — the
//! quantity the hybridization step encodes.

use bsa_units::{Molar, Seconds, SquareMeter};
use serde::{Deserialize, Serialize};

/// Michaelis–Menten enzyme-label kinetics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnzymeLabel {
    /// Catalytic turnover number k_cat in 1/s.
    pub k_cat: f64,
    /// Michaelis constant K_M.
    pub k_m: Molar,
    /// Fraction of bound targets that actually carry an active label.
    pub labelling_efficiency: f64,
}

impl Default for EnzymeLabel {
    /// Alkaline phosphatase at room temperature: k_cat ≈ 1000/s,
    /// K_M ≈ 50 µM, 90 % labelling.
    fn default() -> Self {
        Self {
            k_cat: 1000.0,
            k_m: Molar::from_micro(50.0),
            labelling_efficiency: 0.9,
        }
    }
}

impl EnzymeLabel {
    /// Per-enzyme turnover rate (product molecules per second) at substrate
    /// concentration `s`: v = k_cat·S/(S + K_M).
    pub fn turnover_rate(&self, s: Molar) -> f64 {
        self.k_cat * s.value() / (s.value() + self.k_m.value())
    }

    /// Product generation flux in mol/s from a surface patch of area
    /// `area` carrying `site_density_per_m2` bound probe sites with
    /// fractional coverage `theta`, at substrate concentration `s`.
    pub fn product_flux_mol_per_s(
        &self,
        theta: f64,
        site_density_per_m2: f64,
        area: SquareMeter,
        s: Molar,
    ) -> f64 {
        let enzymes =
            theta.clamp(0.0, 1.0) * site_density_per_m2 * area.value() * self.labelling_efficiency;
        enzymes * self.turnover_rate(s) / bsa_units::consts::AVOGADRO
    }

    /// Product concentration accumulated in a thin diffusion layer of
    /// thickness `layer_m` above the patch after `dt` of steady turnover
    /// (well-mixed-layer approximation, no depletion).
    pub fn product_concentration_after(
        &self,
        theta: f64,
        site_density_per_m2: f64,
        area: SquareMeter,
        s: Molar,
        layer_m: f64,
        dt: Seconds,
    ) -> Molar {
        let flux = self.product_flux_mol_per_s(theta, site_density_per_m2, area, s);
        let volume_l = area.value() * layer_m * 1000.0; // m³ → L
        if volume_l <= 0.0 {
            return Molar::ZERO;
        }
        Molar::new(flux * dt.value() / volume_l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turnover_saturates_at_kcat() {
        let e = EnzymeLabel::default();
        let v_low = e.turnover_rate(Molar::from_micro(5.0));
        let v_sat = e.turnover_rate(Molar::from_milli(50.0));
        assert!(v_low < v_sat);
        assert!((v_sat - e.k_cat).abs() / e.k_cat < 0.01, "v_sat = {v_sat}");
    }

    #[test]
    fn turnover_at_km_is_half_max() {
        let e = EnzymeLabel::default();
        let v = e.turnover_rate(e.k_m);
        assert!((v - e.k_cat / 2.0).abs() < 1e-9);
    }

    #[test]
    fn flux_scales_linearly_with_coverage() {
        let e = EnzymeLabel::default();
        let area = SquareMeter::new(1e-8); // (100 µm)²
        let s = Molar::from_milli(1.0);
        let f_half = e.product_flux_mol_per_s(0.5, 3e16, area, s);
        let f_full = e.product_flux_mol_per_s(1.0, 3e16, area, s);
        assert!((f_full / f_half - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flux_magnitude_supports_nanoamp_currents() {
        // Full coverage at 3e16 sites/m² (≈ 3e12/cm²) over a (100 µm)²
        // site: flux × n·F should land in the 100 nA ballpark the paper
        // reports as the upper sensor-current limit.
        let e = EnzymeLabel::default();
        let flux =
            e.product_flux_mol_per_s(1.0, 3e16, SquareMeter::new(1e-8), Molar::from_milli(1.0));
        let i = 2.0 * bsa_units::consts::FARADAY * flux; // two-electron redox
        assert!(i > 10e-9 && i < 500e-9, "i = {i} A");
    }

    #[test]
    fn coverage_is_clamped() {
        let e = EnzymeLabel::default();
        let area = SquareMeter::new(1e-8);
        let s = Molar::from_milli(1.0);
        let f = e.product_flux_mol_per_s(7.0, 3e16, area, s);
        let f1 = e.product_flux_mol_per_s(1.0, 3e16, area, s);
        assert_eq!(f, f1);
    }

    #[test]
    fn accumulated_concentration_grows_linearly() {
        let e = EnzymeLabel::default();
        let area = SquareMeter::new(1e-8);
        let s = Molar::from_milli(1.0);
        let c1 = e.product_concentration_after(1.0, 3e16, area, s, 20e-6, Seconds::new(1.0));
        let c2 = e.product_concentration_after(1.0, 3e16, area, s, 20e-6, Seconds::new(2.0));
        assert!((c2.value() / c1.value() - 2.0).abs() < 1e-12);
        assert!(c1.value() > 0.0);
    }

    #[test]
    fn zero_layer_gives_zero_concentration() {
        let e = EnzymeLabel::default();
        let c = e.product_concentration_after(
            1.0,
            3e16,
            SquareMeter::new(1e-8),
            Molar::from_milli(1.0),
            0.0,
            Seconds::new(1.0),
        );
        assert_eq!(c, Molar::ZERO);
    }
}
