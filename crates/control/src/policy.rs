//! The recovery policy: a deterministic map from classified chip state
//! to typed actions.
//!
//! The engine is a pure function of the assessment it is shown, its own
//! bounded counters, and a seeded RNG stream (used only to draw fresh
//! chip seeds for reattachment). Two engines built with the same seed
//! and fed the same assessments emit the same actions in the same
//! order — that is what makes recovery traces replayable.

use crate::classifier::{ChipAssessment, ChipCondition};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// A typed recovery action for the controller to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Re-run auto-calibration on the chip.
    Recalibrate,
    /// Mask the given row-major pixel indices so the station
    /// interpolates over them.
    MaskPixels(Vec<u32>),
    /// Re-run the configured assay to confirm a hybridization call.
    ReRunAssay,
    /// Detach the chip and attach a replacement with the given seed.
    Reattach {
        /// Seed for the replacement chip's noise/spike RNG.
        seed: u64,
    },
}

impl Action {
    /// A short stable label for traces.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Recalibrate => "recalibrate".to_string(),
            Self::MaskPixels(pixels) => format!("mask_pixels({})", pixels.len()),
            Self::ReRunAssay => "re_run_assay".to_string(),
            Self::Reattach { .. } => "reattach".to_string(),
        }
    }
}

/// Bounds on how far the policy escalates.
#[derive(Debug, Clone, Copy)]
pub struct PolicyConfig {
    /// Most pixels the policy will mask before preferring replacement.
    pub mask_budget: usize,
    /// Recalibrations attempted before escalating drift to reattach.
    pub max_recalibrations: u32,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            mask_budget: 256,
            max_recalibrations: 2,
        }
    }
}

/// Deterministic policy engine. See the module docs for the
/// determinism contract.
#[derive(Debug)]
pub struct PolicyEngine {
    rng: SmallRng,
    config: PolicyConfig,
    recalibrations: u32,
    hybridization_reported: bool,
}

impl PolicyEngine {
    /// An engine whose reattach seeds derive from `seed`.
    #[must_use]
    pub fn new(seed: u64, config: PolicyConfig) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            config,
            recalibrations: 0,
            hybridization_reported: false,
        }
    }

    /// Resets the escalation counters (called after a reattach hands us
    /// a physically fresh chip).
    pub fn reset_escalation(&mut self) {
        self.recalibrations = 0;
        self.hybridization_reported = false;
    }

    /// Decides the next action for the assessed chip, or `None` when
    /// nothing needs doing.
    pub fn decide(&mut self, assessment: &ChipAssessment) -> Option<Action> {
        match assessment.condition {
            ChipCondition::Healthy | ChipCondition::Unobserved => None,
            ChipCondition::ChannelLoss => Some(self.reattach()),
            ChipCondition::DeadPixels => {
                if assessment.mask_candidates.is_empty() {
                    // Everything dead is already masked but the chip
                    // still reads dead: the mask is not taking effect,
                    // so replace the part.
                    Some(self.reattach())
                } else if assessment.mask_candidates.len() <= self.config.mask_budget {
                    Some(Action::MaskPixels(assessment.mask_candidates.clone()))
                } else {
                    Some(self.reattach())
                }
            }
            ChipCondition::BaselineDrift | ChipCondition::Clipping => {
                if self.recalibrations < self.config.max_recalibrations {
                    self.recalibrations += 1;
                    Some(Action::Recalibrate)
                } else {
                    Some(self.reattach())
                }
            }
            ChipCondition::HybridizationDetected => {
                if self.hybridization_reported {
                    None
                } else {
                    self.hybridization_reported = true;
                    Some(Action::ReRunAssay)
                }
            }
        }
    }

    fn reattach(&mut self) -> Action {
        Action::Reattach {
            seed: self.rng.next_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::PixelState;

    fn assessment(condition: ChipCondition) -> ChipAssessment {
        ChipAssessment {
            condition,
            effective_yield: 0.5,
            pixel_states: vec![PixelState::Healthy; 4],
            mask_candidates: vec![1, 2],
            lost_channels: Vec::new(),
        }
    }

    #[test]
    fn healthy_needs_no_action() {
        let mut p = PolicyEngine::new(1, PolicyConfig::default());
        assert_eq!(p.decide(&assessment(ChipCondition::Healthy)), None);
    }

    #[test]
    fn dead_pixels_mask_within_budget_else_reattach() {
        let mut p = PolicyEngine::new(1, PolicyConfig::default());
        assert_eq!(
            p.decide(&assessment(ChipCondition::DeadPixels)),
            Some(Action::MaskPixels(vec![1, 2]))
        );
        let mut small = PolicyEngine::new(
            1,
            PolicyConfig {
                mask_budget: 1,
                max_recalibrations: 2,
            },
        );
        assert!(matches!(
            small.decide(&assessment(ChipCondition::DeadPixels)),
            Some(Action::Reattach { .. })
        ));
    }

    #[test]
    fn drift_recalibrates_then_escalates() {
        let mut p = PolicyEngine::new(1, PolicyConfig::default());
        assert_eq!(
            p.decide(&assessment(ChipCondition::BaselineDrift)),
            Some(Action::Recalibrate)
        );
        assert_eq!(
            p.decide(&assessment(ChipCondition::BaselineDrift)),
            Some(Action::Recalibrate)
        );
        assert!(matches!(
            p.decide(&assessment(ChipCondition::BaselineDrift)),
            Some(Action::Reattach { .. })
        ));
    }

    #[test]
    fn hybridization_confirms_once() {
        let mut p = PolicyEngine::new(1, PolicyConfig::default());
        assert_eq!(
            p.decide(&assessment(ChipCondition::HybridizationDetected)),
            Some(Action::ReRunAssay)
        );
        assert_eq!(
            p.decide(&assessment(ChipCondition::HybridizationDetected)),
            None
        );
    }

    #[test]
    fn same_seed_same_reattach_seeds() {
        let mut a = PolicyEngine::new(42, PolicyConfig::default());
        let mut b = PolicyEngine::new(42, PolicyConfig::default());
        for _ in 0..4 {
            assert_eq!(
                a.decide(&assessment(ChipCondition::ChannelLoss)),
                b.decide(&assessment(ChipCondition::ChannelLoss))
            );
        }
    }
}
