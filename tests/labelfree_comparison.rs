//! Integration: the same hybridized surface read by all three detection
//! principles (labelled redox cycling, interfacial impedance, FBAR mass).

use cmos_biosensor_arrays::electrochem::assay::{AssayConditions, SpottedSite};
use cmos_biosensor_arrays::electrochem::impedance::ImpedanceSensor;
use cmos_biosensor_arrays::electrochem::mass::FbarSensor;
use cmos_biosensor_arrays::electrochem::redox::RedoxCyclingModel;
use cmos_biosensor_arrays::electrochem::sequence::DnaSequence;
use cmos_biosensor_arrays::units::{Hertz, Molar};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn hybridized_coverage(mismatches: usize, c: Molar) -> f64 {
    let mut rng = SmallRng::seed_from_u64(55);
    let probe = DnaSequence::random(20, &mut rng);
    let target = probe.reverse_complement().with_mismatches(mismatches);
    SpottedSite::new(probe)
        .run(&target, c, &AssayConditions::default())
        .final_coverage
}

#[test]
fn all_three_principles_see_the_match() {
    let theta = hybridized_coverage(0, Molar::from_nano(100.0));
    assert!(theta > 0.5, "coverage = {theta}");

    // Redox: current well above the pA background.
    let redox = RedoxCyclingModel::default();
    let i = redox.sensor_current(theta);
    assert!(i.value() > 1e-8, "redox current = {i}");

    // Impedance: capacitance drop above the detection limit.
    let imp = ImpedanceSensor::default();
    assert!(theta > imp.minimum_detectable_coverage());
    assert!(imp.relative_signal(theta) > 0.01);

    // FBAR: frequency shift above the noise floor.
    let fbar = FbarSensor::default();
    assert!(theta > fbar.minimum_detectable_coverage());
    assert!(fbar.frequency_shift(theta).value() > 3.0 * fbar.frequency_noise.value());
}

#[test]
fn only_redox_sees_trace_coverage() {
    // A weak partial hybridization (low concentration): below the
    // label-free limits, still resolvable by redox cycling.
    let theta = hybridized_coverage(0, Molar::from_pico(1.0));
    assert!(theta > 1e-4 && theta < 0.02, "trace coverage = {theta}");

    let redox = RedoxCyclingModel::default();
    let background = redox.sensor_current(0.0);
    let signal = redox.sensor_current(theta);
    assert!(
        signal.value() > 3.0 * background.value(),
        "redox must resolve θ = {theta}: {signal} vs background {background}"
    );

    let imp = ImpedanceSensor::default();
    assert!(theta < imp.minimum_detectable_coverage());
    let fbar = FbarSensor::default();
    assert!(theta < fbar.minimum_detectable_coverage());
}

#[test]
fn washed_mismatch_is_invisible_to_all() {
    let theta = hybridized_coverage(3, Molar::from_nano(100.0));
    assert!(theta < 1e-6, "3-mismatch coverage = {theta}");

    let redox = RedoxCyclingModel::default();
    let background = redox.sensor_current(0.0);
    let signal = redox.sensor_current(theta);
    assert!(signal.value() < 1.5 * background.value());

    let imp = ImpedanceSensor::default();
    assert!(imp.relative_signal(theta) < 1e-6);
}

#[test]
fn impedance_spectrum_shift_tracks_assay_coverage() {
    let theta = hybridized_coverage(0, Molar::from_nano(100.0));
    let imp = ImpedanceSensor::default();
    let f = Hertz::new(1000.0);
    let z_bare = imp.impedance_at(f, 0.0).magnitude;
    let z_hyb = imp.impedance_at(f, theta).magnitude;
    assert!(
        z_hyb > z_bare * 1.05,
        "|Z| must rise ≥5 %: {z_bare} → {z_hyb}"
    );
}

#[test]
fn detection_principles_agree_on_ordering() {
    // More coverage ⇒ more signal, for every principle.
    let redox = RedoxCyclingModel::default();
    let imp = ImpedanceSensor::default();
    let fbar = FbarSensor::default();
    let thetas = [0.01, 0.1, 0.5, 1.0];
    for w in thetas.windows(2) {
        assert!(redox.sensor_current(w[1]) > redox.sensor_current(w[0]));
        assert!(imp.relative_signal(w[1]) > imp.relative_signal(w[0]));
        assert!(fbar.frequency_shift(w[1]) > fbar.frequency_shift(w[0]));
    }
}
