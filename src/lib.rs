// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Umbrella crate for the *CMOS-Based Biosensor Arrays* reproduction.
//!
//! This crate re-exports the workspace's public API so that the examples in
//! `examples/` and integration tests in `tests/` can exercise the system the
//! way a downstream user would:
//!
//! * [`units`] — typed physical quantities (`bsa-units`).
//! * [`circuit`] — analog/mixed-signal circuit substrate (`bsa-circuit`).
//! * [`electrochem`] — DNA hybridization and redox-cycling electrochemistry
//!   (`bsa-electrochem`).
//! * [`neuro`] — neuron models and the cell–chip junction (`bsa-neuro`).
//! * [`chips`] — the paper's two chips: the 16×8 DNA microarray and the
//!   128×128 neural-recording array (`bsa-core`).
//! * [`dsp`] — readout signal processing (`bsa-dsp`).
//! * [`faults`] — deterministic defect models and fault-injection plans
//!   (`bsa-faults`).
//! * [`screening`] — the Fig. 1 drug-screening pipeline model
//!   (`bsa-screening`).
//! * [`link`] — the versioned binary wire protocol (`bsa-link`).
//! * [`store`] — the persistent append-only frame store behind the
//!   station's record & replay (`bsa-store`).
//! * [`station`] — the multi-chip TCP acquisition server and client
//!   (`bsa-station`).
//! * [`control`] — the closed-loop recovery controller that keeps a
//!   faulted instrument producing usable data (`bsa-control`).

#![forbid(unsafe_code)]

pub use bsa_circuit as circuit;
pub use bsa_control as control;
pub use bsa_core as chips;
pub use bsa_dsp as dsp;
pub use bsa_electrochem as electrochem;
pub use bsa_faults as faults;
pub use bsa_link as link;
pub use bsa_neuro as neuro;
pub use bsa_screening as screening;
pub use bsa_station as station;
pub use bsa_store as store;
pub use bsa_units as units;
