//! Compound libraries.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One compound in the library, with its (latent) ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Compound {
    /// Stable identifier.
    pub id: u64,
    /// Whether the compound is truly active against the target.
    pub active: bool,
    /// Latent potency in `[0, 1]` (0 for inactives; actives spread over
    /// `(0, 1]`): stages with imperfect sensitivity miss weak actives
    /// preferentially.
    pub potency: f64,
}

/// A synthetic compound library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompoundLibrary {
    compounds: Vec<Compound>,
}

impl CompoundLibrary {
    /// Generates `n` compounds with the given true-active rate, seeded.
    pub fn generate(n: usize, active_rate: f64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let compounds = (0..n as u64)
            .map(|id| {
                let active = rng.gen::<f64>() < active_rate;
                let potency = if active {
                    // Skew toward weak actives (square of uniform).
                    let u: f64 = rng.gen();
                    (1.0 - u * u).max(0.05)
                } else {
                    0.0
                };
                Compound {
                    id,
                    active,
                    potency,
                }
            })
            .collect();
        Self { compounds }
    }

    /// The compounds.
    pub fn compounds(&self) -> &[Compound] {
        &self.compounds
    }

    /// Library size.
    pub fn len(&self) -> usize {
        self.compounds.len()
    }

    /// `true` for an empty library.
    pub fn is_empty(&self) -> bool {
        self.compounds.is_empty()
    }

    /// Number of truly active compounds.
    pub fn true_active_count(&self) -> usize {
        self.compounds.iter().filter(|c| c.active).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_hits_requested_rate() {
        let lib = CompoundLibrary::generate(200_000, 1e-3, 1);
        let rate = lib.true_active_count() as f64 / lib.len() as f64;
        assert!((rate - 1e-3).abs() < 3e-4, "rate = {rate}");
    }

    #[test]
    fn inactives_have_zero_potency() {
        let lib = CompoundLibrary::generate(10_000, 0.01, 2);
        for c in lib.compounds() {
            if c.active {
                assert!(c.potency > 0.0 && c.potency <= 1.0);
            } else {
                assert_eq!(c.potency, 0.0);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CompoundLibrary::generate(1000, 0.01, 3);
        let b = CompoundLibrary::generate(1000, 0.01, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn ids_are_sequential() {
        let lib = CompoundLibrary::generate(5, 0.5, 4);
        let ids: Vec<u64> = lib.compounds().iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_library() {
        let lib = CompoundLibrary::generate(0, 0.1, 5);
        assert!(lib.is_empty());
        assert_eq!(lib.true_active_count(), 0);
    }
}
