//! Blocking client for the station protocol: connect, drive chips,
//! collect streams. This is the library behind the `bsa-ctl` binary and
//! the loopback tests.

use bsa_link::{
    read_message, write_message, ChipId, ChipKind, CultureSpec, DnaChipSpec, ErrorCode,
    FaultPlanSpec, Message, NeuroChipSpec, PixelCount, ProtocolError, RecordingEntry,
    StatsSnapshot, StreamPayload, TargetSpec, YieldSummary,
};
use bsa_units::Seconds;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// Transport or decode failure.
    Protocol(ProtocolError),
    /// A connect or request deadline elapsed before the station answered.
    Timeout,
    /// The station answered with an `ErrorReply`.
    Server {
        /// Error class reported by the station.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The station answered with a message the request does not expect.
    Unexpected {
        /// What the client was waiting for.
        expected: &'static str,
        /// Debug rendering of what arrived.
        got: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Protocol(err) => write!(f, "protocol failure: {err}"),
            Self::Timeout => write!(f, "request deadline elapsed"),
            Self::Server { code, message } => write!(f, "station error ({code:?}): {message}"),
            Self::Unexpected { expected, got } => {
                write!(f, "expected {expected}, station sent {got}")
            }
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Protocol(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ProtocolError> for ClientError {
    fn from(err: ProtocolError) -> Self {
        match err {
            // Socket deadlines surface as WouldBlock (unix) or TimedOut
            // (windows / connect_timeout): both mean the station missed
            // the per-request deadline, not that the protocol broke.
            ProtocolError::Io(io)
                if matches!(
                    io.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Self::Timeout
            }
            err => Self::Protocol(err),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        Self::from(ProtocolError::Io(err))
    }
}

/// Connection and per-request deadlines for a [`StationClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect deadline; `None` blocks until the OS gives up.
    pub connect_timeout: Option<Duration>,
    /// Read/write deadline per request; `None` waits forever.
    pub io_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Some(Duration::from_secs(5)),
            io_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Chip metadata returned by the attach calls.
#[derive(Debug, Clone, Copy)]
pub struct AttachedChip {
    /// Session-scoped chip handle.
    pub chip: ChipId,
    /// Which array kind was attached.
    pub kind: ChipKind,
    /// Array rows.
    pub rows: u16,
    /// Array columns.
    pub cols: u16,
}

/// Result of a remote DNA assay.
#[derive(Debug, Clone)]
pub struct AssayOutcome {
    /// Per-pixel event counts in scan order.
    pub counts: Vec<u64>,
    /// Estimated sensor currents in amperes, scan order.
    pub estimated_currents_a: Vec<f64>,
    /// Count readings received over the stream (empty unless streaming
    /// was requested).
    pub streamed: Vec<PixelCount>,
    /// Readings delivered / dropped by backpressure, when streamed.
    pub stream_accounting: Option<(u32, u32)>,
}

/// Result of a remote neuro stream.
#[derive(Debug, Clone)]
pub struct NeuroStream {
    /// Frame height in pixels.
    pub rows: u16,
    /// Frame width in pixels.
    pub cols: u16,
    /// Received frames, each `rows * cols` row-major samples, bit-exact
    /// as recorded. Dropped frames are absent (see `frames_dropped`).
    pub frames: Vec<Vec<f64>>,
    /// Frames the station delivered into the session queue.
    pub frames_sent: u32,
    /// Frames dropped by backpressure.
    pub frames_dropped: u32,
    /// Stream chunks received.
    pub chunks: u32,
}

/// Accounting for a finalised recording, from
/// [`StationClient::stop_recording`].
#[derive(Debug, Clone)]
pub struct RecordingSummary {
    /// The finalised recording's name.
    pub name: String,
    /// Frames (or DNA readings) persisted to the segment.
    pub frames_written: u64,
    /// Frames dropped by the store's bounded writer queue.
    pub frames_dropped: u64,
    /// Segment file size in bytes, index footer included.
    pub bytes_written: u64,
}

/// A replayed recording, collected by [`StationClient::replay`]. Exactly
/// one of `frames` / `readings` is populated, according to `kind`.
#[derive(Debug, Clone)]
pub struct Replayed {
    /// Which array kind the recording came from.
    pub kind: ChipKind,
    /// Frame height in pixels (neuro recordings).
    pub rows: u16,
    /// Frame width in pixels (neuro recordings).
    pub cols: u16,
    /// Replayed neuro frames, bit-exact as recorded.
    pub frames: Vec<Vec<f64>>,
    /// Replayed DNA count readings.
    pub readings: Vec<PixelCount>,
    /// Frames delivered into the session queue.
    pub frames_sent: u32,
    /// Frames dropped by backpressure during replay.
    pub frames_dropped: u32,
    /// Stream chunks received.
    pub chunks: u32,
}

/// Calibration counts returned by [`StationClient::calibrate`].
#[derive(Debug, Clone, Copy)]
pub struct CalibrationCounts {
    /// Pixels healthy after calibration.
    pub healthy: u32,
    /// Pixels out of family.
    pub out_of_family: u32,
    /// Dead pixels.
    pub dead: u32,
}

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct StationClient {
    stream: TcpStream,
}

impl StationClient {
    /// Connects and performs the `Hello`/`HelloAck` handshake with the
    /// default deadlines ([`ClientConfig::default`]), so a dead station
    /// yields [`ClientError::Timeout`] instead of blocking forever.
    ///
    /// # Errors
    ///
    /// Connection failures and handshake protocol violations.
    pub fn connect<A: ToSocketAddrs>(addr: A, identity: &str) -> Result<Self, ClientError> {
        Self::connect_with(addr, identity, &ClientConfig::default())
    }

    /// Connects with explicit deadlines. The connect deadline applies to
    /// each resolved address in turn; the I/O deadline is armed on the
    /// socket for every subsequent request.
    ///
    /// # Errors
    ///
    /// Connection failures, elapsed deadlines ([`ClientError::Timeout`])
    /// and handshake protocol violations.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        identity: &str,
        config: &ClientConfig,
    ) -> Result<Self, ClientError> {
        let stream = connect_stream(addr, config.connect_timeout)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(config.io_timeout)?;
        stream.set_write_timeout(config.io_timeout)?;
        let mut client = Self { stream };
        match client.roundtrip(&Message::Hello {
            client: identity.to_string(),
        })? {
            Message::HelloAck { .. } => Ok(client),
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// Sends one request and reads one response, mapping `ErrorReply` to
    /// [`ClientError::Server`].
    fn roundtrip(&mut self, request: &Message) -> Result<Message, ClientError> {
        write_message(&mut self.stream, request)?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> Result<Message, ClientError> {
        match read_message(&mut self.stream)? {
            Message::ErrorReply { code, message } => Err(ClientError::Server { code, message }),
            msg => Ok(msg),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures, or a reply that is not `Pong` with the token.
    pub fn ping(&mut self, token: u64) -> Result<(), ClientError> {
        match self.roundtrip(&Message::Ping { token })? {
            Message::Pong { token: t } if t == token => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Attaches a simulated DNA chip.
    ///
    /// # Errors
    ///
    /// Station-side validation failures surface as [`ClientError::Server`].
    pub fn attach_dna(&mut self, spec: &DnaChipSpec) -> Result<AttachedChip, ClientError> {
        match self.roundtrip(&Message::AttachDna(spec.clone()))? {
            Message::Attached {
                chip,
                kind,
                rows,
                cols,
            } => Ok(AttachedChip {
                chip,
                kind,
                rows,
                cols,
            }),
            other => Err(unexpected("Attached", &other)),
        }
    }

    /// Attaches a simulated neural-recording chip.
    ///
    /// # Errors
    ///
    /// Station-side validation failures surface as [`ClientError::Server`].
    pub fn attach_neuro(&mut self, spec: &NeuroChipSpec) -> Result<AttachedChip, ClientError> {
        match self.roundtrip(&Message::AttachNeuro(spec.clone()))? {
            Message::Attached {
                chip,
                kind,
                rows,
                cols,
            } => Ok(AttachedChip {
                chip,
                kind,
                rows,
                cols,
            }),
            other => Err(unexpected("Attached", &other)),
        }
    }

    /// Detaches a chip.
    ///
    /// # Errors
    ///
    /// Unknown handles surface as [`ClientError::Server`].
    pub fn detach(&mut self, chip: ChipId) -> Result<(), ClientError> {
        match self.roundtrip(&Message::Detach { chip })? {
            Message::Detached { .. } => Ok(()),
            other => Err(unexpected("Detached", &other)),
        }
    }

    /// Spots probes onto a DNA chip and sets the sample mix.
    ///
    /// # Errors
    ///
    /// Bad sequences or the wrong chip kind surface as
    /// [`ClientError::Server`].
    pub fn configure_assay(
        &mut self,
        chip: ChipId,
        probes: Vec<String>,
        targets: Vec<TargetSpec>,
    ) -> Result<(), ClientError> {
        match self.roundtrip(&Message::ConfigureAssay {
            chip,
            probes,
            targets,
        })? {
            Message::Ack => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Runs the chip's calibration loop.
    ///
    /// # Errors
    ///
    /// Unknown handles surface as [`ClientError::Server`].
    pub fn calibrate(&mut self, chip: ChipId) -> Result<CalibrationCounts, ClientError> {
        match self.roundtrip(&Message::Calibrate { chip })? {
            Message::CalibrationDone {
                healthy,
                out_of_family,
                dead,
                ..
            } => Ok(CalibrationCounts {
                healthy,
                out_of_family,
                dead,
            }),
            other => Err(unexpected("CalibrationDone", &other)),
        }
    }

    /// Applies a fault-injection plan.
    ///
    /// # Errors
    ///
    /// Plan/chip mismatches surface as [`ClientError::Server`].
    pub fn inject_faults(&mut self, chip: ChipId, plan: FaultPlanSpec) -> Result<(), ClientError> {
        match self.roundtrip(&Message::InjectFaults { chip, plan })? {
            Message::Ack => Ok(()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Masks pixels on a chip so streamed frames are repaired by
    /// neighbor interpolation. Indices are row-major; repeated calls
    /// union. Returns the total mask size after applying.
    ///
    /// # Errors
    ///
    /// Out-of-range indices / unknown handles surface as
    /// [`ClientError::Server`].
    pub fn mask_pixels(&mut self, chip: ChipId, pixels: &[u32]) -> Result<u32, ClientError> {
        match self.roundtrip(&Message::MaskPixels {
            chip,
            pixels: pixels.to_vec(),
        })? {
            Message::Masked { masked, .. } => Ok(masked),
            other => Err(unexpected("Masked", &other)),
        }
    }

    /// Fetches a chip's yield report.
    ///
    /// # Errors
    ///
    /// Unknown handles surface as [`ClientError::Server`].
    pub fn health(&mut self, chip: ChipId) -> Result<YieldSummary, ClientError> {
        match self.roundtrip(&Message::QueryHealth { chip })? {
            Message::HealthReport { report, .. } => Ok(report),
            other => Err(unexpected("HealthReport", &other)),
        }
    }

    /// Runs a DNA assay, optionally streaming per-pixel counts.
    ///
    /// # Errors
    ///
    /// Wrong chip kind / unknown handles surface as
    /// [`ClientError::Server`]; stream-protocol violations as
    /// [`ClientError::Unexpected`].
    pub fn run_assay(
        &mut self,
        chip: ChipId,
        stream_counts: bool,
    ) -> Result<AssayOutcome, ClientError> {
        write_message(
            &mut self.stream,
            &Message::RunAssay {
                chip,
                stream_counts,
            },
        )?;
        let mut streamed = Vec::new();
        let mut stream_accounting = None;
        loop {
            match self.read_reply()? {
                Message::StreamData {
                    payload: StreamPayload::DnaCounts { readings },
                    ..
                } => streamed.extend(readings),
                Message::StreamEnd {
                    frames_sent,
                    frames_dropped,
                    ..
                } => {
                    stream_accounting = Some((frames_sent, frames_dropped));
                }
                Message::AssayResult {
                    counts,
                    estimated_currents_a,
                    ..
                } => {
                    return Ok(AssayOutcome {
                        counts,
                        estimated_currents_a,
                        streamed,
                        stream_accounting,
                    });
                }
                other => return Err(unexpected("AssayResult", &other)),
            }
        }
    }

    /// Records `frames` frames from a neuro chip against the specified
    /// culture and collects the stream. `chunk_frames = 0` uses the
    /// server default.
    ///
    /// # Errors
    ///
    /// Wrong chip kind / oversized requests surface as
    /// [`ClientError::Server`]; malformed chunks as
    /// [`ClientError::Unexpected`].
    pub fn stream_neuro(
        &mut self,
        chip: ChipId,
        frames: u32,
        chunk_frames: u32,
        t0: Seconds,
        culture: &CultureSpec,
    ) -> Result<NeuroStream, ClientError> {
        write_message(
            &mut self.stream,
            &Message::StartNeuroStream {
                chip,
                frames,
                chunk_frames,
                t0_s: t0.value(),
                culture: culture.clone(),
            },
        )?;
        let mut result = NeuroStream {
            rows: 0,
            cols: 0,
            frames: Vec::new(),
            frames_sent: 0,
            frames_dropped: 0,
            chunks: 0,
        };
        loop {
            match self.read_reply()? {
                Message::StreamData {
                    payload:
                        StreamPayload::NeuroFrames {
                            rows,
                            cols,
                            samples,
                            ..
                        },
                    ..
                } => {
                    let frame_len = usize::from(rows) * usize::from(cols);
                    if frame_len == 0 || samples.len() % frame_len != 0 {
                        return Err(ClientError::Unexpected {
                            expected: "chunk of whole frames",
                            got: format!("{} samples for {rows}x{cols}", samples.len()),
                        });
                    }
                    result.rows = rows;
                    result.cols = cols;
                    result.chunks += 1;
                    for frame in samples.chunks(frame_len) {
                        result.frames.push(frame.to_vec());
                    }
                }
                Message::StreamEnd {
                    frames_sent,
                    frames_dropped,
                    ..
                } => {
                    result.frames_sent = frames_sent;
                    result.frames_dropped = frames_dropped;
                    return Ok(result);
                }
                other => return Err(unexpected("StreamData/StreamEnd", &other)),
            }
        }
    }

    /// Starts persisting a chip's streams into the station's store under
    /// `name`.
    ///
    /// # Errors
    ///
    /// A station without a store root, a duplicate name, or a bad name
    /// surface as [`ClientError::Server`] with
    /// [`ErrorCode::StoreError`].
    pub fn start_recording(&mut self, chip: ChipId, name: &str) -> Result<(), ClientError> {
        match self.roundtrip(&Message::StartRecording {
            chip,
            name: name.to_string(),
        })? {
            Message::RecordingStarted { .. } => Ok(()),
            other => Err(unexpected("RecordingStarted", &other)),
        }
    }

    /// Finalises a chip's recording and returns the persistence
    /// accounting.
    ///
    /// # Errors
    ///
    /// A chip with no active recording or a writer I/O failure surfaces
    /// as [`ClientError::Server`].
    pub fn stop_recording(&mut self, chip: ChipId) -> Result<RecordingSummary, ClientError> {
        match self.roundtrip(&Message::StopRecording { chip })? {
            Message::RecordingStopped {
                name,
                frames_written,
                frames_dropped,
                bytes_written,
                ..
            } => Ok(RecordingSummary {
                name,
                frames_written,
                frames_dropped,
                bytes_written,
            }),
            other => Err(unexpected("RecordingStopped", &other)),
        }
    }

    /// Lists the station's stored recordings, sorted by name.
    ///
    /// # Errors
    ///
    /// A station without a store root surfaces as
    /// [`ClientError::Server`].
    pub fn recordings(&mut self) -> Result<Vec<RecordingEntry>, ClientError> {
        match self.roundtrip(&Message::ListRecordings)? {
            Message::RecordingList { recordings } => Ok(recordings),
            other => Err(unexpected("RecordingList", &other)),
        }
    }

    /// Replays a stored recording and collects the stream.
    /// `chunk_frames = 0` uses the server default for the recording's
    /// kind.
    ///
    /// # Errors
    ///
    /// Unknown or corrupted recordings surface as
    /// [`ClientError::Server`]; malformed chunks as
    /// [`ClientError::Unexpected`].
    pub fn replay(&mut self, name: &str, chunk_frames: u32) -> Result<Replayed, ClientError> {
        write_message(
            &mut self.stream,
            &Message::Replay {
                name: name.to_string(),
                chunk_frames,
            },
        )?;
        let mut result = Replayed {
            kind: ChipKind::Neuro,
            rows: 0,
            cols: 0,
            frames: Vec::new(),
            readings: Vec::new(),
            frames_sent: 0,
            frames_dropped: 0,
            chunks: 0,
        };
        loop {
            match self.read_reply()? {
                Message::StreamData {
                    payload:
                        StreamPayload::NeuroFrames {
                            rows,
                            cols,
                            samples,
                            ..
                        },
                    ..
                } => {
                    let frame_len = usize::from(rows) * usize::from(cols);
                    if frame_len == 0 || samples.len() % frame_len != 0 {
                        return Err(ClientError::Unexpected {
                            expected: "chunk of whole frames",
                            got: format!("{} samples for {rows}x{cols}", samples.len()),
                        });
                    }
                    result.kind = ChipKind::Neuro;
                    result.rows = rows;
                    result.cols = cols;
                    result.chunks += 1;
                    for frame in samples.chunks(frame_len) {
                        result.frames.push(frame.to_vec());
                    }
                }
                Message::StreamData {
                    payload: StreamPayload::DnaCounts { readings },
                    ..
                } => {
                    result.kind = ChipKind::Dna;
                    result.chunks += 1;
                    result.readings.extend(readings);
                }
                Message::StreamEnd {
                    frames_sent,
                    frames_dropped,
                    ..
                } => {
                    result.frames_sent = frames_sent;
                    result.frames_dropped = frames_dropped;
                    return Ok(result);
                }
                other => return Err(unexpected("StreamData/StreamEnd", &other)),
            }
        }
    }

    /// Fetches station-wide counters.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.roundtrip(&Message::QueryStats)? {
            Message::StatsReport(stats) => Ok(stats),
            other => Err(unexpected("StatsReport", &other)),
        }
    }
}

fn unexpected(expected: &'static str, got: &Message) -> ClientError {
    ClientError::Unexpected {
        expected,
        got: format!("{got:?}"),
    }
}

/// Resolves `addr` and tries each candidate under the connect deadline.
fn connect_stream<A: ToSocketAddrs>(
    addr: A,
    timeout: Option<Duration>,
) -> Result<TcpStream, io::Error> {
    let Some(timeout) = timeout else {
        return TcpStream::connect(addr);
    };
    let mut last: Option<io::Error> = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(stream) => return Ok(stream),
            Err(err) => last = Some(err),
        }
    }
    Err(last.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "no socket addresses resolved")
    }))
}
