//! `proto.*` — wire-protocol drift detection.
//!
//! The `bsa-link` codec and the `bsa-station` session loop must agree on
//! the full `Message` vocabulary: every variant needs an encode arm, a
//! decode arm, *and* a station handler, or message 25 becomes a runtime
//! hang instead of a CI failure. Likewise every `ProtocolError` variant
//! needs a `Display` mapping in the codec crate, and every `ErrorCode`
//! (the typed reply vocabulary) must actually be constructed somewhere in
//! the station — a reply code nothing can ever send is dead protocol
//! surface.
//!
//! Detection leans on a deliberate idiom split in this workspace: the
//! codec matches its own variants as `Self::Variant` inside
//! `Message::encode_payload`/`decode_payload`, while the station — an
//! outside consumer — always writes `Message::Variant`. Coverage is
//! therefore: variant ident present in the encode/decode fn body
//! (codec side), and the qualified pair `Message::Variant` present
//! anywhere in station source (handler side).

use crate::parser::ParsedFile;
use crate::rules::{violation, Violation};
use crate::workspace::SourceFile;
use std::collections::BTreeSet;

/// Which enums and file prefixes the pass checks. Parameterized so the
/// fixtures can exercise the pass on synthetic files.
#[derive(Debug, Clone)]
pub struct ProtoConfig {
    /// Wire message enum name (`Message`).
    pub message_enum: &'static str,
    /// Files containing the codec (enum defs + encode/decode).
    pub codec_prefix: &'static str,
    /// Files containing the consumer/handler side.
    pub handler_prefix: &'static str,
    /// Decode error enum name (`ProtocolError`).
    pub error_enum: &'static str,
    /// Typed reply code enum name (`ErrorCode`).
    pub reply_enum: &'static str,
}

impl ProtoConfig {
    /// The real workspace wiring.
    pub const WORKSPACE: Self = Self {
        message_enum: "Message",
        codec_prefix: "crates/link/src/",
        handler_prefix: "crates/station/src/",
        error_enum: "ProtocolError",
        reply_enum: "ErrorCode",
    };
}

/// Counts reported by the pass, surfaced in `check` output and the JSON
/// report so "24/24 handled" is a visible assertion, not a silent pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtoSummary {
    /// `Message` enum located in the codec crate.
    pub message_found: bool,
    /// Total `Message` variants.
    pub message_variants: usize,
    /// Variants with an encode arm.
    pub encoded: usize,
    /// Variants with a decode arm.
    pub decoded: usize,
    /// Variants referenced by the station.
    pub handled: usize,
    /// `ProtocolError` enum located.
    pub error_found: bool,
    /// Total `ProtocolError` variants.
    pub error_variants: usize,
    /// Variants with a `Display`/reply mapping in the codec crate.
    pub error_mapped: usize,
    /// `ErrorCode` enum located.
    pub reply_found: bool,
    /// Total `ErrorCode` variants.
    pub reply_variants: usize,
    /// Variants the station actually constructs.
    pub reply_constructed: usize,
}

/// Runs the protocol-exhaustiveness checks. `sources` and `parsed` must be
/// index-aligned.
pub fn proto_pass(
    sources: &[SourceFile],
    parsed: &[ParsedFile],
    cfg: &ProtoConfig,
    out: &mut Vec<Violation>,
) -> ProtoSummary {
    let mut summary = ProtoSummary::default();

    // Qualified `A::B` ident pairs, per side.
    let codec_pairs = qualified_pairs(sources, cfg.codec_prefix);
    let handler_pairs = qualified_pairs(sources, cfg.handler_prefix);

    // --- Message: encode + decode + handler coverage ---------------------
    if let Some((file, e)) = find_enum(parsed, cfg.codec_prefix, cfg.message_enum) {
        summary.message_found = true;
        summary.message_variants = e.variants.len();
        let encode = fn_body_idents(
            sources,
            parsed,
            cfg.codec_prefix,
            cfg.message_enum,
            "encode_payload",
        );
        let decode = fn_body_idents(
            sources,
            parsed,
            cfg.codec_prefix,
            cfg.message_enum,
            "decode_payload",
        );
        if encode.is_none() {
            out.push(violation(
                file,
                e.line,
                "proto.exhaustive",
                format!(
                    "no `{}::encode_payload` fn found in the codec",
                    cfg.message_enum
                ),
            ));
        }
        if decode.is_none() {
            out.push(violation(
                file,
                e.line,
                "proto.exhaustive",
                format!(
                    "no `{}::decode_payload` fn found in the codec",
                    cfg.message_enum
                ),
            ));
        }
        for v in &e.variants {
            let enc = encode.as_ref().is_some_and(|s| s.contains(&v.name));
            let dec = decode.as_ref().is_some_and(|s| s.contains(&v.name));
            let handled = handler_pairs.contains(&(cfg.message_enum.to_string(), v.name.clone()));
            if enc {
                summary.encoded += 1;
            } else if encode.is_some() {
                out.push(violation(
                    file,
                    v.line,
                    "proto.exhaustive",
                    format!(
                        "`{}::{}` has no encode arm in `encode_payload`",
                        cfg.message_enum, v.name
                    ),
                ));
            }
            if dec {
                summary.decoded += 1;
            } else if decode.is_some() {
                out.push(violation(
                    file,
                    v.line,
                    "proto.exhaustive",
                    format!(
                        "`{}::{}` has no decode arm in `decode_payload`",
                        cfg.message_enum, v.name
                    ),
                ));
            }
            if handled {
                summary.handled += 1;
            } else {
                out.push(violation(
                    file,
                    v.line,
                    "proto.exhaustive",
                    format!(
                        "`{}::{}` is never referenced under {} — no session handler \
                         or response constructor",
                        cfg.message_enum, v.name, cfg.handler_prefix
                    ),
                ));
            }
        }
    }

    // --- ProtocolError: every variant needs a mapping in the codec -------
    if let Some((file, e)) = find_enum(parsed, cfg.codec_prefix, cfg.error_enum) {
        summary.error_found = true;
        summary.error_variants = e.variants.len();
        for v in &e.variants {
            // `Display`/`From` impls in the codec write `Self::Variant` or
            // `ProtocolError::Variant`; the enum definition itself emits no
            // qualified pair, so presence means a real mapping exists.
            let mapped = codec_pairs.contains(&(cfg.error_enum.to_string(), v.name.clone()))
                || codec_pairs.contains(&("Self".to_string(), v.name.clone()));
            if mapped {
                summary.error_mapped += 1;
            } else {
                out.push(violation(
                    file,
                    v.line,
                    "proto.exhaustive",
                    format!(
                        "`{}::{}` has no reply/Display mapping in the codec",
                        cfg.error_enum, v.name
                    ),
                ));
            }
        }
    }

    // --- ErrorCode: the station must be able to send every reply code ----
    if let Some((file, e)) = find_enum(parsed, cfg.codec_prefix, cfg.reply_enum) {
        summary.reply_found = true;
        summary.reply_variants = e.variants.len();
        for v in &e.variants {
            let constructed = handler_pairs.contains(&(cfg.reply_enum.to_string(), v.name.clone()));
            if constructed {
                summary.reply_constructed += 1;
            } else {
                out.push(violation(
                    file,
                    v.line,
                    "proto.error-reply",
                    format!(
                        "`{}::{}` is never constructed under {} — the station can \
                         never send this reply code",
                        cfg.reply_enum, v.name, cfg.handler_prefix
                    ),
                ));
            }
        }
    }

    summary
}

/// Finds the named enum among files under `prefix`, returning its file
/// path and item.
fn find_enum<'a>(
    parsed: &'a [ParsedFile],
    prefix: &str,
    name: &str,
) -> Option<(&'a str, &'a crate::parser::EnumItem)> {
    parsed
        .iter()
        .filter(|pf| pf.path.starts_with(prefix))
        .find_map(|pf| {
            pf.enums
                .iter()
                .find(|e| e.name == name)
                .map(|e| (pf.path.as_str(), e))
        })
}

/// The set of identifiers appearing in the body of `{qualified_on}::{name}`
/// under `prefix`, or `None` if no such fn exists.
fn fn_body_idents(
    sources: &[SourceFile],
    parsed: &[ParsedFile],
    prefix: &str,
    qualified_on: &str,
    name: &str,
) -> Option<BTreeSet<String>> {
    let want = format!("{qualified_on}::{name}");
    for (fi, pf) in parsed.iter().enumerate() {
        if !pf.path.starts_with(prefix) {
            continue;
        }
        if let Some(f) = pf.fns.iter().find(|f| f.qualified == want) {
            let body = sources
                .get(fi)
                .and_then(|s| s.tokens.get(f.body.clone()))
                .unwrap_or(&[]);
            return Some(
                body.iter()
                    .filter_map(|t| t.ident())
                    .map(str::to_string)
                    .collect(),
            );
        }
    }
    None
}

/// Collects every qualified `A::B` ident pair in token streams under
/// `prefix` (`::` lexes as two `:` puncts).
fn qualified_pairs(sources: &[SourceFile], prefix: &str) -> BTreeSet<(String, String)> {
    let mut pairs = BTreeSet::new();
    for s in sources.iter().filter(|s| s.path.starts_with(prefix)) {
        for (i, t) in s.tokens.iter().enumerate() {
            let Some(a) = t.ident() else { continue };
            let colons = matches!(s.tokens.get(i + 1), Some(t) if t.is_punct(':'))
                && matches!(s.tokens.get(i + 2), Some(t) if t.is_punct(':'));
            if !colons {
                continue;
            }
            if let Some(b) = s.tokens.get(i + 3).and_then(|t| t.ident()) {
                pairs.insert((a.to_string(), b.to_string()));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};
    use crate::parser::parse_file;

    const CFG: ProtoConfig = ProtoConfig {
        message_enum: "Message",
        codec_prefix: "crates/link/src/",
        handler_prefix: "crates/station/src/",
        error_enum: "ProtocolError",
        reply_enum: "ErrorCode",
    };

    fn run(files: &[(&str, &str)]) -> (Vec<Violation>, ProtoSummary) {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(path, src)| SourceFile {
                path: path.to_string(),
                tokens: strip_test_code(&lex(src)),
            })
            .collect();
        let parsed: Vec<ParsedFile> = sources
            .iter()
            .map(|s| parse_file(&s.path, &s.tokens))
            .collect();
        let mut out = Vec::new();
        let summary = proto_pass(&sources, &parsed, &CFG, &mut out);
        (out, summary)
    }

    const CODEC: &str = r#"
        pub enum Message { Ping, Pong, Orphan }
        pub enum ProtocolError { Io, BadMagic }
        pub enum ErrorCode { BadRequest, Internal }
        impl Message {
            pub fn encode_payload(&self) -> u8 {
                match self { Self::Ping => 1, Self::Pong => 2, Self::Orphan => 3 }
            }
            pub fn decode_payload(tag: u8) -> Result<Self, ProtocolError> {
                match tag { 1 => Ok(Self::Ping), 2 => Ok(Self::Pong), 3 => Ok(Self::Orphan),
                            _ => Err(ProtocolError::BadMagic) }
            }
        }
        impl Display for ProtocolError {
            fn fmt(&self) -> u8 { match self { Self::Io => 0, Self::BadMagic => 1 } }
        }
    "#;

    const STATION: &str = r#"
        pub fn handle(msg: Message) -> Message {
            match msg {
                Message::Ping => Message::Pong,
                other => reply(ErrorCode::BadRequest),
            }
        }
        pub fn internal() -> ErrorCode { ErrorCode::Internal }
    "#;

    #[test]
    fn fully_wired_variants_are_counted_not_flagged() {
        let (v, s) = run(&[
            ("crates/link/src/message.rs", CODEC),
            ("crates/station/src/session.rs", STATION),
        ]);
        assert!(s.message_found && s.error_found && s.reply_found);
        assert_eq!(s.message_variants, 3);
        assert_eq!((s.encoded, s.decoded), (3, 3));
        // Ping and Pong are referenced by the station; Orphan is not.
        assert_eq!(s.handled, 2);
        assert_eq!((s.error_variants, s.error_mapped), (2, 2));
        assert_eq!((s.reply_variants, s.reply_constructed), (2, 2));
        assert_eq!(v.len(), 1, "{v:#?}");
        let f = v.first().expect("one");
        assert_eq!(f.rule, "proto.exhaustive");
        assert!(f.message.contains("Orphan"), "{}", f.message);
    }

    #[test]
    fn missing_decode_arm_and_unmapped_error_are_flagged() {
        let codec = r#"
            pub enum Message { Ping, Late }
            pub enum ProtocolError { Io, Silent }
            impl Message {
                pub fn encode_payload(&self) -> u8 {
                    match self { Self::Ping => 1, Self::Late => 2 }
                }
                pub fn decode_payload(tag: u8) -> Result<Self, ProtocolError> {
                    match tag { 1 => Ok(Self::Ping), _ => Err(ProtocolError::Io) }
                }
            }
        "#;
        let station = "pub fn h() { let a = Message::Ping; let b = Message::Late; }";
        let (v, s) = run(&[
            ("crates/link/src/message.rs", codec),
            ("crates/station/src/session.rs", station),
        ]);
        assert_eq!(s.decoded, 1);
        assert_eq!(s.error_mapped, 1);
        let rules: Vec<_> = v.iter().map(|v| (v.rule, v.message.clone())).collect();
        assert_eq!(v.len(), 2, "{rules:?}");
        assert!(v
            .iter()
            .any(|f| f.message.contains("Late") && f.message.contains("decode")));
        assert!(v.iter().any(|f| f.message.contains("Silent")));
    }

    #[test]
    fn unconstructed_reply_code_is_flagged() {
        let codec = r#"
            pub enum ErrorCode { BadRequest, NeverBuilt }
        "#;
        let station = "pub fn h() -> ErrorCode { ErrorCode::BadRequest }";
        let (v, s) = run(&[
            ("crates/link/src/message.rs", codec),
            ("crates/station/src/session.rs", station),
        ]);
        assert_eq!((s.reply_variants, s.reply_constructed), (2, 1));
        assert_eq!(v.len(), 1, "{v:#?}");
        let f = v.first().expect("one");
        assert_eq!(f.rule, "proto.error-reply");
        assert!(f.message.contains("NeverBuilt"), "{}", f.message);
    }

    #[test]
    fn missing_codec_fns_are_reported_once_each() {
        let codec = "pub enum Message { Ping }";
        let station = "pub fn h() { let a = Message::Ping; }";
        let (v, s) = run(&[
            ("crates/link/src/message.rs", codec),
            ("crates/station/src/session.rs", station),
        ]);
        assert_eq!((s.encoded, s.decoded, s.handled), (0, 0, 1));
        // Two fn-missing violations; no per-variant arm violations piled on.
        assert_eq!(v.len(), 2, "{v:#?}");
        assert!(v.iter().all(|f| f.rule == "proto.exhaustive"));
    }

    #[test]
    fn absent_enums_leave_summary_unfound_without_violations() {
        let (v, s) = run(&[("crates/core/src/lib.rs", "pub fn f() {}")]);
        assert!(!s.message_found && !s.error_found && !s.reply_found);
        assert!(v.is_empty(), "{v:#?}");
    }
}
