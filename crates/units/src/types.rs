//! Concrete quantity types and their dimensional cross products.

use crate::quantity::{cross_div, cross_mul, quantity};

quantity! {
    /// Electrical potential in volts.
    ///
    /// ```
    /// use bsa_units::Volt;
    /// let vdd = Volt::new(5.0); // the 0.5 µm process of the DNA chip runs at 5 V
    /// assert_eq!(format!("{vdd}"), "5 V");
    /// ```
    Volt, "V"
}

quantity! {
    /// Electrical current in amperes.
    ///
    /// ```
    /// use bsa_units::Ampere;
    /// let i = Ampere::from_pico(1.0); // bottom of the DNA sensor range
    /// assert_eq!(format!("{i}"), "1 pA");
    /// ```
    Ampere, "A"
}

quantity! {
    /// Capacitance in farads.
    ///
    /// ```
    /// use bsa_units::Farad;
    /// let c_int = Farad::from_femto(100.0);
    /// assert_eq!(format!("{c_int}"), "100 fF");
    /// ```
    Farad, "F"
}

quantity! {
    /// Resistance in ohms.
    ///
    /// ```
    /// use bsa_units::Ohm;
    /// let r_cleft = Ohm::from_mega(1.2); // cell-chip cleft seal resistance
    /// assert_eq!(format!("{r_cleft}"), "1.2 MΩ");
    /// ```
    Ohm, "Ω"
}

quantity! {
    /// Conductance (e.g. MOSFET transconductance) in siemens.
    ///
    /// ```
    /// use bsa_units::Siemens;
    /// let gm = Siemens::from_micro(50.0);
    /// assert_eq!(format!("{gm}"), "50 µS");
    /// ```
    Siemens, "S"
}

quantity! {
    /// Frequency in hertz.
    ///
    /// ```
    /// use bsa_units::Hertz;
    /// let frame_rate = Hertz::from_kilo(2.0); // neural chip full-frame rate
    /// assert_eq!(format!("{frame_rate}"), "2 kHz");
    /// ```
    Hertz, "Hz"
}

quantity! {
    /// Time in seconds.
    ///
    /// ```
    /// use bsa_units::Seconds;
    /// let ap_width = Seconds::from_milli(1.0); // typical action-potential width
    /// assert_eq!(format!("{ap_width}"), "1 ms");
    /// ```
    Seconds, "s"
}

quantity! {
    /// Electric charge in coulombs.
    ///
    /// ```
    /// use bsa_units::Coulomb;
    /// let q = Coulomb::from_femto(100.0); // one integrator ramp worth of charge
    /// assert_eq!(format!("{q}"), "100 fC");
    /// ```
    Coulomb, "C"
}

quantity! {
    /// Thermodynamic temperature in kelvin.
    ///
    /// ```
    /// use bsa_units::Kelvin;
    /// let t = Kelvin::new(300.0);
    /// assert_eq!(format!("{t}"), "300 K");
    /// ```
    Kelvin, "K"
}

quantity! {
    /// Length in meters.
    ///
    /// ```
    /// use bsa_units::Meter;
    /// let pitch = Meter::from_micro(7.8); // neural-array pixel pitch
    /// assert_eq!(format!("{pitch}"), "7.8 µm");
    /// ```
    Meter, "m"
}

quantity! {
    /// Area in square meters.
    ///
    /// ```
    /// use bsa_units::{Meter, SquareMeter};
    /// let a: SquareMeter = Meter::from_milli(1.0) * Meter::from_milli(1.0);
    /// assert_eq!(a.value(), 1e-6); // the 1 mm × 1 mm neural sensor area
    /// ```
    SquareMeter, "m²"
}

quantity! {
    /// Amount concentration in mol/L.
    ///
    /// ```
    /// use bsa_units::Molar;
    /// let target = Molar::from_nano(100.0); // hybridization target concentration
    /// assert_eq!(format!("{target}"), "100 nM");
    /// ```
    Molar, "M"
}

// --- Dimensional cross products -------------------------------------------

// Q = I · t, and the two divisions that invert it.
cross_mul!(Ampere, Seconds, Coulomb);
cross_div!(Coulomb, Seconds, Ampere);
cross_div!(Coulomb, Ampere, Seconds);

// Q = C · V, and inversions.
cross_mul!(Farad, Volt, Coulomb);
cross_div!(Coulomb, Farad, Volt);
cross_div!(Coulomb, Volt, Farad);

// Ohm's law.
cross_mul!(Ampere, Ohm, Volt);
cross_div!(Volt, Ohm, Ampere);
cross_div!(Volt, Ampere, Ohm);

// Conductance: I = G · V.
cross_mul!(Siemens, Volt, Ampere);
cross_div!(Ampere, Volt, Siemens);
cross_div!(Ampere, Siemens, Volt);

// Geometry (same-type product written by hand: the commuted macro form
// would duplicate the impl).
impl std::ops::Mul<Meter> for Meter {
    type Output = SquareMeter;
    #[inline]
    fn mul(self, rhs: Meter) -> SquareMeter {
        SquareMeter::new(self.value() * rhs.value())
    }
}
cross_div!(SquareMeter, Meter, Meter);

impl Seconds {
    /// The reciprocal of a period is a frequency.
    ///
    /// # Examples
    ///
    /// ```
    /// use bsa_units::Seconds;
    /// assert_eq!(Seconds::from_milli(0.5).recip().value(), 2000.0);
    /// ```
    #[inline]
    pub fn recip(self) -> Hertz {
        Hertz::new(1.0 / self.0)
    }
}

impl Hertz {
    /// The reciprocal of a frequency is a period.
    ///
    /// # Examples
    ///
    /// ```
    /// use bsa_units::Hertz;
    /// assert_eq!(Hertz::from_kilo(2.0).recip().as_micro(), 500.0);
    /// ```
    #[inline]
    pub fn recip(self) -> Seconds {
        Seconds::new(1.0 / self.0)
    }
}

impl Ohm {
    /// The reciprocal of a resistance is a conductance.
    #[inline]
    pub fn recip(self) -> Siemens {
        Siemens::new(1.0 / self.0)
    }
}

impl Siemens {
    /// The reciprocal of a conductance is a resistance.
    #[inline]
    pub fn recip(self) -> Ohm {
        Ohm::new(1.0 / self.0)
    }
}

impl std::ops::Mul<Hertz> for Seconds {
    type Output = f64;
    /// Elapsed cycles: dimensionless.
    #[inline]
    fn mul(self, rhs: Hertz) -> f64 {
        self.0 * rhs.value()
    }
}

impl std::ops::Mul<Seconds> for Hertz {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.value() * rhs.0
    }
}

/// RC time constant: τ = R · C.
impl std::ops::Mul<Farad> for Ohm {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: Farad) -> Seconds {
        Seconds::new(self.value() * rhs.value())
    }
}

impl std::ops::Mul<Ohm> for Farad {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: Ohm) -> Seconds {
        Seconds::new(self.value() * rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_roundtrip() {
        let v = Volt::new(1.0);
        let r = Ohm::from_kilo(10.0);
        let i = v / r;
        assert!((i.as_micro() - 100.0).abs() < 1e-9);
        assert!(((i * r) - v).abs().value() < 1e-12);
    }

    #[test]
    fn charge_relations() {
        let c = Farad::from_femto(100.0);
        let v = Volt::new(1.0);
        let q = c * v;
        assert!((q.as_femto() - 100.0).abs() < 1e-9);
        let t = q / Ampere::from_pico(1.0);
        assert!((t.value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rc_time_constant() {
        let tau = Ohm::from_mega(1.0) * Farad::from_pico(1.0);
        assert!((tau.as_micro() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_period_inverse() {
        let f = Hertz::from_mega(4.0);
        let t = f.recip();
        assert!((t.as_nano() - 250.0).abs() < 1e-9);
        assert!((t.recip() / f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dimensionless_cycles() {
        let n = Seconds::new(2.0) * Hertz::from_kilo(1.0);
        assert_eq!(n, 2000.0);
    }

    #[test]
    fn ordering_and_clamp() {
        let a = Ampere::from_pico(1.0);
        let b = Ampere::from_nano(1.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.clamp(Ampere::ZERO, a), a);
    }

    #[test]
    fn signum_and_abs() {
        assert_eq!(Volt::new(-2.0).abs(), Volt::new(2.0));
        assert_eq!(Volt::new(-2.0).signum(), -1.0);
        assert_eq!(Volt::ZERO.signum(), 0.0);
    }

    #[test]
    fn sum_iterator() {
        let total: Ampere = (1..=4).map(|k| Ampere::from_nano(k as f64)).sum();
        assert!((total.as_nano() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_constructors_roundtrip() {
        assert!((Farad::from_femto(5.0).as_femto() - 5.0).abs() < 1e-9);
        assert!((Ampere::from_pico(3.0).as_pico() - 3.0).abs() < 1e-9);
        assert!((Volt::from_micro(7.0).as_micro() - 7.0).abs() < 1e-9);
        assert_eq!(Hertz::from_kilo(2.0).value(), 2000.0);
        assert_eq!(Hertz::from_mega(32.0).value(), 32e6);
    }

    #[test]
    fn display_uses_unit_symbols() {
        assert_eq!(format!("{}", Ohm::from_mega(1.0)), "1 MΩ");
        assert_eq!(format!("{}", Molar::from_nano(10.0)), "10 nM");
        assert_eq!(format!("{}", SquareMeter::new(1e-6)), "1 µm²");
    }

    #[test]
    fn from_str_roundtrip() {
        let i: Ampere = "2.5nA".parse().unwrap();
        assert!((i.as_nano() - 2.5).abs() < 1e-12);
        let v: Volt = "450 µV".parse().unwrap();
        assert!((v.as_micro() - 450.0).abs() < 1e-9);
    }

    #[test]
    fn geometry_products() {
        let area = Meter::from_micro(7.8) * Meter::from_micro(7.8);
        assert!((area.value() - 60.84e-12).abs() < 1e-18);
        let side = area / Meter::from_micro(7.8);
        assert!((side.as_micro() - 7.8).abs() < 1e-9);
    }
}
