//! Criterion bench for experiment E-F3 (paper Fig. 3): the in-pixel
//! current-to-frequency converter, across the five-decade current range
//! and for the detailed transient simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bsa_core::dna_chip::{DnaPixel, DnaPixelConfig};
use bsa_units::{Ampere, Seconds};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_conversion");
    group.sample_size(20);
    for (label, i) in [
        ("1pA", Ampere::from_pico(1.0)),
        ("1nA", Ampere::from_nano(1.0)),
        ("100nA", Ampere::from_nano(100.0)),
    ] {
        group.bench_with_input(BenchmarkId::new("convert", label), &i, |b, &i| {
            let mut pixel = DnaPixel::nominal(DnaPixelConfig::default());
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| {
                let r = pixel.convert(black_box(i), Seconds::new(10.0), &mut rng);
                black_box(r.count)
            });
        });
    }
    group.finish();
}

fn bench_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_transient");
    group.sample_size(10);
    group.bench_function("sawtooth_100us_at_10ns", |b| {
        let pixel = DnaPixel::nominal(DnaPixelConfig::default());
        b.iter(|| {
            let w = pixel
                .transient(
                    black_box(Ampere::from_nano(10.0)),
                    Seconds::from_micro(100.0),
                    Seconds::from_nano(10.0),
                )
                .expect("nominal pixel transient");
            black_box(w.len())
        });
    });
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    c.bench_function("f3_estimate_current", |b| {
        let pixel = DnaPixel::nominal(DnaPixelConfig::default());
        b.iter(|| black_box(pixel.estimate_current(black_box(99_900), Seconds::new(10.0))));
    });
}

criterion_group!(benches, bench_conversion, bench_transient, bench_estimate);
criterion_main!(benches);
