//! Noise generators and spectral densities.
//!
//! Detecting 1 pA sensor currents (DNA chip) and 100 µV neural signals means
//! the simulation must include the relevant noise floors:
//!
//! * **Thermal** channel noise, S_i = 4kT·γ·g_m;
//! * **Flicker (1/f)** noise, S_v = K_f / (C_ox·W·L·f), dominant at the low
//!   frequencies of electrochemical measurements;
//! * **Shot** noise of electrode currents, S_i = 2qI.
//!
//! Time-domain generation is deterministic given an [`rand::Rng`] seed:
//! Gaussian samples come from a Marsaglia polar transform and pink noise
//! from a Voss–McCartney octave-bank generator.

use bsa_units::consts::{BOLTZMANN, ELEMENTARY_CHARGE};
use bsa_units::{Ampere, Hertz, Kelvin, Seconds, Siemens};
use rand::Rng;

/// Marsaglia-polar Gaussian sampler producing `N(0, 1)` variates.
///
/// Caches the second variate of each polar pair, so consecutive calls cost
/// one `ln`/`sqrt` pair per two samples — and no trigonometry at all,
/// which matters in the readout inner loop where this sampler runs once
/// per pixel sample.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GaussianSampler {
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard-normal sample using `rng` for uniforms.
    pub fn sample<R: Rng>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Marsaglia polar: rejection-sample a point in the open unit disc
        // (w = 0 would divide by zero, w ≥ 1 would flip the ln sign), then
        // scale both coordinates into an independent Gaussian pair.
        loop {
            let x = 2.0 * rng.gen::<f64>() - 1.0;
            let y = 2.0 * rng.gen::<f64>() - 1.0;
            let w = x * x + y * y;
            if w > 0.0 && w < 1.0 {
                let s = (-2.0 * w.ln() / w).sqrt();
                self.spare = Some(y * s);
                return x * s;
            }
        }
    }
}

/// Draws a Poisson-distributed count with the given mean.
///
/// Uses Knuth's product method for small means and a Gaussian approximation
/// above 64 (where the relative error of the approximation is < 1 %).
pub fn poisson<R: Rng>(mean: f64, rng: &mut R) -> u64 {
    assert!(mean >= 0.0, "poisson mean must be non-negative");
    if mean == 0.0 {
        return 0;
    }
    if mean > 64.0 {
        let mut g = GaussianSampler::new();
        let x = mean + mean.sqrt() * g.sample(rng);
        return x.round().max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Thermal (Johnson) channel-current noise density 4kT·γ·g_m in A²/Hz.
///
/// `gamma` is the excess-noise factor (2/3 long-channel saturation).
pub fn thermal_current_density(gm: Siemens, gamma: f64, t: Kelvin) -> f64 {
    4.0 * BOLTZMANN * t.value() * gamma * gm.value()
}

/// Shot-noise current density 2qI in A²/Hz for a current crossing a barrier
/// (electrode currents, subthreshold channels).
pub fn shot_current_density(i: Ampere) -> f64 {
    2.0 * ELEMENTARY_CHARGE * i.value().abs()
}

/// Flicker-noise gate-voltage density K_f/(C_ox·W·L·f) in V²/Hz.
///
/// `kf` is the process flicker coefficient in V²·F (typ. 1e-24 for NMOS),
/// `cox_f_per_um2` the oxide capacitance per µm², `area_um2` the gate area.
///
/// # Panics
///
/// Panics if `f` is not strictly positive.
pub fn flicker_voltage_density(kf: f64, cox_f_per_um2: f64, area_um2: f64, f: Hertz) -> f64 {
    assert!(f.value() > 0.0, "flicker density needs f > 0");
    kf / (cox_f_per_um2 * area_um2 * f.value())
}

/// Converts a one-sided white density (X²/Hz) into the RMS of samples taken
/// with the given bandwidth: σ = sqrt(S · B).
pub fn white_rms(density: f64, bandwidth: Hertz) -> f64 {
    (density * bandwidth.value()).sqrt()
}

/// Streaming white-noise source with a fixed RMS per sample.
#[derive(Debug, Clone)]
pub struct WhiteNoise {
    rms: f64,
    gauss: GaussianSampler,
}

impl WhiteNoise {
    /// Creates a source whose samples have standard deviation `rms`.
    pub fn new(rms: f64) -> Self {
        Self {
            rms,
            gauss: GaussianSampler::new(),
        }
    }

    /// Creates a source for a one-sided density sampled at bandwidth `bw`.
    pub fn from_density(density: f64, bw: Hertz) -> Self {
        Self::new(white_rms(density, bw))
    }

    /// Next noise sample.
    pub fn next_sample<R: Rng>(&mut self, rng: &mut R) -> f64 {
        self.rms * self.gauss.sample(rng)
    }

    /// The configured per-sample RMS.
    pub fn rms(&self) -> f64 {
        self.rms
    }
}

/// Voss–McCartney pink-noise (1/f) generator.
///
/// Maintains `octaves` white generators updated at octave-spaced rates; the
/// sum has a power spectral density within ±0.5 dB of 1/f over the covered
/// range. Output is scaled so the per-sample RMS equals `rms`.
#[derive(Debug, Clone)]
pub struct PinkNoise {
    rows: Vec<f64>,
    counter: u64,
    rms: f64,
    gauss: GaussianSampler,
}

impl PinkNoise {
    /// Creates a generator with the given number of octaves (frequency
    /// decades covered ≈ octaves · 0.3) and per-sample RMS.
    ///
    /// # Panics
    ///
    /// Panics if `octaves == 0` or `octaves > 48`.
    pub fn new(octaves: usize, rms: f64) -> Self {
        assert!(octaves > 0 && octaves <= 48, "octaves must be in 1..=48");
        Self {
            rows: vec![0.0; octaves],
            counter: 0,
            rms,
            gauss: GaussianSampler::new(),
        }
    }

    /// Next pink-noise sample.
    pub fn next_sample<R: Rng>(&mut self, rng: &mut R) -> f64 {
        self.counter = self.counter.wrapping_add(1);
        // Row k updates every 2^k samples: trailing-zero trick. `rows` is
        // nonempty by construction (`new` asserts `octaves >= 1`), so the
        // clamp always lands on a row; `get_mut` keeps the method total
        // without relying on that invariant from here.
        let k = (self.counter.trailing_zeros() as usize).min(self.rows.len() - 1);
        if let Some(row) = self.rows.get_mut(k) {
            *row = self.gauss.sample(rng);
        }
        let sum: f64 = self.rows.iter().sum();
        // Normalize: sum of n independent N(0,1) rows has σ = sqrt(n).
        self.rms * sum / (self.rows.len() as f64).sqrt()
    }
}

/// Integrates shot noise over a counting interval: returns the actually
/// collected charge count for an ideal current `i` flowing for `dt`, as a
/// Poisson draw over elementary charges.
///
/// At the DNA chip's 1 pA lower limit, only ~6×10⁶ electrons/s arrive; over
/// a 10 ms frame that is a 2.5 σ ≈ 0.4 % counting fluctuation — visible in
/// the converter's low-current noise floor.
pub fn electrons_collected<R: Rng>(i: Ampere, dt: Seconds, rng: &mut R) -> u64 {
    let mean = (i.value().abs() * dt.value()) / ELEMENTARY_CHARGE;
    poisson(mean, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn stats(v: &[f64]) -> (f64, f64) {
        let n = v.len() as f64;
        let mean = v.iter().sum::<f64>() / n;
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut g = GaussianSampler::new();
        let v: Vec<f64> = (0..50_000).map(|_| g.sample(&mut rng)).collect();
        let (mean, sd) = stats(&v);
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((sd - 1.0).abs() < 0.02, "sd = {sd}");
    }

    #[test]
    fn gaussian_tails_are_plausible() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut g = GaussianSampler::new();
        let n = 100_000;
        let beyond_2sigma = (0..n).filter(|_| g.sample(&mut rng).abs() > 2.0).count();
        let frac = beyond_2sigma as f64 / n as f64;
        assert!((frac - 0.0455).abs() < 0.005, "frac = {frac}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = SmallRng::seed_from_u64(3);
        let v: Vec<f64> = (0..50_000).map(|_| poisson(2.5, &mut rng) as f64).collect();
        let (mean, sd) = stats(&v);
        assert!((mean - 2.5).abs() < 0.05, "mean = {mean}");
        assert!((sd - 2.5f64.sqrt()).abs() < 0.05, "sd = {sd}");
    }

    #[test]
    fn poisson_large_mean_uses_gaussian() {
        let mut rng = SmallRng::seed_from_u64(4);
        let v: Vec<f64> = (0..20_000)
            .map(|_| poisson(1000.0, &mut rng) as f64)
            .collect();
        let (mean, sd) = stats(&v);
        assert!((mean - 1000.0).abs() < 2.0);
        assert!((sd - 1000.0f64.sqrt()).abs() < 1.0);
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn densities_have_expected_magnitudes() {
        use bsa_units::consts::ROOM_TEMPERATURE;
        // gm = 100 µS, γ = 2/3: S ≈ 1.1e-24 A²/Hz.
        let s = thermal_current_density(Siemens::from_micro(100.0), 2.0 / 3.0, ROOM_TEMPERATURE);
        assert!((s - 1.104e-24).abs() / s < 0.01, "s = {s}");
        // 1 nA shot noise: 3.2e-28 A²/Hz.
        let s = shot_current_density(Ampere::from_nano(1.0));
        assert!((s - 3.204e-28).abs() / s < 0.01, "s = {s}");
    }

    #[test]
    fn flicker_rolls_off_as_one_over_f() {
        let a = flicker_voltage_density(1e-24, 2.3e-15, 10.0, Hertz::new(10.0));
        let b = flicker_voltage_density(1e-24, 2.3e-15, 10.0, Hertz::new(100.0));
        assert!((a / b - 10.0).abs() < 1e-9);
    }

    #[test]
    fn white_noise_rms_matches_spec() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut w = WhiteNoise::new(3.0);
        let v: Vec<f64> = (0..50_000).map(|_| w.next_sample(&mut rng)).collect();
        let (_, sd) = stats(&v);
        assert!((sd - 3.0).abs() < 0.05, "sd = {sd}");
    }

    #[test]
    fn pink_noise_rms_and_spectrum_slope() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut p = PinkNoise::new(16, 1.0);
        let n = 1 << 15;
        let v: Vec<f64> = (0..n).map(|_| p.next_sample(&mut rng)).collect();
        let (_, sd) = stats(&v);
        assert!((sd - 1.0).abs() < 0.15, "sd = {sd}");

        // Crude spectral check: power in consecutive octave bands of a DFT
        // should be roughly equal for 1/f noise (equal power per octave).
        let band_power = |f_lo: usize, f_hi: usize| -> f64 {
            (f_lo..f_hi)
                .map(|k| {
                    let (mut re, mut im) = (0.0, 0.0);
                    for (t, x) in v.iter().enumerate() {
                        let phi = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                        re += x * phi.cos();
                        im += x * phi.sin();
                    }
                    (re * re + im * im) / n as f64
                })
                .sum()
        };
        let p1 = band_power(8, 16);
        let p2 = band_power(64, 128);
        let ratio = p1 / p2;
        assert!(ratio > 0.4 && ratio < 2.5, "octave power ratio = {ratio}");
    }

    #[test]
    fn pink_noise_single_octave_degenerates_to_white() {
        // The minimum legal configuration: the row clamp lands on row 0
        // for every sample, so the generator reduces to scaled white
        // noise and must keep producing (regression for the row update
        // going through `get_mut`).
        let mut rng = SmallRng::seed_from_u64(9);
        let mut p = PinkNoise::new(1, 2.0);
        let v: Vec<f64> = (0..4096).map(|_| p.next_sample(&mut rng)).collect();
        let (_, sd) = stats(&v);
        assert!((sd - 2.0).abs() < 0.15, "sd = {sd}");
    }

    #[test]
    fn electron_counting_fluctuates_at_low_current() {
        let mut rng = SmallRng::seed_from_u64(8);
        let i = Ampere::from_pico(1.0);
        let dt = Seconds::from_milli(1.0);
        let mean_expected = i.value() * dt.value() / ELEMENTARY_CHARGE;
        let counts: Vec<f64> = (0..2_000)
            .map(|_| electrons_collected(i, dt, &mut rng) as f64)
            .collect();
        let (mean, sd) = stats(&counts);
        assert!((mean - mean_expected).abs() / mean_expected < 0.01);
        assert!((sd - mean_expected.sqrt()).abs() / mean_expected.sqrt() < 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let mut wa = WhiteNoise::new(1.0);
        let mut wb = WhiteNoise::new(1.0);
        for _ in 0..100 {
            assert_eq!(wa.next_sample(&mut a), wb.next_sample(&mut b));
        }
    }
}
