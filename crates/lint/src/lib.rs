// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! `bsa-lint` — workspace-wide invariant checker.
//!
//! Enforces three rule families over the biosensor-array crates, mirroring
//! the guarantees the chips enforce in circuitry (DESIGN.md §9):
//!
//! 1. **Determinism** (`det.*`) — no wall-clock, unseeded RNG, hash-order
//!    iteration or thread-order float reductions in the scan and DSP
//!    paths, protecting the bit-identical-across-thread-counts replay
//!    guarantee.
//! 2. **Panic-freedom** (`panic.*`) — no `unwrap`/`expect`/panicking
//!    macros/direct indexing in non-test library code; justified
//!    exceptions live in `lint.allow.toml`, whose budgets are exact and
//!    can only shrink.
//! 3. **Unit-safety** (`units.raw-f64`) — public functions take
//!    `bsa-units` newtypes (`Hertz`, `Volt`, `Ampere`, `Seconds`) rather
//!    than raw `f64` for dimensioned scalars, so a pA-vs-nA or Hz-vs-rad
//!    mixup fails to compile instead of silently corrupting a readout.
//!
//! On top of the lexical passes sit the *semantic* families that need
//! the whole workspace at once (DESIGN.md §11): a lightweight parser
//! ([`parser`]) extracts fns, impls, enums and call sites; a cross-crate
//! call graph then powers `reach.panic` (transitive panic reachability
//! behind public APIs, [`reach`]), `proto.*` (wire-protocol
//! encode/decode/handler exhaustiveness, [`proto`]) and `conc.*`
//! (atomic read-modify-write and lock discipline in the station,
//! [`conc`]).
//!
//! The third layer is *dataflow* (DESIGN.md §14): an intraprocedural
//! interval prover and unit inferencer ([`flow`]) that discharge proven
//! `panic.indexing` sites and flag definite range/dimension bugs
//! (`flow.range`, `flow.unit`); a global lock/channel acquisition-order
//! cycle detector over the serving crates ([`locks`],
//! `conc.lock-order`); and a golden wire-ABI lock ([`abi`],
//! `proto.abi`) that fingerprints every canonical `Message` encoding
//! into the committed `link.abi.lock`.
//!
//! The fourth layer is *interprocedural* (DESIGN.md §16): bottom-up
//! function summaries ([`summary`]) lift the interval prover across call
//! boundaries (`flow.summary`, plus contracts the prover consumes), and
//! a taint analysis over the wire trust boundary ([`taint`]) proves that
//! no peer- or segment-controlled value reaches an allocation, index or
//! loop bound without a recognized validation idiom (`taint.wire-alloc`,
//! `taint.wire-index`, `taint.wire-arith`).
//!
//! Run it as `cargo run -p bsa-lint -- check` (add `--format json` for
//! the CI artifact). The analyzer is dependency-free: it lexes Rust
//! itself ([`lexer`]) instead of pulling in `syn`, so it keeps working in
//! a bare offline checkout.

pub mod abi;
pub mod allow;
pub mod conc;
pub mod flow;
pub mod lexer;
pub mod locks;
pub mod parser;
pub mod proto;
pub mod reach;
pub mod report;
pub mod rules;
pub mod summary;
pub mod taint;
pub mod workspace;

pub use abi::{
    abi_pass, canonical_entries, parse_lock, render_lock, AbiEntry, AbiSummary, LockState,
    LOCK_FILE,
};
pub use allow::{reconcile, AllowEntry, Allowlist, Reconciliation};
pub use conc::{conc_pass, STATION_PREFIX};
pub use flow::{flow_pass, FileProofs};
pub use locks::lock_order_pass;
pub use parser::{parse_file, ParsedFile};
pub use proto::{proto_pass, ProtoConfig, ProtoSummary};
pub use reach::{reach_pass, ProvenLines};
pub use report::{render_json, render_sarif, Report};
pub use rules::{rule_description, run_rules, RuleSet, Violation, RULE_IDS};
pub use summary::{compute_summaries, summary_pass, RetContract, Summaries};
pub use taint::taint_pass;
pub use workspace::{
    check_file, check_sources, check_sources_full, check_workspace, collect_files, load_lock_state,
    load_sources, rules_for, workspace_root, CheckOutcome, PassTimings, SourceFile,
};
