//! Seeded wire-protocol drift (semantic lint fixture — lexed and parsed,
//! never compiled). Mirrors the workspace idiom the pass keys on: the
//! codec half matches its own variants as `Self::…`, while the station
//! half at the bottom — an outside consumer — writes `Message::…`.

pub enum Message {
    Ping,
    Pong,
    Halfwire, //~ proto.exhaustive
    Ghost, //~ proto.exhaustive
}

pub enum ProtocolError {
    Io,
    Silent, //~ proto.exhaustive
}

pub enum ErrorCode {
    Busy,
    Unsent, //~ proto.error-reply
}

impl Message {
    pub fn encode_payload(&self) -> u8 {
        match self {
            Self::Ping => 1,
            Self::Pong => 2,
            Self::Halfwire => 3,
            Self::Ghost => 4,
        }
    }

    /// `Halfwire` is deliberately missing: encoded and handled but not
    /// decodable — the drift the rule exists to catch.
    pub fn decode_payload(tag: u8) -> Result<Self, ProtocolError> {
        match tag {
            1 => Ok(Self::Ping),
            2 => Ok(Self::Pong),
            4 => Ok(Self::Ghost),
            _ => Err(ProtocolError::Io),
        }
    }
}

impl Display for ProtocolError {
    fn fmt(&self, f: &mut Formatter) -> Result {
        match self {
            Self::Io => write!(f, "io"),
            // `Self::Silent` has no mapping — seeded violation above.
        }
    }
}

// ---- station half: the consumer side, fully qualified ------------------
// `Ghost` is deliberately never referenced here (encoded and decoded but
// unhandled), and `ErrorCode::Unsent` is never constructed.

pub fn handle(msg: Message) -> Message {
    match msg {
        Message::Ping => Message::Pong,
        Message::Halfwire => refuse(ErrorCode::Busy),
        other => refuse(ErrorCode::Busy),
    }
}
