//! Run the paper's Fig. 1 drug-screening funnel with chip-backed early
//! stages and compare against a conventional robot-serial pipeline.
//!
//! ```bash
//! cargo run --release --example drug_screening
//! ```

use cmos_biosensor_arrays::screening::compound::CompoundLibrary;
use cmos_biosensor_arrays::screening::pipeline::Pipeline;

fn main() {
    let library = CompoundLibrary::generate(500_000, 2e-4, 7);
    println!(
        "Library: {} compounds, {} truly active.",
        library.len(),
        library.true_active_count()
    );
    println!();

    for (name, pipeline) in [
        ("chip-parallel", Pipeline::classic()),
        ("robot-serial ", Pipeline::without_chip_parallelism()),
    ] {
        let report = pipeline.run(&library, 99);
        println!("pipeline: {name}");
        println!("  stage             in        out   true-actives   days      cost");
        for s in &report.stages {
            println!(
                "  {:<16} {:>8}  {:>8}  {:>12}  {:>6.1}  {:>9.0}",
                s.stage.kind.name(),
                s.input_count,
                s.survivors,
                s.true_actives_surviving,
                s.days,
                s.cost
            );
        }
        println!(
            "  → {} candidates ({} true hits), {:.0} days, total cost {:.0}",
            report.final_candidates.len(),
            report.true_hits(),
            report.total_days(),
            report.total_cost()
        );
        println!();
    }
}
