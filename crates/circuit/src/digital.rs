//! Small digital blocks: the in-pixel reset-pulse counter and the shift
//! registers behind the serial readout ("the number of reset pulses is
//! counted with a digital counter within a given time frame", paper §2).

use serde::{Deserialize, Serialize};

/// Saturating event counter of configurable width.
///
/// The DNA pixel counts comparator reset pulses; the count within the
/// measurement frame is the digitized sensor current. Hardware counters
/// have finite width, so the model saturates (and reports it) rather than
/// wrapping, matching the chip's overflow flag.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounter {
    bits: u8,
    count: u64,
    overflowed: bool,
}

impl EventCounter {
    /// Creates a counter with `bits` width (1..=64).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 64.
    pub fn new(bits: u8) -> Self {
        assert!((1..=64).contains(&bits), "counter width must be 1..=64");
        Self {
            bits,
            count: 0,
            overflowed: false,
        }
    }

    /// Maximum representable count, 2^bits − 1.
    pub fn max_count(&self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// Registers one event; saturates at the maximum count.
    pub fn tick(&mut self) {
        if self.count >= self.max_count() {
            self.overflowed = true;
        } else {
            self.count += 1;
        }
    }

    /// Present count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if an event arrived while the counter was saturated.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Counter width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Resets the count and overflow flag, returning the final count.
    pub fn reset(&mut self) -> u64 {
        let c = self.count;
        self.count = 0;
        self.overflowed = false;
        c
    }
}

/// Parallel-in/serial-out shift register used by the array readout.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ShiftRegister {
    bits: Vec<bool>,
}

impl ShiftRegister {
    /// Creates an empty register.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a word MSB-first into the register (appending after any bits
    /// still pending).
    pub fn load_word(&mut self, word: u64, width: u8) {
        assert!((1..=64).contains(&width), "word width must be 1..=64");
        for k in (0..width).rev() {
            self.bits.push(word & (1 << k) != 0);
        }
    }

    /// Shifts one bit out, if any remain.
    pub fn shift_out(&mut self) -> Option<bool> {
        if self.bits.is_empty() {
            None
        } else {
            Some(self.bits.remove(0))
        }
    }

    /// Number of bits still pending.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` if no bits are pending.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Drains all pending bits as a vector.
    pub fn drain_all(&mut self) -> Vec<bool> {
        std::mem::take(&mut self.bits)
    }
}

/// Reassembles words from a serial bit stream (the receiving side of the
/// chip's data-out pin).
#[derive(Debug, Clone, Default)]
pub struct Deserializer {
    acc: u64,
    nbits: u8,
}

impl Deserializer {
    /// Creates an empty deserializer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes one bit (MSB-first); returns a completed word once `width`
    /// bits have accumulated.
    pub fn push(&mut self, bit: bool, width: u8) -> Option<u64> {
        assert!((1..=64).contains(&width), "word width must be 1..=64");
        self.acc = (self.acc << 1) | bit as u64;
        self.nbits += 1;
        if self.nbits == width {
            let w = self.acc;
            self.acc = 0;
            self.nbits = 0;
            Some(w)
        } else {
            None
        }
    }

    /// Bits currently accumulated toward the next word.
    pub fn pending_bits(&self) -> u8 {
        self.nbits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_resets() {
        let mut c = EventCounter::new(16);
        for _ in 0..100 {
            c.tick();
        }
        assert_eq!(c.count(), 100);
        assert_eq!(c.reset(), 100);
        assert_eq!(c.count(), 0);
    }

    #[test]
    fn counter_saturates_without_wrap() {
        let mut c = EventCounter::new(4);
        for _ in 0..100 {
            c.tick();
        }
        assert_eq!(c.count(), 15);
        assert!(c.overflowed());
        c.reset();
        assert!(!c.overflowed());
    }

    #[test]
    fn counter_full_width() {
        let c = EventCounter::new(64);
        assert_eq!(c.max_count(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn counter_rejects_zero_width() {
        EventCounter::new(0);
    }

    #[test]
    fn shift_register_round_trip() {
        let mut sr = ShiftRegister::new();
        sr.load_word(0b1011_0010, 8);
        let mut de = Deserializer::new();
        let mut out = None;
        while let Some(bit) = sr.shift_out() {
            out = de.push(bit, 8).or(out);
        }
        assert_eq!(out, Some(0b1011_0010));
        assert!(sr.is_empty());
    }

    #[test]
    fn shift_register_multiple_words_preserve_order() {
        let mut sr = ShiftRegister::new();
        sr.load_word(0xAB, 8);
        sr.load_word(0xCD, 8);
        assert_eq!(sr.len(), 16);
        let mut de = Deserializer::new();
        let mut words = Vec::new();
        while let Some(bit) = sr.shift_out() {
            if let Some(w) = de.push(bit, 8) {
                words.push(w);
            }
        }
        assert_eq!(words, vec![0xAB, 0xCD]);
    }

    #[test]
    fn deserializer_partial_word_pending() {
        let mut de = Deserializer::new();
        assert_eq!(de.push(true, 3), None);
        assert_eq!(de.pending_bits(), 1);
        assert_eq!(de.push(false, 3), None);
        assert_eq!(de.push(true, 3), Some(0b101));
        assert_eq!(de.pending_bits(), 0);
    }

    #[test]
    fn wide_words_survive_round_trip() {
        let mut sr = ShiftRegister::new();
        let word = 0xDEAD_BEEF_CAFE_F00Du64;
        sr.load_word(word, 64);
        let mut de = Deserializer::new();
        let mut out = None;
        while let Some(bit) = sr.shift_out() {
            out = de.push(bit, 64).or(out);
        }
        assert_eq!(out, Some(word));
    }
}
