//! Workspace discovery: which files to scan and which rule families apply.
//!
//! Scope policy (see DESIGN.md §9):
//!
//! * **determinism** (`det.*`) — `crates/core/src`, `crates/dsp/src`,
//!   `crates/link/src` and `crates/control/src`: the scan/readout and
//!   signal-processing paths whose bit-identical replay PR 2
//!   guarantees, the wire codec (a codec that consulted clocks or
//!   random state could not be a pure function of its bytes), and the
//!   recovery controller, whose action traces must replay
//!   bit-identically from a scenario seed (DESIGN.md §12).
//!   `crates/station` is deliberately *not* in `det.*` scope: it is
//!   the serving layer, where wall-clock time is legitimate (session
//!   read timeouts, socket lifecycle) — the determinism boundary sits
//!   at the chip API it calls into (see DESIGN.md §10).
//! * **panic-freedom** (`panic.*`) — every library crate's `src/`,
//!   including this one. `crates/bench` is excluded: it is a binary
//!   harness where `unwrap` on startup is idiomatic.
//! * **unit-safety** (`units.raw-f64`) — every library crate except
//!   `crates/units` (which defines the newtypes in terms of raw `f64`)
//!   and this crate (which has no physical API surface).

use crate::abi::{abi_pass, canonical_entries, AbiSummary, LockState, LOCK_FILE};
use crate::allow::Allowlist;
use crate::conc::{conc_pass, CONTROL_PREFIX, STATION_PREFIX, STORE_PREFIX};
use crate::flow::flow_pass;
use crate::lexer::{lex, strip_test_code, Token};
use crate::locks::lock_order_pass;
use crate::parser::{parse_file, ParsedFile};
use crate::proto::{proto_pass, ProtoConfig, ProtoSummary};
use crate::reach::{reach_pass, ProvenLines};
use crate::rules::{run_rules, RuleSet, Violation};
use crate::summary::{compute_summaries, summary_pass};
use crate::taint::taint_pass;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Returns the workspace root, resolved from this crate's manifest so the
/// binary works regardless of the invoker's working directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .components()
        .collect()
}

/// Decides which rule families apply to a workspace-relative path.
pub fn rules_for(rel_path: &str) -> RuleSet {
    if !rel_path.ends_with(".rs") {
        return RuleSet::NONE;
    }
    // Binary bench harness: out of scope entirely.
    if rel_path.starts_with("crates/bench/") {
        return RuleSet::NONE;
    }
    let in_crate_src = |krate: &str| rel_path.starts_with(&format!("crates/{krate}/src/"));
    let lib_src = (rel_path.starts_with("crates/") && rel_path.contains("/src/"))
        || rel_path.starts_with("src/");
    if !lib_src {
        return RuleSet::NONE;
    }
    RuleSet {
        determinism: in_crate_src("core")
            || in_crate_src("dsp")
            || in_crate_src("link")
            || in_crate_src("control"),
        panic_freedom: true,
        unit_safety: !in_crate_src("units") && !in_crate_src("lint"),
    }
}

/// Collects every in-scope `.rs` file under the workspace root, as
/// workspace-relative forward-slash paths, sorted for stable output.
pub fn collect_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let krate = entry?.path();
        if krate.is_dir() {
            walk(&krate.join("src"), root, &mut files)?;
        }
    }
    // The root package's own library source.
    walk(&root.join("src"), root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if rules_for(&rel).any() {
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Lexes, test-strips and rule-checks a single file (lexical rules only —
/// the semantic passes need the whole workspace; see [`check_sources`]).
pub fn check_file(root: &Path, rel_path: &str) -> io::Result<Vec<Violation>> {
    let source = fs::read_to_string(root.join(rel_path))?;
    let tokens = strip_test_code(&lex(&source));
    Ok(run_rules(rel_path, &tokens, rules_for(rel_path)))
}

/// One in-scope file, lexed and test-stripped — the unit the semantic
/// passes consume.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Test-stripped token stream.
    pub tokens: Vec<Token>,
}

/// Reads and lexes every in-scope workspace file.
pub fn load_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut sources = Vec::new();
    for rel in collect_files(root)? {
        let text = fs::read_to_string(root.join(&rel))?;
        sources.push(SourceFile {
            path: rel,
            tokens: strip_test_code(&lex(&text)),
        });
    }
    Ok(sources)
}

/// Crates whose sources the `flow.unit` inference runs over: the physics
/// and signal layers where dimensioned scalars are pervasive. The serving
/// and chip-model layers mix typed quantities with raw counters heavily
/// enough that name-seeded inference would be noise there.
const UNIT_FLOW_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/circuit/src/",
    "crates/dsp/src/",
    "crates/units/src/",
];

/// Wall-clock cost of each analysis stage, in microseconds. The lint
/// crate is outside `det.*` scope, so reading the monotonic clock here is
/// legal — these numbers are diagnostics, never analysis inputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassTimings {
    pub lexical_us: u128,
    pub parse_us: u128,
    pub flow_us: u128,
    pub summary_us: u128,
    pub taint_us: u128,
    pub reach_us: u128,
    pub proto_us: u128,
    pub conc_us: u128,
    pub lock_order_us: u128,
    pub abi_us: u128,
    pub total_us: u128,
}

/// Everything one full analysis run produces.
#[derive(Debug)]
pub struct CheckOutcome {
    /// Every violation, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Protocol coverage counts.
    pub proto: ProtoSummary,
    /// Wire-ABI lock comparison, when a lock state was supplied.
    pub abi: Option<AbiSummary>,
    /// Per-pass elapsed wall-clock.
    pub timings: PassTimings,
}

/// Runs every pass — per-file lexical rules, intraprocedural dataflow
/// (`flow.*`), then the workspace-level semantic passes (panic
/// reachability, protocol exhaustiveness, concurrency discipline,
/// lock-order acyclicity, wire-ABI lock) — over pre-loaded sources.
///
/// The allowlist is input (not just output reconciliation) because
/// `reach.panic` treats allowlisted indexing budgets as local bounds
/// proofs. `flow.range` proofs *discharge* `panic.indexing` findings
/// before they are returned: a line whose every index site the interval
/// analysis proved in bounds needs no allowlist budget, and its sinks do
/// not propagate through `reach.panic` either. Pass `None` for `lock` to
/// skip the ABI comparison (unit tests); the real entry point
/// [`check_workspace`] always supplies the on-disk lock state.
pub fn check_sources_full(
    sources: &[SourceFile],
    allow: &Allowlist,
    lock: Option<&LockState>,
) -> CheckOutcome {
    let started = Instant::now();
    let mut timings = PassTimings::default();
    let mut all = Vec::new();

    let t = Instant::now();
    for s in sources {
        all.extend(run_rules(&s.path, &s.tokens, rules_for(&s.path)));
    }
    timings.lexical_us = t.elapsed().as_micros();

    let t = Instant::now();
    let parsed: Vec<ParsedFile> = sources
        .iter()
        .map(|s| parse_file(&s.path, &s.tokens))
        .collect();
    timings.parse_us = t.elapsed().as_micros();

    // Function summaries first: the interval prover consumes return-bound
    // contracts at call sites, so they must exist before `flow_pass` runs.
    let t = Instant::now();
    let summaries = compute_summaries(sources, &parsed);
    summary_pass(sources, &parsed, &summaries, &mut all);
    timings.summary_us = t.elapsed().as_micros();

    // Dataflow: unit inference where dimensioned scalars live, interval
    // analysis everywhere the panic rules look.
    let t = Instant::now();
    let mut proven = ProvenLines::new();
    for (s, p) in sources.iter().zip(&parsed) {
        let check_units = UNIT_FLOW_PREFIXES.iter().any(|pre| s.path.starts_with(pre));
        let proofs = flow_pass(&s.path, &s.tokens, p, check_units, &summaries, &mut all);
        let lines = proofs.fully_proven();
        if !lines.is_empty() {
            proven.insert(s.path.clone(), lines);
        }
    }
    // Discharge: an indexing finding whose line is fully proven is not a
    // finding at all — the analysis did the allowlist's job.
    all.retain(|v| {
        !(v.rule == "panic.indexing"
            && proven
                .get(&v.file)
                .is_some_and(|lines| lines.contains(&v.line)))
    });
    timings.flow_us = t.elapsed().as_micros();

    // Taint: wire-derived values reaching resource sinks unvalidated.
    let t = Instant::now();
    taint_pass(sources, &parsed, &mut all);
    timings.taint_us = t.elapsed().as_micros();

    let t = Instant::now();
    reach_pass(sources, &parsed, allow, &proven, &mut all);
    timings.reach_us = t.elapsed().as_micros();

    let t = Instant::now();
    let summary = proto_pass(sources, &parsed, &ProtoConfig::WORKSPACE, &mut all);
    timings.proto_us = t.elapsed().as_micros();

    let t = Instant::now();
    conc_pass(sources, &parsed, STATION_PREFIX, &mut all);
    conc_pass(sources, &parsed, CONTROL_PREFIX, &mut all);
    conc_pass(sources, &parsed, STORE_PREFIX, &mut all);
    timings.conc_us = t.elapsed().as_micros();

    let t = Instant::now();
    lock_order_pass(
        sources,
        &parsed,
        &[STATION_PREFIX, CONTROL_PREFIX, STORE_PREFIX],
        &mut all,
    );
    timings.lock_order_us = t.elapsed().as_micros();

    let t = Instant::now();
    let abi = lock.map(|state| abi_pass(&canonical_entries(), state, &mut all));
    timings.abi_us = t.elapsed().as_micros();

    all.sort_by(|a, b| (a.file.clone(), a.line, a.rule).cmp(&(b.file.clone(), b.line, b.rule)));
    timings.total_us = started.elapsed().as_micros();
    CheckOutcome {
        violations: all,
        proto: summary,
        abi,
        timings,
    }
}

/// Compatibility shim over [`check_sources_full`]: no ABI lock, discard
/// timings. Kept because the fixture tests and older callers only need
/// the violation list and protocol summary.
pub fn check_sources(sources: &[SourceFile], allow: &Allowlist) -> (Vec<Violation>, ProtoSummary) {
    let outcome = check_sources_full(sources, allow, None);
    (outcome.violations, outcome.proto)
}

/// Reads the committed wire-ABI lock from the workspace root. A missing
/// file is a reportable state (the `abi` pass flags it), not an error.
pub fn load_lock_state(root: &Path) -> LockState {
    match fs::read_to_string(root.join(LOCK_FILE)) {
        Ok(text) => LockState::Present(text),
        Err(_) => LockState::Missing,
    }
}

/// Runs the full analysis over every in-scope workspace file, including
/// the ABI comparison against the committed `link.abi.lock`.
pub fn check_workspace(root: &Path, allow: &Allowlist) -> io::Result<CheckOutcome> {
    let sources = load_sources(root)?;
    let lock = load_lock_state(root);
    Ok(check_sources_full(&sources, allow, Some(&lock)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_policy() {
        let core = rules_for("crates/core/src/scan.rs");
        assert!(core.determinism && core.panic_freedom && core.unit_safety);

        let dsp = rules_for("crates/dsp/src/filter.rs");
        assert!(dsp.determinism && dsp.panic_freedom && dsp.unit_safety);

        let circuit = rules_for("crates/circuit/src/mosfet.rs");
        assert!(!circuit.determinism && circuit.panic_freedom && circuit.unit_safety);

        let units = rules_for("crates/units/src/lib.rs");
        assert!(units.panic_freedom && !units.unit_safety);

        let lint = rules_for("crates/lint/src/rules.rs");
        assert!(lint.panic_freedom && !lint.unit_safety && !lint.determinism);

        // The wire codec must be a pure function of its bytes: full scope.
        let link = rules_for("crates/link/src/message.rs");
        assert!(link.determinism && link.panic_freedom && link.unit_safety);

        // The serving layer may touch wall-clock (timeouts, sockets) but
        // still must not panic and must keep units typed.
        let station = rules_for("crates/station/src/server.rs");
        assert!(!station.determinism && station.panic_freedom && station.unit_safety);

        // The recovery controller replays bit-identically from a seed:
        // full determinism scope on top of panic freedom and units.
        let control = rules_for("crates/control/src/policy.rs");
        assert!(control.determinism && control.panic_freedom && control.unit_safety);

        // The frame store touches the filesystem (wall-clock-legal like
        // the station) but must stay panic-free with typed units.
        let store = rules_for("crates/store/src/reader.rs");
        assert!(!store.determinism && store.panic_freedom && store.unit_safety);

        assert!(!rules_for("crates/bench/src/bin/exp_f2.rs").any());
        assert!(!rules_for("crates/core/tests/integration.rs").any());
        assert!(!rules_for("crates/core/src/data.csv").any());
        assert!(rules_for("src/lib.rs").panic_freedom);
    }

    #[test]
    fn workspace_root_exists_and_has_manifest() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").is_file(), "{root:?}");
    }

    #[test]
    fn collects_known_files() {
        let root = workspace_root();
        let files = collect_files(&root).expect("walk");
        assert!(
            files.iter().any(|f| f == "crates/core/src/lib.rs"),
            "{files:?}"
        );
        assert!(files.iter().any(|f| f == "crates/lint/src/rules.rs"));
        assert!(!files.iter().any(|f| f.starts_with("crates/bench/")));
        // Sorted and unique.
        let mut sorted = files.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(files, sorted);
    }
}
