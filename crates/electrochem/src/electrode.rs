//! Interdigitated gold sensor-electrode geometry.
//!
//! Each sensor site of the DNA chip carries a pair of interdigitated noble
//! metal electrode combs (generator and collector) within the sensor area;
//! probe molecules are immobilized on/between the fingers and redox-active
//! species shuttle across the sub-µm finger gap (paper Section 2,
//! refs [4–6, 12, 13]).

use bsa_units::{Farad, Meter, SquareMeter};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error constructing an electrode geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidGeometryError {
    what: &'static str,
}

impl fmt::Display for InvalidGeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid electrode geometry: {}", self.what)
    }
}

impl Error for InvalidGeometryError {}

/// Interdigitated electrode (IDE) pair of a single sensor site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterdigitatedElectrode {
    fingers: u32,
    finger_width: Meter,
    finger_gap: Meter,
    finger_length: Meter,
}

impl InterdigitatedElectrode {
    /// The geometry used on the 16×8 chip generation: ~1 µm fingers and
    /// gaps over a ~100 µm site.
    pub fn standard_site() -> Self {
        Self {
            fingers: 50,
            finger_width: Meter::from_micro(1.0),
            finger_gap: Meter::from_micro(1.0),
            finger_length: Meter::from_micro(100.0),
        }
    }

    /// Creates a custom geometry.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometryError`] if any dimension is non-positive or
    /// fewer than two fingers are requested.
    pub fn new(
        fingers: u32,
        finger_width: Meter,
        finger_gap: Meter,
        finger_length: Meter,
    ) -> Result<Self, InvalidGeometryError> {
        if fingers < 2 {
            return Err(InvalidGeometryError {
                what: "need at least two fingers",
            });
        }
        for (v, what) in [
            (finger_width, "finger width must be positive"),
            (finger_gap, "finger gap must be positive"),
            (finger_length, "finger length must be positive"),
        ] {
            if v.value() <= 0.0 || !v.is_finite() {
                return Err(InvalidGeometryError { what });
            }
        }
        Ok(Self {
            fingers,
            finger_width,
            finger_gap,
            finger_length,
        })
    }

    /// Number of fingers (both combs together).
    pub fn fingers(&self) -> u32 {
        self.fingers
    }

    /// Finger width.
    pub fn finger_width(&self) -> Meter {
        self.finger_width
    }

    /// Gap between adjacent fingers.
    pub fn finger_gap(&self) -> Meter {
        self.finger_gap
    }

    /// Finger length.
    pub fn finger_length(&self) -> Meter {
        self.finger_length
    }

    /// Total metal area of the site (all fingers).
    pub fn metal_area(&self) -> SquareMeter {
        self.finger_width * self.finger_length * self.fingers as f64
    }

    /// Total site footprint including gaps.
    pub fn footprint(&self) -> SquareMeter {
        let pitch = self.finger_width + self.finger_gap;
        pitch * self.finger_length * self.fingers as f64
    }

    /// Mean diffusion distance for redox shuttling between the combs:
    /// half the center-to-center pitch of adjacent fingers.
    pub fn shuttle_distance(&self) -> Meter {
        (self.finger_width + self.finger_gap) * 0.5
    }

    /// Electrochemical double-layer capacitance of one comb, assuming
    /// `c_dl` per unit area (typ. 0.2 F/m² for gold in buffer).
    pub fn double_layer_capacitance(&self, c_dl_f_per_m2: f64) -> Farad {
        Farad::new(self.metal_area().value() * 0.5 * c_dl_f_per_m2)
    }

    /// Redox-cycling amplification factor relative to a single electrode of
    /// the same area: proportional to the ratio of the diffusion boundary
    /// layer (~δ) to the finger-scale shuttle distance, saturating at the
    /// collection-efficiency limit.
    ///
    /// `boundary_layer` is the bulk diffusion-layer thickness (tens of µm
    /// in unstirred solution).
    pub fn cycling_gain(&self, boundary_layer: Meter) -> f64 {
        let gain = boundary_layer.value() / self.shuttle_distance().value();
        gain.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_site_dimensions() {
        let e = InterdigitatedElectrode::standard_site();
        // 50 fingers × 2 µm pitch = 100 µm wide site.
        let fp = e.footprint();
        assert!((fp.value() - 100e-6 * 100e-6).abs() / fp.value() < 1e-9);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(InterdigitatedElectrode::new(
            1,
            Meter::from_micro(1.0),
            Meter::from_micro(1.0),
            Meter::from_micro(100.0)
        )
        .is_err());
        assert!(InterdigitatedElectrode::new(
            10,
            Meter::ZERO,
            Meter::from_micro(1.0),
            Meter::from_micro(100.0)
        )
        .is_err());
    }

    #[test]
    fn metal_area_scales_with_fingers() {
        let a = InterdigitatedElectrode::new(
            10,
            Meter::from_micro(1.0),
            Meter::from_micro(1.0),
            Meter::from_micro(100.0),
        )
        .unwrap();
        let b = InterdigitatedElectrode::new(
            20,
            Meter::from_micro(1.0),
            Meter::from_micro(1.0),
            Meter::from_micro(100.0),
        )
        .unwrap();
        assert!((b.metal_area().value() / a.metal_area().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shuttle_distance_is_half_pitch() {
        let e = InterdigitatedElectrode::standard_site();
        assert!((e.shuttle_distance().as_micro() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn finer_fingers_give_more_cycling_gain() {
        let coarse = InterdigitatedElectrode::new(
            25,
            Meter::from_micro(2.0),
            Meter::from_micro(2.0),
            Meter::from_micro(100.0),
        )
        .unwrap();
        let fine = InterdigitatedElectrode::new(
            100,
            Meter::from_micro(0.5),
            Meter::from_micro(0.5),
            Meter::from_micro(100.0),
        )
        .unwrap();
        let bl = Meter::from_micro(30.0);
        assert!(fine.cycling_gain(bl) > coarse.cycling_gain(bl));
        assert!(fine.cycling_gain(bl) >= 1.0);
    }

    #[test]
    fn cycling_gain_floors_at_unity() {
        let e = InterdigitatedElectrode::standard_site();
        assert_eq!(e.cycling_gain(Meter::from_nano(10.0)), 1.0);
    }

    #[test]
    fn double_layer_capacitance_magnitude() {
        let e = InterdigitatedElectrode::standard_site();
        let c = e.double_layer_capacitance(0.2);
        // Half of 50 × 1 µm × 100 µm = 2.5e-9 m²; × 0.2 F/m² = 500 pF.
        assert!((c.as_pico() - 500.0).abs() / c.as_pico() < 1e-6, "c = {c}");
    }
}
