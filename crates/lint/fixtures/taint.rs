//! Seeded wire-taint violations for `taint.wire-alloc`,
//! `taint.wire-index` and `taint.wire-arith` (semantic lint fixture —
//! lexed and parsed under a wire-scope path, never compiled).
//!
//! The unmarked functions at the bottom are the sanitizer vocabulary:
//! every recognized validation idiom must keep its flow silent, pinning
//! the false-positive rate alongside the hit rate.

// ---------------------------------------------------------------------------
// taint.wire-alloc — peer-controlled value reaches an allocation size
// ---------------------------------------------------------------------------

/// A little-endian count straight off the wire sizes a Vec.
fn unchecked_capacity(b: [u8; 4]) -> Vec<u8> {
    let n = u32::from_le_bytes(b) as usize;
    Vec::with_capacity(n) //~ taint.wire-alloc
}

/// A `read_exact` buffer is peer bytes; decoding it taints the length.
fn unchecked_vec_macro(r: &mut R) -> Vec<u8> {
    let mut hdr = [0u8; 4];
    r.read_exact(&mut hdr);
    let n = u32::from_le_bytes(hdr) as usize;
    vec![0u8; n] //~ taint.wire-alloc
}

/// Destructuring a wire enum arm binds peer-controlled fields.
fn unchecked_match_binding(msg: Message) -> Vec<u8> {
    match msg {
        Message::StreamRequest { frames } => {
            Vec::with_capacity(frames as usize) //~ taint.wire-alloc
        }
        _ => Vec::new(),
    }
}

/// A wire count bounding a loop is a resource sink too.
fn unchecked_loop_bound(b: [u8; 4]) -> u64 {
    let n = u32::from_le_bytes(b);
    let mut acc = 0u64;
    for _ in 0..n { //~ taint.wire-alloc
        acc += 1;
    }
    acc
}

/// Taint crosses calls: the callee allocates from its parameter
/// unconditionally, so the call site owns the finding.
fn grow(n: usize) -> Vec<u8> {
    Vec::with_capacity(n)
}

fn unchecked_interprocedural(b: [u8; 4]) -> Vec<u8> {
    let n = u32::from_le_bytes(b) as usize;
    grow(n) //~ taint.wire-alloc
}

// ---------------------------------------------------------------------------
// taint.wire-index — peer-controlled value used as a slice index
// ---------------------------------------------------------------------------

/// An index decoded from the wire reaches a slice unguarded.
fn unchecked_index(xs: &[u8], b: [u8; 4]) -> u8 {
    let i = u32::from_le_bytes(b) as usize;
    xs[i] //~ taint.wire-index
}

// ---------------------------------------------------------------------------
// taint.wire-arith — overflowable arithmetic on wire operands feeding a sink
// ---------------------------------------------------------------------------

/// Arithmetic inside the sink argument: both the allocation and the
/// overflowable product are flagged on the same line.
fn arith_in_sink(b: [u8; 4]) -> Vec<u8> {
    let n = u32::from_le_bytes(b) as usize;
    Vec::with_capacity(n * 8) //~ taint.wire-alloc //~ taint.wire-arith
}

/// A wire product bound in a `let`, then used to size a buffer.
fn arith_via_binding(b: [u8; 8]) -> Vec<u8> {
    let n = u64::from_le_bytes(b);
    let total = (n * 8) as usize; //~ taint.wire-arith
    Vec::with_capacity(total) //~ taint.wire-alloc
}

// ---------------------------------------------------------------------------
// Sanitizers — recognized validation idioms: must stay silent
// ---------------------------------------------------------------------------

/// Upper-bound exit guard before the allocation.
fn guarded_capacity(b: [u8; 4]) -> Vec<u8> {
    let n = u32::from_le_bytes(b) as usize;
    if n > MAX_COUNT {
        return Vec::new();
    }
    Vec::with_capacity(n)
}

/// Trailing `.min(const)` clamp on the decoded value.
fn clamped_capacity(b: [u8; 4]) -> Vec<u8> {
    let n = (u32::from_le_bytes(b) as usize).min(64);
    Vec::with_capacity(n)
}

/// Exact-equality exit guard (count-matches-payload idiom).
fn exact_len_checked(b: [u8; 4], want: usize) -> Vec<u8> {
    let n = u32::from_le_bytes(b) as usize;
    if n != want {
        return Vec::new();
    }
    Vec::with_capacity(n)
}

/// `Reader::count` validates counts against the remaining payload; its
/// result is trusted.
fn trusted_reader_count(payload: &[u8]) -> Result<Vec<u8>, E> {
    let mut r = Reader::new(payload);
    let n = r.count(8, "samples")?;
    Ok(Vec::with_capacity(n))
}

/// Non-exit bounds guard dominating the index site.
fn guarded_index(xs: &[u8], b: [u8; 4]) -> u8 {
    let i = u32::from_le_bytes(b) as usize;
    if i < xs.len() {
        xs[i]
    } else {
        0
    }
}

/// The callee validates its own parameter, so the call is clean.
fn guarded_callee(n: usize) -> Vec<u8> {
    if n > MAX_N {
        return Vec::new();
    }
    Vec::with_capacity(n)
}

fn interprocedural_guarded(b: [u8; 4]) -> Vec<u8> {
    let n = u32::from_le_bytes(b) as usize;
    guarded_callee(n)
}

/// Reassignment from a clean operand clears the binding.
fn reassigned_clean(b: [u8; 4]) -> Vec<u8> {
    let mut n = u32::from_le_bytes(b) as usize;
    n = 4;
    Vec::with_capacity(n)
}

/// Constructing a wire enum binds nothing — only destructuring taints.
fn construction_is_clean(token: u64) -> Message {
    let reply = Message::Pong { token };
    let _ = Vec::<u8>::with_capacity(token as usize);
    reply
}
