//! One client session: a reader thread that owns the session's chips and
//! executes requests sequentially, plus a writer thread draining a
//! bounded outbound queue.
//!
//! # Backpressure policy
//!
//! The outbound queue is a `sync_channel` with a fixed capacity. Control
//! responses (acks, results, stream-end markers) use a *blocking* send —
//! they are few and must not be lost; if the writer died because the
//! socket broke, the send fails and the session ends. Stream data chunks
//! use `try_send`: when a slow consumer fills the queue the chunk is
//! dropped on the spot and counted, so the server never buffers without
//! bound and the consumer learns exactly how many frames it lost from
//! `StreamEnd { frames_dropped, .. }`.

use crate::registry::{
    culture_from_spec, dna_config_from_spec, injection_plan_from_spec, neuro_config_from_spec,
    yield_summary, Chip, Registry, MAX_PIXELS,
};
use crate::stats::StationStats;
use bsa_core::dna_chip::{DnaChip, SampleMix};
use bsa_core::health::PixelHealth;
use bsa_core::neuro_chip::NeuroChip;
use bsa_dsp::masking::PixelMask;
use bsa_electrochem::sequence::DnaSequence;
use bsa_link::{
    read_message, write_message, ChipId, ChipKind, ErrorCode, Message, PixelCount, ProtocolError,
    RecordingEntry, StreamPayload, PROTOCOL_VERSION,
};
use bsa_store::{
    decode_dna_reading, decode_neuro_frame, encode_dna_reading, encode_neuro_frame, fnv1a64,
    frame_payload_len, list_recordings, Recorder, SegmentMeta, SegmentReader, DEFAULT_QUEUE_DEPTH,
};
use bsa_units::{Molar, Seconds};
use std::collections::{BTreeMap, BTreeSet};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Hard cap on frames per neuro stream request (about 100 MiB of payload
/// at 128×128), so one request cannot pin the server indefinitely.
pub(crate) const MAX_STREAM_FRAMES: u32 = 4096;

/// Default frames per `StreamData` chunk when the client passes 0.
pub(crate) const DEFAULT_CHUNK_FRAMES: u32 = 8;

/// DNA count readings per streamed chunk.
const DNA_CHUNK_READINGS: usize = 64;

/// Upper bound on a recorded frame's rows/cols accepted for replay. The
/// geometry comes from a stored segment header — attacker/corruption
/// territory — and sizes the chunk sample buffer, so it must be bounded
/// before it feeds an allocation. Far above any real CMOS array axis.
const MAX_REPLAY_DIM: usize = 4096;

/// The receiving side of the session is gone (socket closed or writer
/// dead); the session should wind down.
#[derive(Debug)]
pub(crate) struct Gone;

/// Outcome of offering a stream chunk to the queue.
enum Offer {
    Sent,
    Dropped,
}

/// The session's handle on its outbound queue.
struct Outbound {
    tx: SyncSender<Message>,
    stats: Arc<StationStats>,
}

impl Outbound {
    /// Blocking send for control responses. Fails only when the writer
    /// thread has exited (socket gone).
    fn send_control(&self, msg: Message) -> Result<(), Gone> {
        self.stats.queue_enter();
        match self.tx.send(msg) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.stats.queue_exit();
                Err(Gone)
            }
        }
    }

    /// Non-blocking send for stream data. A full queue drops the chunk
    /// (the caller accounts for it); a disconnected queue ends the
    /// session.
    fn offer_stream(&self, msg: Message) -> Result<Offer, Gone> {
        self.stats.queue_enter();
        match self.tx.try_send(msg) {
            Ok(()) => {
                StationStats::add(&self.stats.chunks_sent, 1);
                Ok(Offer::Sent)
            }
            Err(TrySendError::Full(_)) => {
                self.stats.queue_exit();
                Ok(Offer::Dropped)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.stats.queue_exit();
                Err(Gone)
            }
        }
    }
}

/// Tuning knobs handed down from `StationConfig`.
#[derive(Debug, Clone)]
pub(crate) struct SessionLimits {
    pub(crate) queue_depth: usize,
    pub(crate) read_timeout: Option<Duration>,
    pub(crate) store_root: Option<PathBuf>,
}

/// Runs one session to completion on the current thread. Spawns the
/// writer thread internally and joins it before returning.
pub(crate) fn run_session(stream: TcpStream, stats: Arc<StationStats>, limits: &SessionLimits) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(limits.read_timeout);
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            // No writer thread can exist; tell the client why the session
            // is dying (best-effort, straight on the reader socket) —
            // this is the one condition that is the station's fault, not
            // the client's, hence `Internal` rather than `BadRequest`.
            let mut stream = stream;
            let _ = write_message(
                &mut stream,
                &Message::ErrorReply {
                    code: ErrorCode::Internal,
                    message: format!("cannot split session socket: {e}"),
                },
            );
            return;
        }
    };
    let (tx, rx) = sync_channel::<Message>(limits.queue_depth.max(1));
    let writer_stats = Arc::clone(&stats);
    let writer = thread::spawn(move || {
        let mut stream = writer_stream;
        for msg in rx {
            writer_stats.queue_exit();
            match write_message(&mut stream, &msg) {
                Ok(n) => StationStats::add(&writer_stats.bytes_sent, n as u64),
                Err(_) => break,
            }
        }
        // Drain without writing so blocked senders unblock promptly even
        // though the socket is gone; dropping the receiver then fails
        // all later sends.
        let _ = stream.shutdown(std::net::Shutdown::Both);
    });

    let mut session = Session {
        registry: Registry::default(),
        masks: BTreeMap::new(),
        recorders: BTreeMap::new(),
        store_root: limits.store_root.clone(),
        out: Outbound {
            tx,
            stats: Arc::clone(&stats),
        },
        stats: Arc::clone(&stats),
    };

    let mut reader = stream;
    loop {
        match read_message(&mut reader) {
            Ok(msg) => {
                StationStats::add(&stats.requests, 1);
                if session.handle(msg).is_err() {
                    break;
                }
            }
            Err(ProtocolError::Io(_)) => break, // EOF, reset or timeout
            Err(err) => {
                // Corrupt frame: tell the client (best-effort) and close —
                // framing sync cannot be trusted after a bad header.
                let _ = session.out.send_control(Message::ErrorReply {
                    code: ErrorCode::BadRequest,
                    message: format!("protocol error: {err}"),
                });
                break;
            }
        }
    }
    drop(session); // drops the sender; the writer drains and exits
    let _ = writer.join();
}

struct Session {
    registry: Registry,
    /// Client-masked pixels per chip (row-major indices). Neuro stream
    /// chunks are repaired over this mask by neighbor interpolation
    /// before they are queued; an empty/absent mask leaves the stream
    /// path bit-identical to an unmasked session.
    masks: BTreeMap<ChipId, BTreeSet<u32>>,
    /// Active recordings per chip. Streams from a recorded chip are teed
    /// into the store's bounded writer queue frame by frame (post-mask,
    /// so the segment holds exactly what a client would have received);
    /// dropping the session finalises any recording still open.
    recorders: BTreeMap<ChipId, ActiveRecording>,
    /// `bsa-store` root directory; `None` disables record/replay.
    store_root: Option<PathBuf>,
    out: Outbound,
    stats: Arc<StationStats>,
}

/// One in-flight recording: the store writer plus the next acquisition
/// epoch. The epoch is a stream-request ordinal (not wall time), so a
/// segment written by a deterministic acquisition is itself
/// deterministic.
struct ActiveRecording {
    name: String,
    recorder: Recorder,
    epoch: u32,
}

impl Session {
    /// Handles one request. `Err(Gone)` means the connection is dead.
    fn handle(&mut self, msg: Message) -> Result<(), Gone> {
        match msg {
            Message::Hello { .. } => self.out.send_control(Message::HelloAck {
                server: format!("bsa-station/{}", env!("CARGO_PKG_VERSION")),
                version: PROTOCOL_VERSION,
            }),
            Message::Ping { token } => self.out.send_control(Message::Pong { token }),
            Message::AttachDna(spec) => {
                let reply = self.attach_dna(&spec);
                self.out.send_control(reply)
            }
            Message::AttachNeuro(spec) => {
                let reply = self.attach_neuro(&spec);
                self.out.send_control(reply)
            }
            Message::Detach { chip } => {
                let reply = if self.registry.detach(chip) {
                    self.masks.remove(&chip);
                    // Dropping the recorder joins its writer thread and
                    // finalises the segment; the client simply does not
                    // get the `RecordingStopped` accounting.
                    self.recorders.remove(&chip);
                    Message::Detached { chip }
                } else {
                    error_reply(ErrorCode::UnknownChip, format!("no chip {chip}"))
                };
                self.out.send_control(reply)
            }
            Message::ConfigureAssay {
                chip,
                probes,
                targets,
            } => {
                let reply = self.configure_assay(chip, &probes, &targets);
                self.out.send_control(reply)
            }
            Message::Calibrate { chip } => {
                let reply = self.calibrate(chip);
                self.out.send_control(reply)
            }
            Message::InjectFaults { chip, plan } => {
                let reply = self.inject_faults(chip, &plan);
                self.out.send_control(reply)
            }
            Message::QueryHealth { chip } => {
                let reply = self.query_health(chip);
                self.out.send_control(reply)
            }
            Message::MaskPixels { chip, pixels } => {
                let reply = self.mask_pixels(chip, &pixels);
                self.out.send_control(reply)
            }
            Message::RunAssay {
                chip,
                stream_counts,
            } => self.run_assay(chip, stream_counts),
            Message::StartNeuroStream {
                chip,
                frames,
                chunk_frames,
                t0_s,
                culture,
            } => self.neuro_stream(chip, frames, chunk_frames, t0_s, &culture),
            Message::QueryStats => self
                .out
                .send_control(Message::StatsReport(self.stats.snapshot())),
            Message::StartRecording { chip, name } => {
                let reply = self.start_recording(chip, &name);
                self.out.send_control(reply)
            }
            Message::StopRecording { chip } => {
                let reply = self.stop_recording(chip);
                self.out.send_control(reply)
            }
            Message::ListRecordings => {
                let reply = self.list_store();
                self.out.send_control(reply)
            }
            Message::Replay { name, chunk_frames } => self.replay(&name, chunk_frames),
            // Server-to-client messages arriving at the server are a
            // client bug, not a transport failure: answer and carry on.
            other => self.out.send_control(error_reply(
                ErrorCode::BadRequest,
                format!("unexpected message at server: {other:?}"),
            )),
        }
    }

    fn attach_dna(&mut self, spec: &bsa_link::DnaChipSpec) -> Message {
        let config = match dna_config_from_spec(spec) {
            Ok(c) => c,
            Err(err) => return error_reply(ErrorCode::BadRequest, err.to_string()),
        };
        if config.geometry.len() > MAX_PIXELS {
            return error_reply(ErrorCode::BadRequest, "array too large".into());
        }
        let rows = config.geometry.rows();
        let cols = config.geometry.cols();
        match DnaChip::new(config) {
            Ok(chip) => {
                let id = self.registry.attach(Chip::Dna {
                    chip: Box::new(chip),
                    sample: SampleMix::new(),
                });
                StationStats::add(&self.stats.chips_attached, 1);
                Message::Attached {
                    chip: id,
                    kind: ChipKind::Dna,
                    rows: rows as u16,
                    cols: cols as u16,
                }
            }
            Err(err) => error_reply(ErrorCode::ChipError, err.to_string()),
        }
    }

    fn attach_neuro(&mut self, spec: &bsa_link::NeuroChipSpec) -> Message {
        let config = match neuro_config_from_spec(spec) {
            Ok(c) => c,
            Err(err) => return error_reply(ErrorCode::BadRequest, err.to_string()),
        };
        if config.geometry.len() > MAX_PIXELS {
            return error_reply(ErrorCode::BadRequest, "array too large".into());
        }
        let rows = config.geometry.rows();
        let cols = config.geometry.cols();
        match NeuroChip::new(config) {
            Ok(chip) => {
                let id = self.registry.attach(Chip::Neuro(Box::new(chip)));
                StationStats::add(&self.stats.chips_attached, 1);
                Message::Attached {
                    chip: id,
                    kind: ChipKind::Neuro,
                    rows: rows as u16,
                    cols: cols as u16,
                }
            }
            Err(err) => error_reply(ErrorCode::ChipError, err.to_string()),
        }
    }

    fn configure_assay(
        &mut self,
        id: ChipId,
        probes: &[String],
        targets: &[bsa_link::TargetSpec],
    ) -> Message {
        let mut parsed = Vec::with_capacity(probes.len());
        for probe in probes {
            match probe.parse::<DnaSequence>() {
                Ok(seq) => parsed.push(seq),
                Err(err) => {
                    return error_reply(ErrorCode::BadRequest, format!("probe {probe:?}: {err}"))
                }
            }
        }
        let mut sample = SampleMix::new();
        for target in targets {
            let seq = match target.sequence.parse::<DnaSequence>() {
                Ok(seq) => seq,
                Err(err) => {
                    return error_reply(
                        ErrorCode::BadRequest,
                        format!("target {:?}: {err}", target.sequence),
                    )
                }
            };
            if !target.concentration_molar.is_finite() || target.concentration_molar < 0.0 {
                return error_reply(ErrorCode::BadRequest, "bad concentration".into());
            }
            sample = sample.with_target(seq, Molar::new(target.concentration_molar));
        }
        match self.registry.get_mut(id) {
            Some(Chip::Dna { chip, sample: slot }) => {
                chip.spot_all(&parsed);
                *slot = sample;
                Message::Ack
            }
            Some(Chip::Neuro(_)) => {
                error_reply(ErrorCode::WrongChipKind, "assays run on DNA chips".into())
            }
            None => error_reply(ErrorCode::UnknownChip, format!("no chip {id}")),
        }
    }

    fn calibrate(&mut self, id: ChipId) -> Message {
        match self.registry.get_mut(id) {
            Some(Chip::Dna { chip, .. }) => {
                let _ = chip.auto_calibrate();
                let health = chip.health();
                Message::CalibrationDone {
                    chip: id,
                    healthy: health.count(PixelHealth::Healthy) as u32,
                    out_of_family: health.count(PixelHealth::OutOfFamily) as u32,
                    dead: health.count(PixelHealth::Dead) as u32,
                }
            }
            Some(Chip::Neuro(chip)) => {
                chip.calibrate(Seconds::new(0.0));
                let health = chip.health();
                Message::CalibrationDone {
                    chip: id,
                    healthy: health.count(PixelHealth::Healthy) as u32,
                    out_of_family: health.count(PixelHealth::OutOfFamily) as u32,
                    dead: health.count(PixelHealth::Dead) as u32,
                }
            }
            None => error_reply(ErrorCode::UnknownChip, format!("no chip {id}")),
        }
    }

    fn inject_faults(&mut self, id: ChipId, plan: &bsa_link::FaultPlanSpec) -> Message {
        let plan = injection_plan_from_spec(plan);
        match self.registry.get_mut(id) {
            Some(Chip::Dna { chip, .. }) => {
                let g = chip.geometry();
                match chip.inject_faults(&plan.compile(g.rows(), g.cols())) {
                    Ok(()) => Message::Ack,
                    Err(err) => error_reply(ErrorCode::ChipError, err.to_string()),
                }
            }
            Some(Chip::Neuro(chip)) => {
                let g = chip.config().geometry;
                match chip.inject_faults(&plan.compile(g.rows(), g.cols())) {
                    Ok(()) => Message::Ack,
                    Err(err) => error_reply(ErrorCode::ChipError, err.to_string()),
                }
            }
            None => error_reply(ErrorCode::UnknownChip, format!("no chip {id}")),
        }
    }

    fn mask_pixels(&mut self, id: ChipId, pixels: &[u32]) -> Message {
        let len = match self.registry.get_mut(id) {
            Some(Chip::Dna { chip, .. }) => chip.geometry().len(),
            Some(Chip::Neuro(chip)) => chip.config().geometry.len(),
            None => return error_reply(ErrorCode::UnknownChip, format!("no chip {id}")),
        };
        if let Some(&bad) = pixels.iter().find(|&&p| p as usize >= len) {
            return error_reply(
                ErrorCode::BadRequest,
                format!("pixel {bad} out of range (array has {len} pixels)"),
            );
        }
        let mask = self.masks.entry(id).or_default();
        mask.extend(pixels.iter().copied());
        Message::Masked {
            chip: id,
            masked: mask.len() as u32,
        }
    }

    fn query_health(&mut self, id: ChipId) -> Message {
        match self.registry.get_mut(id) {
            Some(Chip::Dna { chip, .. }) => Message::HealthReport {
                chip: id,
                report: yield_summary(&chip.yield_report()),
            },
            Some(Chip::Neuro(chip)) => Message::HealthReport {
                chip: id,
                report: yield_summary(&chip.yield_report()),
            },
            None => error_reply(ErrorCode::UnknownChip, format!("no chip {id}")),
        }
    }

    /// Opens a store segment and begins teeing the chip's streams to it.
    /// The spec snapshot is the Debug rendering of the *resolved* chip
    /// configuration (the same one the registry built from the wire
    /// spec), hashed with FNV-1a-64 so replay consumers can check which
    /// configuration produced a recording without parsing the spec.
    fn start_recording(&mut self, id: ChipId, name: &str) -> Message {
        let Some(root) = self.store_root.clone() else {
            return error_reply(
                ErrorCode::StoreError,
                "station has no store root (start with --store DIR)".into(),
            );
        };
        if self.recorders.contains_key(&id) {
            return error_reply(
                ErrorCode::StoreError,
                format!("chip {id} already recording"),
            );
        }
        let (kind, rows, cols, spec) = match self.registry.get_mut(id) {
            Some(Chip::Dna { chip, .. }) => {
                let g = chip.geometry();
                (
                    ChipKind::Dna,
                    g.rows() as u16,
                    g.cols() as u16,
                    format!("{:?}", chip.config()),
                )
            }
            Some(Chip::Neuro(chip)) => {
                let g = chip.config().geometry;
                (
                    ChipKind::Neuro,
                    g.rows() as u16,
                    g.cols() as u16,
                    format!("{:?}", chip.config()),
                )
            }
            None => return error_reply(ErrorCode::UnknownChip, format!("no chip {id}")),
        };
        let meta = SegmentMeta {
            chip: id,
            kind,
            rows,
            cols,
            config_hash: fnv1a64(spec.as_bytes()),
            spec,
        };
        match Recorder::create(
            &root,
            name,
            &meta,
            frame_payload_len(kind, rows, cols),
            DEFAULT_QUEUE_DEPTH,
        ) {
            Ok(recorder) => {
                self.recorders.insert(
                    id,
                    ActiveRecording {
                        name: name.to_string(),
                        recorder,
                        epoch: 0,
                    },
                );
                Message::RecordingStarted {
                    chip: id,
                    name: name.to_string(),
                }
            }
            Err(err) => error_reply(ErrorCode::StoreError, err.to_string()),
        }
    }

    /// Finalises a chip's recording and reports the store's own
    /// sent/dropped accounting (the writer queue drops-and-counts past
    /// high water, exactly like the outbound stream queue).
    fn stop_recording(&mut self, id: ChipId) -> Message {
        let Some(active) = self.recorders.remove(&id) else {
            return error_reply(ErrorCode::StoreError, format!("chip {id} is not recording"));
        };
        match active.recorder.finish() {
            Ok(summary) => Message::RecordingStopped {
                chip: id,
                name: active.name,
                frames_written: summary.frames_written,
                frames_dropped: summary.frames_dropped,
                bytes_written: summary.bytes_written,
            },
            Err(err) => error_reply(ErrorCode::StoreError, err.to_string()),
        }
    }

    fn list_store(&self) -> Message {
        let Some(root) = &self.store_root else {
            return error_reply(
                ErrorCode::StoreError,
                "station has no store root (start with --store DIR)".into(),
            );
        };
        match list_recordings(root) {
            Ok(entries) => Message::RecordingList {
                recordings: entries
                    .into_iter()
                    .map(|e| RecordingEntry {
                        name: e.name,
                        kind: e.kind,
                        rows: e.rows,
                        cols: e.cols,
                        frames: e.frames,
                        bytes: e.bytes,
                        config_hash: e.config_hash,
                    })
                    .collect(),
            },
            Err(err) => error_reply(ErrorCode::StoreError, err.to_string()),
        }
    }

    /// Streams a stored recording back with the exact `StreamData`*
    /// `StreamEnd` grammar a live chip produces, under the recorded chip
    /// id. Neuro payloads are decoded from their raw IEEE-754 bits, so a
    /// replayed frame is `f64::to_bits`-identical to the recorded one.
    fn replay(&mut self, name: &str, chunk_frames: u32) -> Result<(), Gone> {
        let Some(root) = self.store_root.clone() else {
            return self.out.send_control(error_reply(
                ErrorCode::StoreError,
                "station has no store root (start with --store DIR)".into(),
            ));
        };
        let mut reader = match SegmentReader::open_named(&root, name) {
            Ok(reader) => reader,
            Err(err) => {
                return self
                    .out
                    .send_control(error_reply(ErrorCode::StoreError, err.to_string()))
            }
        };
        let meta = reader.meta().clone();
        let id = meta.chip;
        let frame_count = reader.frames();
        let chunk = match (meta.kind, chunk_frames) {
            (ChipKind::Neuro, 0) => u64::from(DEFAULT_CHUNK_FRAMES),
            (ChipKind::Dna, 0) => DNA_CHUNK_READINGS as u64,
            (_, n) => u64::from(n),
        };
        let mut sent: u32 = 0;
        let mut dropped: u32 = 0;
        let mut index = 0u64;
        let mut seq: u32 = 0;
        while index < frame_count {
            let n = chunk.min(frame_count - index);
            // Assemble one chunk from n consecutive records. A corrupted
            // record aborts the replay with a typed error reply; the
            // client's stream loop surfaces it as a server error.
            let payload = match meta.kind {
                ChipKind::Neuro => {
                    let rows = usize::from(meta.rows);
                    let cols = usize::from(meta.cols);
                    if rows > MAX_REPLAY_DIM || cols > MAX_REPLAY_DIM {
                        return self.out.send_control(error_reply(
                            ErrorCode::StoreError,
                            format!("recorded geometry {rows}x{cols} exceeds the replay limit"),
                        ));
                    }
                    let mut samples = Vec::with_capacity((n as usize) * rows * cols);
                    for i in index..index + n {
                        let decoded = reader
                            .frame(i)
                            .and_then(|frame| decode_neuro_frame(frame.payload, &mut samples));
                        if let Err(err) = decoded {
                            return self
                                .out
                                .send_control(error_reply(ErrorCode::StoreError, err.to_string()));
                        }
                    }
                    StreamPayload::NeuroFrames {
                        first_frame: sent.saturating_add(dropped),
                        rows: meta.rows,
                        cols: meta.cols,
                        samples,
                    }
                }
                ChipKind::Dna => {
                    let mut readings = Vec::with_capacity(n as usize);
                    for i in index..index + n {
                        let decoded = reader
                            .frame(i)
                            .and_then(|frame| decode_dna_reading(frame.payload));
                        match decoded {
                            Ok(reading) => readings.push(reading),
                            Err(err) => {
                                return self.out.send_control(error_reply(
                                    ErrorCode::StoreError,
                                    err.to_string(),
                                ))
                            }
                        }
                    }
                    StreamPayload::DnaCounts { readings }
                }
            };
            match self.out.offer_stream(Message::StreamData {
                chip: id,
                seq,
                payload,
            })? {
                Offer::Sent => sent = sent.saturating_add(n as u32),
                Offer::Dropped => dropped = dropped.saturating_add(n as u32),
            }
            seq = seq.wrapping_add(1);
            index += n;
        }
        StationStats::add(&self.stats.frames_served, u64::from(sent));
        StationStats::add(&self.stats.frames_dropped, u64::from(dropped));
        self.out.send_control(Message::StreamEnd {
            chip: id,
            frames_sent: sent,
            frames_dropped: dropped,
        })
    }

    /// Claims the next recording epoch for an acquisition on `id`, if
    /// the chip is being recorded.
    fn tee_epoch(&mut self, id: ChipId) -> Option<u32> {
        self.recorders.get_mut(&id).map(|active| {
            let epoch = active.epoch;
            active.epoch = active.epoch.wrapping_add(1);
            epoch
        })
    }

    fn run_assay(&mut self, id: ChipId, stream_counts: bool) -> Result<(), Gone> {
        let readout = match self.registry.get_mut(id) {
            Some(Chip::Dna { chip, sample }) => chip.run_assay(sample),
            Some(Chip::Neuro(_)) => {
                return self.out.send_control(error_reply(
                    ErrorCode::WrongChipKind,
                    "assays run on DNA chips".into(),
                ))
            }
            None => {
                return self
                    .out
                    .send_control(error_reply(ErrorCode::UnknownChip, format!("no chip {id}")))
            }
        };
        let readings: Vec<PixelCount> = readout
            .to_readings()
            .iter()
            .map(|r| PixelCount {
                row: r.address.row as u16,
                col: r.address.col as u16,
                count: r.count,
            })
            .collect();
        // Tee the whole readout into an active recording (one record per
        // reading, whether or not the client streamed). Store
        // backpressure drops-and-counts; I/O failures surface in the
        // `RecordingStopped` accounting, never in the assay reply.
        if let Some(epoch) = self.tee_epoch(id) {
            if let Some(active) = self.recorders.get_mut(&id) {
                for reading in &readings {
                    let _ = active.recorder.offer(epoch, encode_dna_reading(reading));
                }
            }
        }
        if stream_counts {
            let mut sent: u32 = 0;
            let mut dropped: u32 = 0;
            for (seq, chunk) in readings.chunks(DNA_CHUNK_READINGS).enumerate() {
                let n = chunk.len() as u32;
                let msg = Message::StreamData {
                    chip: id,
                    seq: seq as u32,
                    payload: StreamPayload::DnaCounts {
                        readings: chunk.to_vec(),
                    },
                };
                match self.out.offer_stream(msg)? {
                    Offer::Sent => sent += n,
                    Offer::Dropped => dropped += n,
                }
            }
            StationStats::add(&self.stats.frames_served, u64::from(sent));
            StationStats::add(&self.stats.frames_dropped, u64::from(dropped));
            self.out.send_control(Message::StreamEnd {
                chip: id,
                frames_sent: sent,
                frames_dropped: dropped,
            })?;
        }
        self.out.send_control(Message::AssayResult {
            chip: id,
            counts: readout.counts.clone(),
            estimated_currents_a: readout
                .estimated_currents
                .iter()
                .map(|i| i.value())
                .collect(),
        })
    }

    fn neuro_stream(
        &mut self,
        id: ChipId,
        frames: u32,
        chunk_frames: u32,
        t0_s: f64,
        culture_spec: &bsa_link::CultureSpec,
    ) -> Result<(), Gone> {
        if frames == 0 || frames > MAX_STREAM_FRAMES {
            return self.out.send_control(error_reply(
                ErrorCode::BadRequest,
                format!("frames must be 1..={MAX_STREAM_FRAMES}"),
            ));
        }
        let t0 = if t0_s.is_finite() { t0_s } else { 0.0 };
        let chunk = if chunk_frames == 0 {
            DEFAULT_CHUNK_FRAMES as usize
        } else {
            chunk_frames as usize
        };
        let chip = match self.registry.get_mut(id) {
            Some(Chip::Neuro(chip)) => chip,
            Some(Chip::Dna { .. }) => {
                return self.out.send_control(error_reply(
                    ErrorCode::WrongChipKind,
                    "streams run on neuro chips".into(),
                ))
            }
            None => {
                return self
                    .out
                    .send_control(error_reply(ErrorCode::UnknownChip, format!("no chip {id}")))
            }
        };
        let g = chip.config().geometry;
        let (rows, cols) = (g.rows() as u16, g.cols() as u16);
        let mask = self.masks.get(&id).filter(|m| !m.is_empty()).map(|m| {
            let mut usable = vec![true; g.len()];
            for &p in m {
                if let Some(slot) = usable.get_mut(p as usize) {
                    *slot = false;
                }
            }
            PixelMask::new(g.rows(), g.cols(), usable)
        });
        let culture = culture_from_spec(culture_spec);
        // One record() call for the whole stream: the chip re-seeds its
        // deterministic RNG streams at the start of every record(), so
        // chunking must happen on the transmit side — N smaller record()
        // calls would NOT reproduce an in-process record(frames) run.
        let recording = chip.record(&culture, Seconds::new(t0), frames as usize);
        // Tee epoch for an active recording on this chip: claimed once
        // per stream request, so identical request sequences produce
        // identical segments.
        let tee_epoch = self.tee_epoch(id);
        let mut sent: u32 = 0;
        let mut dropped: u32 = 0;
        let mut outcome = Ok(());
        for (seq, chunk_frames) in recording.frames().chunks(chunk).enumerate() {
            let n = chunk_frames.len() as u32;
            let mut samples = Vec::with_capacity(chunk_frames.len() * g.len());
            for frame in chunk_frames {
                let start = samples.len();
                samples.extend_from_slice(frame.samples());
                if let Some(mask) = &mask {
                    if let Some(copy) = samples.get_mut(start..) {
                        let _ = mask.interpolate(copy);
                    }
                }
                // Persist the post-mask frame *before* the outbound
                // offer: the segment records what the chip produced for
                // the client, independent of TCP backpressure. The store
                // queue drops-and-counts on its own; I/O failures
                // surface at `StopRecording`.
                if let Some(epoch) = tee_epoch {
                    if let (Some(active), Some(frame_samples)) =
                        (self.recorders.get_mut(&id), samples.get(start..))
                    {
                        let _ = active
                            .recorder
                            .offer(epoch, encode_neuro_frame(frame_samples));
                    }
                }
            }
            let msg = Message::StreamData {
                chip: id,
                seq: seq as u32,
                payload: StreamPayload::NeuroFrames {
                    first_frame: sent + dropped,
                    rows,
                    cols,
                    samples,
                },
            };
            match self.out.offer_stream(msg) {
                Ok(Offer::Sent) => sent += n,
                Ok(Offer::Dropped) => dropped += n,
                Err(Gone) => {
                    outcome = Err(Gone);
                    break;
                }
            }
        }
        // Return the buffers to the chip's arena whatever happened.
        if let Some(Chip::Neuro(chip)) = self.registry.get_mut(id) {
            chip.recycle(recording);
        }
        StationStats::add(&self.stats.frames_served, u64::from(sent));
        StationStats::add(&self.stats.frames_dropped, u64::from(dropped));
        outcome?;
        self.out.send_control(Message::StreamEnd {
            chip: id,
            frames_sent: sent,
            frames_dropped: dropped,
        })
    }
}

fn error_reply(code: ErrorCode, message: String) -> Message {
    Message::ErrorReply { code, message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    /// Deterministic backpressure accounting at the queue level, no TCP:
    /// with a capacity-2 queue and no consumer, the first two chunks are
    /// accepted and every further offer is dropped — and the drop is
    /// visible in the stats.
    #[test]
    fn full_queue_drops_are_counted_not_buffered() {
        let stats = Arc::new(StationStats::default());
        let (tx, _rx) = sync_channel::<Message>(2);
        let out = Outbound {
            tx,
            stats: Arc::clone(&stats),
        };
        let mut sent = 0;
        let mut dropped = 0;
        for _ in 0..10 {
            match out.offer_stream(Message::Ack).unwrap() {
                Offer::Sent => sent += 1,
                Offer::Dropped => dropped += 1,
            }
        }
        assert_eq!(sent, 2);
        assert_eq!(dropped, 8);
        let snap = stats.snapshot();
        assert_eq!(snap.chunks_sent, 2);
        assert_eq!(snap.queue_peak, 3); // two enqueued + one in-flight attempt
    }

    /// A disconnected queue (writer thread gone) surfaces as `Gone` for
    /// both send flavors instead of blocking or panicking.
    #[test]
    fn disconnected_queue_reports_gone() {
        let stats = Arc::new(StationStats::default());
        let (tx, rx) = sync_channel::<Message>(1);
        drop(rx);
        let out = Outbound {
            tx,
            stats: Arc::clone(&stats),
        };
        assert!(out.send_control(Message::Ack).is_err());
        assert!(out.offer_stream(Message::Ack).is_err());
        assert_eq!(stats.queue_depth.load(Ordering::Relaxed), 0);
    }
}
