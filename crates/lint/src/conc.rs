//! `conc.*` — concurrency discipline in the serving layer.
//!
//! The station's `/stats` counters are plain `AtomicU64`s updated from
//! many session threads; the bugs worth catching are not data races (the
//! type system forbids those) but *logic* races and lock misuse:
//!
//! * `conc.atomic-rmw` — a `load` of an atomic followed, in the same fn,
//!   by a mutation of (or a `&`-escape of) the same field is a
//!   check-then-act window: another thread can interleave between the
//!   read and the write. Functions that use `compare_exchange`/
//!   `compare_exchange_weak`/`fetch_update` anywhere are exempt — that
//!   *is* the sanctioned read-modify-write shape.
//! * `conc.ordering` — one counter accessed with several different
//!   `Ordering`s across the crate usually means someone strengthened a
//!   single site and left the rest behind; pick one per counter.
//! * `conc.hold-and-block` — a blocking call (socket write, channel
//!   recv, thread join…) made after `.lock(…)` in the same fn body
//!   stalls every other thread contending for that mutex.
//!
//! Field identity is by name (`self.sessions_active` and
//! `stats.sessions_active` are the same counter); see DESIGN.md §11 for
//! the approximations this buys and costs.

use crate::parser::ParsedFile;
use crate::rules::{violation, Violation};
use crate::workspace::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Where the concurrency rules apply: the multi-threaded serving layer.
pub const STATION_PREFIX: &str = "crates/station/src/";

/// The recovery controller also gets the concurrency rules: it calls
/// blocking link requests and backoff sleeps, and must never do so
/// while holding a lock.
pub const CONTROL_PREFIX: &str = "crates/control/src/";

/// The frame store runs a dedicated writer thread behind a bounded
/// queue, so it gets the concurrency rules too.
pub const STORE_PREFIX: &str = "crates/store/src/";

/// Atomic methods that carry an `Ordering` argument.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Methods that mutate the atomic's value.
const MUTATORS: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
];

/// The sanctioned read-modify-write primitives: their presence in a fn
/// exempts it from `conc.atomic-rmw`.
const RMW_PRIMITIVES: &[&str] = &["compare_exchange", "compare_exchange_weak", "fetch_update"];

/// Calls that block the current thread (socket/channel/thread APIs used in
/// this workspace).
const BLOCKING_CALLS: &[&str] = &[
    "write_all",
    "write_message",
    "read_message",
    "read_exact",
    "read_to_end",
    "recv",
    "recv_timeout",
    "send",
    "join",
    "accept",
    "flush",
    "wait",
    "wait_timeout",
    "park",
    "sleep",
];

/// One atomic operation site inside a fn body.
struct AtomicOp {
    field: String,
    method: String,
    line: usize,
    /// Absolute token index of the method ident.
    pos: usize,
    orderings: Vec<String>,
}

/// Runs the concurrency rules over files under `prefix`. `sources` and
/// `parsed` must be index-aligned.
pub fn conc_pass(
    sources: &[SourceFile],
    parsed: &[ParsedFile],
    prefix: &str,
    out: &mut Vec<Violation>,
) {
    // (field -> orderings seen, with first site for the report).
    let mut orderings: BTreeMap<String, (BTreeSet<String>, String, usize)> = BTreeMap::new();

    for (fi, pf) in parsed.iter().enumerate() {
        if !pf.path.starts_with(prefix) {
            continue;
        }
        let Some(src) = sources.get(fi) else { continue };
        for f in &pf.fns {
            let ops = collect_ops(&src.tokens, f.body.clone());
            for op in &ops {
                let entry = orderings
                    .entry(op.field.clone())
                    .or_insert_with(|| (BTreeSet::new(), pf.path.clone(), op.line));
                entry.0.extend(op.orderings.iter().cloned());
            }
            rmw_check(&src.tokens, f.body.clone(), &ops, &pf.path, out);
            hold_and_block_check(&src.tokens, f.body.clone(), &pf.path, out);
        }
    }

    for (field, (set, file, line)) in &orderings {
        if set.len() > 1 {
            let list = set.iter().cloned().collect::<Vec<_>>().join(", ");
            out.push(violation(
                file,
                *line,
                "conc.ordering",
                format!(
                    "atomic `{field}` is accessed with mixed memory orderings ({list}); \
                     pick one ordering per counter"
                ),
            ));
        }
    }
}

/// Finds `receiver.method(… Ordering::X …)` atomic operations in a body.
fn collect_ops(tokens: &[crate::lexer::Token], body: std::ops::Range<usize>) -> Vec<AtomicOp> {
    let mut ops = Vec::new();
    for k in body {
        let Some(t) = tokens.get(k) else { break };
        let Some(name) = t.ident() else { continue };
        if !ATOMIC_METHODS.contains(&name) {
            continue;
        }
        let dotted = k
            .checked_sub(1)
            .and_then(|p| tokens.get(p))
            .is_some_and(|t| t.is_punct('.'));
        let called = matches!(tokens.get(k + 1), Some(t) if t.is_punct('('));
        if !dotted || !called {
            continue;
        }
        let Some(field) = k
            .checked_sub(2)
            .and_then(|p| tokens.get(p))
            .and_then(|t| t.ident())
        else {
            continue;
        };
        let ords = argument_orderings(tokens, k + 1);
        if ords.is_empty() {
            // `load`/`swap`/… on a non-atomic receiver (Vec::swap, a file
            // read…) — not our business.
            continue;
        }
        ops.push(AtomicOp {
            field: field.to_string(),
            method: name.to_string(),
            line: t.line,
            pos: k,
            orderings: ords,
        });
    }
    ops
}

/// Collects `Ordering::X` idents inside the balanced argument list opening
/// at `open` (which must be a `(`).
fn argument_orderings(tokens: &[crate::lexer::Token], open: usize) -> Vec<String> {
    let mut ords = Vec::new();
    let mut depth = 0usize;
    let mut k = open;
    while let Some(t) = tokens.get(k) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                break;
            }
        } else if t.is_ident("Ordering") {
            let colons = matches!(tokens.get(k + 1), Some(t) if t.is_punct(':'))
                && matches!(tokens.get(k + 2), Some(t) if t.is_punct(':'));
            if colons {
                if let Some(v) = tokens.get(k + 3).and_then(|t| t.ident()) {
                    ords.push(v.to_string());
                }
            }
        }
        k += 1;
    }
    ords
}

/// `conc.atomic-rmw`: a `load` followed by a mutation or `&`-escape of the
/// same field later in the body.
fn rmw_check(
    tokens: &[crate::lexer::Token],
    body: std::ops::Range<usize>,
    ops: &[AtomicOp],
    file: &str,
    out: &mut Vec<Violation>,
) {
    if ops
        .iter()
        .any(|o| RMW_PRIMITIVES.contains(&o.method.as_str()))
    {
        return;
    }
    for load in ops.iter().filter(|o| o.method == "load") {
        let mutated = ops.iter().any(|o| {
            o.pos > load.pos && o.field == load.field && MUTATORS.contains(&o.method.as_str())
        });
        let escaped = field_escapes_after(tokens, body.clone(), load.pos, &load.field);
        if mutated || escaped {
            out.push(violation(
                file,
                load.line,
                "conc.atomic-rmw",
                format!(
                    "atomic `{}` is `load`ed and then modified in the same fn — another \
                     thread can interleave; use a single RMW op or a compare_exchange loop",
                    load.field
                ),
            ));
        }
    }
}

/// `true` if `field` is passed by reference (to a helper that can mutate
/// it) after token `after` within the body: ident preceded by `.` or `&`
/// and followed by `,` or `)`.
fn field_escapes_after(
    tokens: &[crate::lexer::Token],
    body: std::ops::Range<usize>,
    after: usize,
    field: &str,
) -> bool {
    for k in body {
        if k <= after {
            continue;
        }
        let Some(t) = tokens.get(k) else { break };
        if !t.is_ident(field) {
            continue;
        }
        let prev_ok = k
            .checked_sub(1)
            .and_then(|p| tokens.get(p))
            .is_some_and(|t| t.is_punct('.') || t.is_punct('&'));
        let next_ok = matches!(tokens.get(k + 1), Some(t) if t.is_punct(',') || t.is_punct(')'));
        if prev_ok && next_ok {
            return true;
        }
    }
    false
}

/// `conc.hold-and-block`: a blocking call after a `.lock(` in the same fn.
fn hold_and_block_check(
    tokens: &[crate::lexer::Token],
    body: std::ops::Range<usize>,
    file: &str,
    out: &mut Vec<Violation>,
) {
    let mut lock_pos: Option<usize> = None;
    for k in body {
        let Some(t) = tokens.get(k) else { break };
        let Some(name) = t.ident() else { continue };
        let dotted = k
            .checked_sub(1)
            .and_then(|p| tokens.get(p))
            .is_some_and(|t| t.is_punct('.'));
        let called = matches!(tokens.get(k + 1), Some(t) if t.is_punct('('));
        if !called {
            continue;
        }
        if dotted && name == "lock" {
            lock_pos = Some(k);
            continue;
        }
        if let Some(lp) = lock_pos {
            if k > lp && BLOCKING_CALLS.contains(&name) {
                out.push(violation(
                    file,
                    t.line,
                    "conc.hold-and-block",
                    format!(
                        "blocking call `{name}` after `.lock()` in the same fn; \
                         drop the guard (or clone the data out) before blocking"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};
    use crate::parser::parse_file;

    fn run(src: &str) -> Vec<Violation> {
        let source = SourceFile {
            path: "crates/station/src/test.rs".to_string(),
            tokens: strip_test_code(&lex(src)),
        };
        let parsed = parse_file(&source.path, &source.tokens);
        let mut out = Vec::new();
        conc_pass(&[source], &[parsed], STATION_PREFIX, &mut out);
        out
    }

    #[test]
    fn load_then_store_is_flagged() {
        let src = r#"
            fn bump(&self) {
                let n = self.count.load(Ordering::Relaxed);
                self.count.store(n + 1, Ordering::Relaxed);
            }
        "#;
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:#?}");
        let f = v.first().expect("one");
        assert_eq!(f.rule, "conc.atomic-rmw");
        assert_eq!(f.line, 3);
    }

    #[test]
    fn load_then_ref_escape_is_flagged() {
        let src = r#"
            fn admit(&self) -> bool {
                let active = self.sessions.load(Ordering::Relaxed);
                if active >= self.max { return false; }
                Stats::add(&self.sessions, 1);
                true
            }
        "#;
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v.first().expect("one").rule, "conc.atomic-rmw");
    }

    #[test]
    fn compare_exchange_loop_is_exempt() {
        let src = r#"
            fn sub(&self) {
                let mut cur = self.count.load(Ordering::Relaxed);
                loop {
                    let next = cur.saturating_sub(1);
                    match self.count.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                        Ok(_) => return,
                        Err(now) => cur = now,
                    }
                }
            }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn fetch_add_alone_and_plain_reads_are_fine() {
        let src = r#"
            fn add(&self) { self.count.fetch_add(1, Ordering::Relaxed); }
            fn read(&self) -> u64 { self.count.load(Ordering::Relaxed) }
            fn both(&self) -> u64 {
                self.other.fetch_add(1, Ordering::Relaxed);
                self.count.load(Ordering::Relaxed)
            }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn non_atomic_receivers_are_ignored() {
        // Vec::swap / slice load-alikes carry no Ordering argument.
        let src = "fn f(v: &mut Vec<u8>) { v.swap(0, 1); let x = file.read_exact(&mut buf); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn mixed_orderings_on_one_field_are_flagged_once() {
        let src = r#"
            fn a(&self) { self.flag.store(true, Ordering::SeqCst); }
            fn b(&self) -> bool { self.flag.load(Ordering::Relaxed) }
            fn c(&self) -> bool { self.flag.load(Ordering::Relaxed) }
        "#;
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:#?}");
        let f = v.first().expect("one");
        assert_eq!(f.rule, "conc.ordering");
        assert!(f.message.contains("Relaxed") && f.message.contains("SeqCst"));
    }

    #[test]
    fn blocking_call_under_lock_is_flagged() {
        let src = r#"
            fn broadcast(&self, msg: &[u8]) {
                let peers = self.peers.lock();
                for p in peers.iter() {
                    p.write_all(msg);
                }
            }
        "#;
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:#?}");
        let f = v.first().expect("one");
        assert_eq!(f.rule, "conc.hold-and-block");
        assert!(f.message.contains("write_all"));
    }

    #[test]
    fn blocking_before_lock_or_without_lock_is_fine() {
        let src = r#"
            fn ok(&self, msg: &[u8]) {
                self.stream.write_all(msg);
                let n = self.peers.lock();
            }
            fn plain(&self, msg: &[u8]) { self.stream.write_all(msg); }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn out_of_prefix_files_are_skipped() {
        let src = "fn f(&self) { let n = self.c.load(Ordering::Relaxed); self.c.store(n, Ordering::Relaxed); }";
        let source = SourceFile {
            path: "crates/core/src/lib.rs".to_string(),
            tokens: strip_test_code(&lex(src)),
        };
        let parsed = parse_file(&source.path, &source.tokens);
        let mut out = Vec::new();
        conc_pass(&[source], &[parsed], STATION_PREFIX, &mut out);
        assert!(out.is_empty());
    }
}
