// Tests unwrap idiomatically; the workspace-level `clippy::unwrap_used`
// only polices non-test code (bsa-lint enforces the same split).
#![cfg_attr(test, allow(clippy::unwrap_used))]
//! Readout signal processing for the biosensor arrays.
//!
//! The chips deliver raw digitized data — frame counts from the DNA
//! microarray, multiplexed voltage samples from the neural array. This
//! crate turns that into the quantities the paper's applications need:
//!
//! * [`stats`] — robust statistics (Welford, median/MAD, percentiles);
//! * [`filter`] — biquad/Butterworth IIR and moving-average FIR filters;
//! * [`spike`] — action-potential detection (threshold and NEO) and
//!   detection scoring against ground truth;
//! * [`frames`] — per-pixel baseline removal and activity maps over frame
//!   stacks from the 128×128 array;
//! * [`masking`] — dead-pixel masking and neighbor interpolation driven
//!   by the chip-side health monitor's usability mask;
//! * [`sorting`] — spike sorting: separating units that share a pixel;
//! * [`spectrum`] — periodograms and noise-floor estimation;
//! * [`snr`] — signal-to-noise estimation;
//! * [`calling`] — hybridization match/mismatch calling on the DNA chip's
//!   per-site current estimates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calling;
pub mod error;
pub mod filter;
pub mod frames;
pub mod masking;
pub mod snr;
pub mod sorting;
pub mod spectrum;
pub mod spike;
pub mod stats;
