//! Seeded determinism violations. This file is a lint fixture: it is never
//! compiled, only lexed by the self-tests. Every line carrying a tilde-comment
//! marker must be flagged with exactly that rule (repeat the marker for
//! multiple expected violations on one line); unmarked lines must be clean.

use std::collections::HashMap; //~ det.hash-collection
use std::time::Instant; //~ det.time

pub fn timestamped_scan(frames: usize) -> f64 {
    let started = Instant::now(); //~ det.time
    let mut totals: HashMap<usize, f64> = HashMap::new(); //~ det.hash-collection //~ det.hash-collection
    for f in 0..frames {
        totals.insert(f, f as f64);
    }
    started.elapsed().as_secs_f64()
}

pub fn noisy_offset() -> f64 {
    let mut rng = rand::thread_rng(); //~ det.rng
    let jitter: f64 = rand::random(); //~ det.rng
    rng.gen::<f64>() + jitter
}

pub fn wall_clock_epoch() -> u64 {
    let t = SystemTime::now(); //~ det.time
    t.elapsed().as_secs()
}

pub fn hash_dedup(ids: &[u32]) -> usize {
    let seen: HashSet<u32> = ids.iter().copied().collect(); //~ det.hash-collection
    seen.len()
}

pub fn thread_order_sum(x: &[f64]) -> f64 {
    x.par_iter().map(|v| v * v).sum() //~ det.unordered-reduce
}

pub fn thread_order_reduce(x: &[f64]) -> f64 {
    x.into_par_iter().reduce(|| 0.0, |a, b| a + b) //~ det.unordered-reduce
}

pub fn ordered_is_fine(x: &[f64]) -> Vec<f64> {
    x.par_iter().map(|v| v * 2.0).collect()
}
