//! The assembled 16×8 DNA-microarray chip.
//!
//! Combines the 128 in-pixel converters with the periphery the paper lists
//! for Fig. 4: "bandgap and current references, auto-calibration circuits,
//! D/A-converters to provide the required voltages for the electrochemical
//! operation, and 6 pin interface for power supply and serial digital data
//! transmission". Process: L_min = 0.5 µm, t_ox = 15 nm, V_DD = 5 V.

use super::calibration::{CalibrationReport, GainCalibration};
use super::interface::{
    decode_frames_lenient, encode_frames, PixelReading, SerialError, WORD_BITS,
};
use super::pixel::{DnaPixel, DnaPixelConfig, PixelVariation};
use crate::array::{ArrayGeometry, PixelAddress};
use crate::error::ChipError;
use crate::health::{HealthMonitor, PixelHealth, SerialLinkStats, YieldReport};
use crate::scan::{conversion_stream_seed, resolve_threads, ScanOptions};
use bsa_circuit::dac::Dac;
use bsa_circuit::reference::BandgapReference;
use bsa_electrochem::assay::{AssayConditions, SpottedSite};
use bsa_electrochem::redox::RedoxCyclingModel;
use bsa_electrochem::sequence::DnaSequence;
use bsa_faults::{CompiledFaults, SerialCorruptor};
use bsa_units::{Ampere, Molar, Seconds, Volt};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a DNA chip instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnaChipConfig {
    /// Array geometry (default: the paper's 16×8).
    pub geometry: ArrayGeometry,
    /// Nominal pixel design values.
    pub pixel: DnaPixelConfig,
    /// Measurement frame duration.
    pub frame_time: Seconds,
    /// Auto-calibration settings.
    pub calibration: GainCalibration,
    /// Electrochemical site model (electrode + label + cycling).
    pub redox: RedoxCyclingModel,
    /// Assay protocol conditions.
    pub assay: AssayConditions,
    /// Seed for all device mismatch and noise on this die.
    pub seed: u64,
}

impl Default for DnaChipConfig {
    fn default() -> Self {
        Self {
            geometry: ArrayGeometry::dna_16x8(),
            pixel: DnaPixelConfig::default(),
            frame_time: Seconds::new(10.0),
            calibration: GainCalibration::default(),
            redox: RedoxCyclingModel::default(),
            assay: AssayConditions::default(),
            seed: 0xD9A_C819,
        }
    }
}

/// An analyte sample: target species and their concentrations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SampleMix {
    targets: Vec<(DnaSequence, Molar)>,
}

impl SampleMix {
    /// Creates an empty sample (pure buffer).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a target species at the given concentration.
    #[must_use]
    pub fn with_target(mut self, seq: DnaSequence, c: Molar) -> Self {
        self.targets.push((seq, c));
        self
    }

    /// The target species.
    pub fn targets(&self) -> &[(DnaSequence, Molar)] {
        &self.targets
    }
}

/// Complete readout of one assay run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssayReadout {
    geometry: ArrayGeometry,
    /// Final surface coverage θ per site (ground truth).
    pub coverages: Vec<f64>,
    /// True (noisy) sensor currents per site.
    pub true_currents: Vec<Ampere>,
    /// Digitized frame counts per site.
    pub counts: Vec<u64>,
    /// Off-chip current estimates recovered from the counts.
    pub estimated_currents: Vec<Ampere>,
}

impl AssayReadout {
    /// The array geometry of this readout.
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    /// The estimate at a pixel address.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::AddressOutOfRange`] for addresses outside the
    /// array.
    pub fn estimate_at(&self, addr: PixelAddress) -> Result<Ampere, ChipError> {
        Ok(self.estimated_currents[self.geometry.index_of(addr)?])
    }

    /// Converts the counts to serial-interface pixel readings in scan
    /// order.
    pub fn to_readings(&self) -> Vec<PixelReading> {
        self.geometry
            .iter()
            .zip(self.counts.iter())
            .map(|(address, &count)| PixelReading { address, count })
            .collect()
    }
}

/// Time-resolved readout of the hybridization phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KineticReadout {
    /// Times into the hybridization phase.
    pub times: Vec<Seconds>,
    /// Ground-truth coverage per timepoint (outer) and site (inner).
    pub coverages: Vec<Vec<f64>>,
    /// Estimated currents per timepoint and site.
    pub currents: Vec<Vec<Ampere>>,
}

impl KineticReadout {
    /// Association time series of one site: (t, estimated current).
    pub fn site_series(&self, site: usize) -> Vec<(Seconds, Ampere)> {
        self.times
            .iter()
            .zip(self.currents.iter())
            .map(|(t, row)| (*t, row[site]))
            .collect()
    }

    /// Time at which a site first crosses `fraction` of its final current
    /// (`None` if it never does).
    pub fn time_to_fraction(&self, site: usize, fraction: f64) -> Option<Seconds> {
        let last = self.currents.last()?.get(site)?.value();
        let threshold = fraction.clamp(0.0, 1.0) * last;
        self.times
            .iter()
            .zip(self.currents.iter())
            .find(|(_, row)| row[site].value() >= threshold)
            .map(|(t, _)| *t)
    }
}

/// Result of a fault-tolerant serial readout
/// ([`DnaChip::serial_readout_robust`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RobustReadout {
    /// Per-word outcome in scan order; `None` = still corrupt after the
    /// re-read budget was exhausted.
    pub words: Vec<Option<PixelReading>>,
    /// Link statistics for the transfer.
    pub stats: SerialLinkStats,
    /// Decode error of the first unrecoverable word, if any.
    pub first_error: Option<SerialError>,
}

impl RobustReadout {
    /// `true` if every word was eventually received intact.
    pub fn is_complete(&self) -> bool {
        self.stats.unrecovered_words == 0
    }

    /// The readings, requiring a complete transfer.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::SerialUnrecoverable`] if any word stayed
    /// corrupt after the re-read budget.
    pub fn into_readings(self) -> Result<Vec<PixelReading>, ChipError> {
        match self.first_error {
            Some(last) => Err(ChipError::SerialUnrecoverable {
                failed_words: self.stats.unrecovered_words,
                rereads: self.stats.rereads,
                last,
            }),
            None => Ok(self.words.into_iter().flatten().collect()),
        }
    }
}

/// Flips bits of an encoded stream word-by-word with the corruptor's
/// per-bit error process (the physical model of a marginal serial link).
fn corrupt_stream(bits: &mut [bool], corruptor: &mut SerialCorruptor) {
    if corruptor.rate() <= 0.0 {
        return;
    }
    for chunk in bits.chunks_mut(WORD_BITS as usize) {
        let mut word = 0u64;
        for &b in chunk.iter() {
            word = (word << 1) | b as u64;
        }
        let (corrupted, _) = corruptor.corrupt(word, chunk.len() as u32);
        let width = chunk.len();
        for (k, b) in chunk.iter_mut().enumerate() {
            *b = (corrupted >> (width - 1 - k)) & 1 == 1;
        }
    }
}

/// A DNA-microarray chip instance (one die, with its own mismatch).
#[derive(Debug, Clone)]
pub struct DnaChip {
    config: DnaChipConfig,
    pixels: Vec<DnaPixel>,
    probes: Vec<Option<DnaSequence>>,
    bandgap: BandgapReference,
    electrode_dac: Dac,
    rng: SmallRng,
    calibrated: bool,
    faults: CompiledFaults,
    health: HealthMonitor,
    link_stats: SerialLinkStats,
    /// Counts array-wide conversions; each one seeds a fresh family of
    /// per-pixel noise streams, so repeated measurements draw fresh noise
    /// yet the whole sequence is reproducible for any thread count.
    conversion_epoch: u64,
    /// Worker-thread request for array-wide conversions (`None` = auto).
    scan_threads: Option<usize>,
}

impl DnaChip {
    /// Instantiates a die: samples per-pixel mismatch from the seed and
    /// builds the periphery.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError`] if the configuration is internally invalid.
    pub fn new(config: DnaChipConfig) -> Result<Self, ChipError> {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let n = config.geometry.len();
        let pixels = (0..n)
            .map(|_| {
                DnaPixel::with_variation(config.pixel.clone(), PixelVariation::sample(&mut rng))
            })
            .collect();
        // 8-bit DAC over 0 … 2.5 V provides the electrochemical potentials.
        let electrode_dac =
            Dac::new(8, Volt::ZERO, Volt::new(2.5))?.with_element_mismatch(0.002, &mut rng);
        Ok(Self {
            pixels,
            probes: vec![None; n],
            bandgap: BandgapReference::typical_5v(),
            electrode_dac,
            rng,
            calibrated: false,
            faults: CompiledFaults::none(config.geometry.rows(), config.geometry.cols()),
            health: HealthMonitor::all_healthy(config.geometry),
            link_stats: SerialLinkStats::default(),
            conversion_epoch: 0,
            scan_threads: None,
            config,
        })
    }

    /// Sets the worker-thread request for array-wide conversions:
    /// `None` = all available threads, `Some(1)` = serial. Counts are
    /// identical for every setting (per-pixel noise streams).
    pub fn set_scan_threads(&mut self, threads: Option<usize>) {
        self.scan_threads = threads;
    }

    /// The chip configuration.
    pub fn config(&self) -> &DnaChipConfig {
        &self.config
    }

    /// Array geometry.
    pub fn geometry(&self) -> ArrayGeometry {
        self.config.geometry
    }

    /// Whether auto-calibration has run on this die.
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// The pixel at an address.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::AddressOutOfRange`] for bad addresses.
    pub fn pixel(&self, addr: PixelAddress) -> Result<&DnaPixel, ChipError> {
        Ok(&self.pixels[self.config.geometry.index_of(addr)?])
    }

    /// Working-electrode potential produced by the on-chip DAC for a code,
    /// referenced to the bandgap.
    pub fn electrode_voltage(&self, dac_code: u32) -> Volt {
        // Line regulation: the DAC reference tracks the bandgap.
        let bg = self
            .bandgap
            .output(bsa_units::consts::ROOM_TEMPERATURE, Volt::new(5.0));
        let nominal_bg = 1.205;
        self.electrode_dac.output(dac_code) * (bg.value() / nominal_bg)
    }

    /// Spots a probe onto a site (immobilization, paper Fig. 2 a–c).
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::AddressOutOfRange`] for bad addresses.
    pub fn spot(&mut self, addr: PixelAddress, probe: DnaSequence) -> Result<(), ChipError> {
        let i = self.config.geometry.index_of(addr)?;
        self.probes[i] = Some(probe);
        Ok(())
    }

    /// Spots probes across the whole array in scan order; shorter slices
    /// leave the remaining sites bare.
    pub fn spot_all(&mut self, probes: &[DnaSequence]) {
        for (slot, p) in self.probes.iter_mut().zip(probes.iter()) {
            *slot = Some(p.clone());
        }
    }

    /// The probe at a site, if spotted.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::AddressOutOfRange`] for bad addresses.
    pub fn probe_at(&self, addr: PixelAddress) -> Result<Option<&DnaSequence>, ChipError> {
        Ok(self.probes[self.config.geometry.index_of(addr)?].as_ref())
    }

    /// Injects a compiled fault map into the die: every pixel takes on its
    /// planned defects, and the map's serial-link state drives
    /// [`serial_readout_robust`](Self::serial_readout_robust). Channel-loss
    /// faults are inert on this chip (the DNA array has no multiplexer);
    /// they only matter on the neuro chip.
    ///
    /// Re-run [`auto_calibrate`](Self::auto_calibrate) afterwards so the
    /// health monitor reflects the new defects.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::FaultGeometryMismatch`] if the map was compiled
    /// for a different array geometry.
    pub fn inject_faults(&mut self, faults: &CompiledFaults) -> Result<(), ChipError> {
        let g = self.config.geometry;
        if faults.rows() != g.rows() || faults.cols() != g.cols() {
            return Err(ChipError::FaultGeometryMismatch {
                map: (faults.rows(), faults.cols()),
                chip: (g.rows(), g.cols()),
            });
        }
        for (pixel, &f) in self.pixels.iter_mut().zip(faults.pixels().iter()) {
            pixel.set_faults(f);
        }
        self.faults = faults.clone();
        Ok(())
    }

    /// The fault map currently injected (fault-free for a pristine die).
    pub fn faults(&self) -> &CompiledFaults {
        &self.faults
    }

    /// Per-pixel health as established by the last
    /// [`auto_calibrate`](Self::auto_calibrate) run.
    pub fn health(&self) -> &HealthMonitor {
        &self.health
    }

    /// Serial-link statistics from the last
    /// [`serial_readout_robust`](Self::serial_readout_robust) call.
    pub fn link_stats(&self) -> SerialLinkStats {
        self.link_stats
    }

    /// Runs the periphery auto-calibration over all pixels, retrying every
    /// first-pass failure with [escalated](GainCalibration::escalated)
    /// settings (8× reference current, 4× integration window, relaxed
    /// limit). Pixels recovered by escalation are classified
    /// [`PixelHealth::OutOfFamily`]; the rest are masked
    /// [`PixelHealth::Dead`] in [`health`](Self::health).
    pub fn auto_calibrate(&mut self) -> CalibrationReport {
        let report = self.config.calibration.run(&mut self.pixels, &mut self.rng);
        let mut health = HealthMonitor::all_healthy(self.config.geometry);
        let escalated = self.config.calibration.escalated();
        for &i in &report.dead_pixels {
            let state = match escalated.retry_pixel(&mut self.pixels[i], &mut self.rng) {
                Some(_) => PixelHealth::OutOfFamily,
                None => PixelHealth::Dead,
            };
            health.set_state(i, state);
        }
        self.health = health;
        self.calibrated = true;
        report
    }

    /// The shared conversion core: digitizes one current per pixel
    /// through the in-pixel sawtooth converters, each pixel drawing its
    /// counting noise from a deterministic per-pixel stream for this
    /// conversion epoch, fanning the pixels out over the scan workers.
    fn convert_all(&mut self, currents: &[Ampere], counts: &mut Vec<u64>) {
        debug_assert_eq!(currents.len(), self.pixels.len());
        let frame = self.config.frame_time;
        let seed = self.config.seed;
        let epoch = self.conversion_epoch;
        self.conversion_epoch += 1;
        let n = self.pixels.len();
        counts.clear();
        counts.resize(n, 0);
        let threads = resolve_threads(
            n,
            ScanOptions {
                threads: self.scan_threads,
                ..ScanOptions::default()
            },
        );

        let convert_run =
            |base: usize, pixels: &mut [DnaPixel], currents: &[Ampere], counts: &mut [u64]| {
                for (k, ((p, &i), c)) in pixels
                    .iter_mut()
                    .zip(currents.iter())
                    .zip(counts.iter_mut())
                    .enumerate()
                {
                    let mut rng =
                        SmallRng::seed_from_u64(conversion_stream_seed(seed, epoch, base + k));
                    *c = p.convert(i, frame, &mut rng).count;
                }
            };

        if threads <= 1 {
            convert_run(0, &mut self.pixels, currents, counts);
            return;
        }
        #[cfg(feature = "parallel")]
        {
            let per = n.div_ceil(threads);
            rayon::scope(|s| {
                for (g, ((pch, cch), och)) in self
                    .pixels
                    .chunks_mut(per)
                    .zip(currents.chunks(per))
                    .zip(counts.chunks_mut(per))
                    .enumerate()
                {
                    s.spawn(move |_| convert_run(g * per, pch, cch, och));
                }
            });
        }
        #[cfg(not(feature = "parallel"))]
        convert_run(0, &mut self.pixels, currents, counts);
    }

    /// Digitizes externally supplied sensor currents (one per site, scan
    /// order) — the electrical-characterization mode used to sweep the
    /// converter transfer curve.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::LengthMismatch`] unless exactly one current per
    /// pixel is supplied.
    pub fn measure_currents(&mut self, currents: &[Ampere]) -> Result<Vec<u64>, ChipError> {
        let mut counts = Vec::with_capacity(currents.len());
        self.measure_currents_into(currents, &mut counts)?;
        Ok(counts)
    }

    /// Allocation-free variant of [`measure_currents`](Self::measure_currents):
    /// digitizes into a caller-provided buffer (cleared and refilled), so
    /// a measurement loop reuses one buffer instead of allocating per
    /// frame.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::LengthMismatch`] unless exactly one current per
    /// pixel is supplied.
    pub fn measure_currents_into(
        &mut self,
        currents: &[Ampere],
        counts: &mut Vec<u64>,
    ) -> Result<(), ChipError> {
        if currents.len() != self.pixels.len() {
            return Err(ChipError::LengthMismatch {
                expected: self.pixels.len(),
                got: currents.len(),
            });
        }
        self.convert_all(currents, counts);
        Ok(())
    }

    /// Recovers current estimates from counts using each pixel's
    /// calibration state.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::LengthMismatch`] unless exactly one count per
    /// pixel is supplied.
    pub fn estimate_currents(&self, counts: &[u64]) -> Result<Vec<Ampere>, ChipError> {
        if counts.len() != self.pixels.len() {
            return Err(ChipError::LengthMismatch {
                expected: self.pixels.len(),
                got: counts.len(),
            });
        }
        Ok(counts
            .iter()
            .zip(self.pixels.iter())
            .map(|(&c, p)| p.estimate_current(c, self.config.frame_time))
            .collect())
    }

    /// Runs the complete assay (hybridization → wash → redox readout →
    /// in-pixel conversion) against a sample.
    pub fn run_assay(&mut self, sample: &SampleMix) -> AssayReadout {
        let n = self.config.geometry.len();
        let mut coverages = Vec::with_capacity(n);
        for i in 0..n {
            let theta = match &self.probes[i] {
                None => 0.0,
                Some(probe) => {
                    let site = SpottedSite::new(probe.clone());
                    let mut total = 0.0;
                    for (target, c) in sample.targets() {
                        total += site.run(target, *c, &self.config.assay).final_coverage;
                    }
                    total.clamp(0.0, 1.0)
                }
            };
            coverages.push(theta);
        }

        let frame = self.config.frame_time;
        let mut true_currents = Vec::with_capacity(n);
        for theta in &coverages {
            let i_sensor = self
                .config
                .redox
                .sample_current(*theta, frame, &mut self.rng)
                .max(Ampere::from_femto(1.0));
            true_currents.push(i_sensor);
        }
        let mut counts = Vec::with_capacity(n);
        self.convert_all(&true_currents, &mut counts);
        // `convert_all` produced exactly one count per pixel, so the
        // length check in `estimate_currents` cannot fire — estimate
        // directly instead of unwrapping a Result.
        let estimated_currents = counts
            .iter()
            .zip(self.pixels.iter())
            .map(|(&c, p)| p.estimate_current(c, frame))
            .collect();

        AssayReadout {
            geometry: self.config.geometry,
            coverages,
            true_currents,
            counts,
            estimated_currents,
        }
    }

    /// Serializes counts through the 6-pin interface (DOUT bit stream).
    pub fn serial_readout(&self, readout: &AssayReadout) -> Vec<bool> {
        encode_frames(&readout.to_readings())
    }

    /// Fault-tolerant serial readout: transmits every word through the
    /// (possibly corrupt) link, decodes leniently, then re-requests only
    /// the words that failed their CRC, up to `max_rereads` extra passes.
    /// The resulting [`SerialLinkStats`] are kept on the chip for
    /// [`yield_report`](Self::yield_report).
    pub fn serial_readout_robust(
        &mut self,
        readout: &AssayReadout,
        max_rereads: usize,
    ) -> RobustReadout {
        let readings = readout.to_readings();
        let n = readings.len();
        let mut corruptor = self.faults.serial_corruptor();
        let mut words: Vec<Option<PixelReading>> = vec![None; n];
        let mut word_errors: Vec<Option<SerialError>> = vec![None; n];
        let mut pending: Vec<usize> = (0..n).collect();
        let mut stats = SerialLinkStats::default();

        for pass in 0..=max_rereads {
            if pending.is_empty() {
                break;
            }
            if pass > 0 {
                stats.rereads += 1;
            }
            let subset: Vec<PixelReading> = pending.iter().map(|&i| readings[i]).collect();
            let mut bits = encode_frames(&subset);
            corrupt_stream(&mut bits, &mut corruptor);
            let verdicts = decode_frames_lenient(&bits);
            let mut still = Vec::new();
            for (&idx, verdict) in pending.iter().zip(verdicts.iter()) {
                match verdict {
                    Ok(r) => {
                        words[idx] = Some(*r);
                        word_errors[idx] = None;
                        if pass == 0 {
                            stats.clean_words += 1;
                        } else {
                            stats.recovered_words += 1;
                        }
                    }
                    Err(e) => {
                        word_errors[idx] = Some(e.clone());
                        still.push(idx);
                    }
                }
            }
            pending = still;
        }

        stats.unrecovered_words = pending.len();
        self.link_stats = stats;
        let first_error = pending.first().and_then(|&idx| word_errors[idx].clone());
        RobustReadout {
            words,
            stats,
            first_error,
        }
    }

    /// Summarizes the die: per-pixel health from the last calibration,
    /// injected fault counts from the compiled plan, and serial-link
    /// statistics from the last robust readout.
    pub fn yield_report(&self) -> YieldReport {
        YieldReport::new(
            &self.health,
            Vec::new(), // the DNA chip has no multiplexed channels to lose
            0,
            self.faults.injected_counts().clone(),
            self.link_stats,
        )
    }

    /// Monitors hybridization *kinetics*: reads the whole array at each of
    /// the given times into the hybridization phase (no washing), giving
    /// the association curves electrochemical chips can record in real
    /// time. Timepoints should be ascending.
    pub fn monitor_hybridization(
        &mut self,
        sample: &SampleMix,
        timepoints: &[Seconds],
    ) -> KineticReadout {
        let n = self.config.geometry.len();
        let mut coverages = Vec::with_capacity(timepoints.len());
        let mut currents = Vec::with_capacity(timepoints.len());
        // Reused across timepoints so the kinetic loop does not allocate
        // per frame.
        let mut sensor_currents: Vec<Ampere> = Vec::with_capacity(n);
        let mut counts: Vec<u64> = Vec::with_capacity(n);
        for &t in timepoints {
            let mut theta_t = Vec::with_capacity(n);
            for probe in &self.probes {
                let theta = match probe {
                    None => 0.0,
                    Some(p) => {
                        let active = self.config.assay.immobilization_yield.clamp(0.0, 1.0);
                        let mut total = 0.0;
                        for (target, c) in sample.targets() {
                            total += self.config.assay.model.coverage_after(
                                p,
                                target,
                                *c,
                                self.config.assay.temperature,
                                0.0,
                                t,
                            );
                        }
                        (total * active).clamp(0.0, 1.0)
                    }
                };
                theta_t.push(theta);
            }
            let frame = self.config.frame_time;
            sensor_currents.clear();
            for theta in &theta_t {
                let i_sensor = self
                    .config
                    .redox
                    .sample_current(*theta, frame, &mut self.rng)
                    .max(Ampere::from_femto(1.0));
                sensor_currents.push(i_sensor);
            }
            self.convert_all(&sensor_currents, &mut counts);
            let i_t: Vec<Ampere> = self
                .pixels
                .iter()
                .zip(counts.iter())
                .map(|(pixel, &c)| pixel.estimate_current(c, frame))
                .collect();
            coverages.push(theta_t);
            currents.push(i_t);
        }
        KineticReadout {
            times: timepoints.to_vec(),
            coverages,
            currents,
        }
    }

    /// Access to the die's RNG, for callers that need reproducible
    /// follow-on sampling tied to this die.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna_chip::interface::decode_frames;

    fn chip() -> DnaChip {
        DnaChip::new(DnaChipConfig::default()).unwrap()
    }

    fn probe_set(n: usize, seed: u64) -> Vec<DnaSequence> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| DnaSequence::random(20, &mut rng)).collect()
    }

    #[test]
    fn die_has_128_distinct_pixels() {
        let c = chip();
        assert_eq!(c.geometry().len(), 128);
        let v0 = c
            .pixel(PixelAddress::new(0, 0))
            .unwrap()
            .variation()
            .c_int_rel_err;
        let v1 = c
            .pixel(PixelAddress::new(0, 1))
            .unwrap()
            .variation()
            .c_int_rel_err;
        assert_ne!(v0, v1, "mismatch must differ pixel to pixel");
    }

    #[test]
    fn same_seed_same_die() {
        let a = DnaChip::new(DnaChipConfig::default()).unwrap();
        let b = DnaChip::new(DnaChipConfig::default()).unwrap();
        for addr in a.geometry().iter() {
            assert_eq!(
                a.pixel(addr).unwrap().variation(),
                b.pixel(addr).unwrap().variation()
            );
        }
    }

    #[test]
    fn electrode_voltage_tracks_dac_code() {
        let c = chip();
        let v0 = c.electrode_voltage(0);
        let v128 = c.electrode_voltage(128);
        let v255 = c.electrode_voltage(255);
        assert!(v0 < v128 && v128 < v255);
        assert!((v255.value() - 2.5).abs() < 0.05, "full scale = {v255}");
    }

    #[test]
    fn spotting_and_probe_lookup() {
        let mut c = chip();
        let p = probe_set(1, 1).remove(0);
        let addr = PixelAddress::new(2, 3);
        assert!(c.probe_at(addr).unwrap().is_none());
        c.spot(addr, p.clone()).unwrap();
        assert_eq!(c.probe_at(addr).unwrap(), Some(&p));
        assert!(c.spot(PixelAddress::new(99, 0), p).is_err());
    }

    #[test]
    fn assay_discriminates_match_from_mismatch_sites() {
        let mut c = chip();
        let probes = probe_set(128, 2);
        c.spot_all(&probes);
        c.auto_calibrate();

        // The sample contains the perfect complement of probe 0 only.
        let sample =
            SampleMix::new().with_target(probes[0].reverse_complement(), Molar::from_nano(100.0));
        let readout = c.run_assay(&sample);

        let match_i = readout.estimated_currents[0];
        // All other sites are mismatches: their median current is the floor.
        let mut others: Vec<f64> = readout.estimated_currents[1..]
            .iter()
            .map(|a| a.value())
            .collect();
        others.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_other = others[others.len() / 2];
        assert!(
            match_i.value() > 100.0 * median_other.max(1e-15),
            "match {match_i} vs median mismatch {median_other}"
        );
        assert!(match_i.value() > 1e-9, "match current should be nA-scale");
    }

    #[test]
    fn bare_sites_read_background_only() {
        let mut c = chip();
        c.auto_calibrate();
        let sample = SampleMix::new();
        let readout = c.run_assay(&sample);
        for i in &readout.true_currents {
            assert!(i.value() < 10e-12, "bare site current = {i}");
        }
    }

    #[test]
    fn serial_readout_round_trips() {
        let mut c = chip();
        let probes = probe_set(128, 3);
        c.spot_all(&probes);
        let sample =
            SampleMix::new().with_target(probes[5].reverse_complement(), Molar::from_nano(50.0));
        let readout = c.run_assay(&sample);
        let bits = c.serial_readout(&readout);
        let decoded = decode_frames(&bits).unwrap();
        assert_eq!(decoded.len(), 128);
        for (r, (addr, &count)) in decoded
            .iter()
            .zip(c.geometry().iter().zip(readout.counts.iter()))
        {
            assert_eq!(r.address, addr);
            assert_eq!(r.count, count.min(0xFF_FFFF));
        }
    }

    #[test]
    fn measure_currents_spans_five_decades() {
        let mut c = chip();
        c.auto_calibrate();
        let n = c.geometry().len();
        // Pixel k gets a current log-spaced over 1 pA … 100 nA.
        let currents: Vec<Ampere> = (0..n)
            .map(|k| {
                let f = k as f64 / (n - 1) as f64;
                Ampere::new(1e-12 * 10f64.powf(5.0 * f))
            })
            .collect();
        let counts = c.measure_currents(&currents).unwrap();
        let estimates = c.estimate_currents(&counts).unwrap();
        for (i, (est, truth)) in estimates.iter().zip(currents.iter()).enumerate() {
            let rel = (est.value() - truth.value()).abs() / truth.value();
            // Bottom decade is shot/quantization limited; be looser there.
            let tol = if truth.value() < 10e-12 { 0.25 } else { 0.05 };
            assert!(rel < tol, "pixel {i}: {truth} → {est} (rel {rel})");
        }
    }

    #[test]
    fn assay_readout_address_accessor() {
        let mut c = chip();
        let readout = c.run_assay(&SampleMix::new());
        assert!(readout.estimate_at(PixelAddress::new(0, 0)).is_ok());
        assert!(readout.estimate_at(PixelAddress::new(8, 0)).is_err());
    }

    #[test]
    fn kinetic_monitoring_shows_association() {
        let mut c = chip();
        let probes = probe_set(128, 21);
        c.spot_all(&probes);
        c.auto_calibrate();
        let sample =
            SampleMix::new().with_target(probes[0].reverse_complement(), Molar::from_nano(10.0));
        let times: Vec<Seconds> = [0.0, 60.0, 180.0, 600.0, 1800.0, 3600.0]
            .iter()
            .map(|s| Seconds::new(*s))
            .collect();
        let kinetics = c.monitor_hybridization(&sample, &times);

        // Site 0 associates monotonically (up to counting noise) and
        // saturates.
        let series = kinetics.site_series(0);
        assert_eq!(series.len(), 6);
        let first = series[0].1.value();
        let last = series[5].1.value();
        assert!(
            last > 100.0 * first.max(1e-15),
            "first {first}, last {last}"
        );
        let mid = series[3].1.value();
        assert!(mid > 0.3 * last, "association should be well underway");

        // A non-target site stays at background throughout.
        let other = kinetics.site_series(64);
        assert!(other.iter().all(|(_, i)| i.value() < 10e-12));
    }

    #[test]
    fn higher_concentration_associates_faster() {
        let probes = probe_set(128, 22);
        let times: Vec<Seconds> = (0..30).map(|k| Seconds::new(k as f64 * 120.0)).collect();
        let t_half = |c_nm: f64| -> f64 {
            let mut chip = chip();
            chip.spot_all(&probes);
            chip.auto_calibrate();
            let sample = SampleMix::new()
                .with_target(probes[0].reverse_complement(), Molar::from_nano(c_nm));
            let kinetics = chip.monitor_hybridization(&sample, &times);
            kinetics
                .time_to_fraction(0, 0.5)
                .expect("association completes")
                .value()
        };
        let fast = t_half(100.0);
        let slow = t_half(1.0);
        assert!(slow > 2.0 * fast, "t½(1 nM) = {slow}, t½(100 nM) = {fast}");
    }

    #[test]
    fn measurement_length_mismatch_is_an_error() {
        let mut c = chip();
        assert!(matches!(
            c.measure_currents(&[Ampere::from_nano(1.0); 5]),
            Err(ChipError::LengthMismatch {
                expected: 128,
                got: 5
            })
        ));
        assert!(matches!(
            c.estimate_currents(&[1000; 200]),
            Err(ChipError::LengthMismatch {
                expected: 128,
                got: 200
            })
        ));
    }

    #[test]
    fn fault_map_geometry_is_checked() {
        use bsa_faults::InjectionPlan;
        let mut c = chip();
        let wrong = InjectionPlan::new(1).compile(128, 128);
        assert!(matches!(
            c.inject_faults(&wrong),
            Err(ChipError::FaultGeometryMismatch { .. })
        ));
        let right = InjectionPlan::new(1).compile(8, 16);
        assert!(c.inject_faults(&right).is_ok());
    }

    #[test]
    fn calibration_masks_injected_dead_pixels() {
        use crate::health::{DegradationMode, PixelHealth};
        use bsa_faults::{FaultKind, InjectionPlan};
        let mut c = chip();
        let faults = InjectionPlan::new(5)
            .at(2, 3, FaultKind::DeadPixel)
            .at(4, 9, FaultKind::ComparatorStuck { high: true })
            .compile(8, 16);
        c.inject_faults(&faults).unwrap();
        c.auto_calibrate();
        let h = c.health();
        assert_eq!(
            h.state_at(PixelAddress::new(2, 3)).unwrap(),
            PixelHealth::Dead
        );
        assert_eq!(
            h.state_at(PixelAddress::new(4, 9)).unwrap(),
            PixelHealth::Dead
        );
        assert_eq!(h.dead_indices().len(), 2);
        let report = c.yield_report();
        assert_eq!(report.dead, 2);
        assert_eq!(report.degradation, DegradationMode::Degraded);
    }

    #[test]
    fn escalation_recovers_drifted_pixel_as_out_of_family() {
        use crate::health::PixelHealth;
        use bsa_faults::{FaultKind, InjectionPlan};
        let mut c = chip();
        let faults = InjectionPlan::new(6)
            .at(
                1,
                1,
                FaultKind::ComparatorDrift {
                    offset: Volt::from_milli(400.0),
                },
            )
            .compile(8, 16);
        c.inject_faults(&faults).unwrap();
        c.auto_calibrate();
        assert_eq!(
            c.health().state_at(PixelAddress::new(1, 1)).unwrap(),
            PixelHealth::OutOfFamily,
            "escalated calibration should keep the drifted pixel usable"
        );
    }

    #[test]
    fn robust_readout_is_transparent_on_a_clean_link() {
        let mut c = chip();
        let readout = c.run_assay(&SampleMix::new());
        let robust = c.serial_readout_robust(&readout, 3);
        assert!(robust.is_complete());
        assert_eq!(robust.stats.clean_words, 128);
        assert_eq!(robust.stats.rereads, 0);
        let readings = robust.into_readings().unwrap();
        assert_eq!(readings, readout.to_readings());
    }

    #[test]
    fn robust_readout_rereads_through_bit_errors() {
        use bsa_faults::InjectionPlan;
        let mut c = chip();
        // ~5 % of words hit per pass: p_word = 1 − (1−1e-3)^56 ≈ 0.054.
        let faults = InjectionPlan::new(7).serial_bit_errors(1e-3).compile(8, 16);
        c.inject_faults(&faults).unwrap();
        let readout = c.run_assay(&SampleMix::new());
        let robust = c.serial_readout_robust(&readout, 8);
        assert!(robust.is_complete(), "stats: {:?}", robust.stats);
        assert!(
            robust.stats.recovered_words > 0,
            "stats: {:?}",
            robust.stats
        );
        assert!(robust.stats.rereads >= 1);
        assert_eq!(robust.into_readings().unwrap(), readout.to_readings());
        assert_eq!(c.link_stats().unrecovered_words, 0);
    }

    #[test]
    fn hopeless_link_reports_unrecoverable_words() {
        use crate::health::DegradationMode;
        use bsa_faults::InjectionPlan;
        let mut c = chip();
        let faults = InjectionPlan::new(8).serial_bit_errors(0.4).compile(8, 16);
        c.inject_faults(&faults).unwrap();
        let readout = c.run_assay(&SampleMix::new());
        let robust = c.serial_readout_robust(&readout, 2);
        assert!(!robust.is_complete());
        assert!(robust.stats.unrecovered_words > 64);
        assert!(matches!(
            robust.into_readings(),
            Err(ChipError::SerialUnrecoverable { .. })
        ));
        assert_eq!(c.yield_report().degradation, DegradationMode::Unusable);
    }

    #[test]
    fn estimated_matches_true_current_after_calibration() {
        let mut c = chip();
        let probes = probe_set(128, 4);
        c.spot_all(&probes);
        c.auto_calibrate();
        let sample =
            SampleMix::new().with_target(probes[10].reverse_complement(), Molar::from_nano(100.0));
        let readout = c.run_assay(&sample);
        let est = readout.estimated_currents[10].value();
        let truth = readout.true_currents[10].value();
        assert!(
            (est - truth).abs() / truth < 0.05,
            "est {est}, true {truth}"
        );
    }
}
