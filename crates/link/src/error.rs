//! Typed decode failures. Every way a frame or payload can be malformed
//! maps to a [`ProtocolError`] variant — the decoder has no panicking
//! paths.

use std::fmt;
use std::io;

/// Why a frame or message failed to decode.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The first two bytes were not the frame magic.
    BadMagic {
        /// The bytes actually seen.
        got: [u8; 2],
    },
    /// The frame declared a protocol version this build does not speak.
    UnsupportedVersion {
        /// The version byte seen on the wire.
        got: u8,
    },
    /// The declared payload length exceeds [`crate::MAX_PAYLOAD`].
    FrameTooLarge {
        /// Declared payload length in bytes.
        len: usize,
    },
    /// The frame checksum did not match the received bytes.
    BadCrc {
        /// Checksum computed over the received header + payload.
        expected: u8,
        /// Checksum byte carried by the frame.
        got: u8,
    },
    /// The buffer ended before the structure it claimed to hold.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Bytes were left over after a complete structure was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
    /// A tag byte did not name any known variant.
    UnknownTag {
        /// Which tagged union was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A field held a value outside its domain (e.g. a bool byte that is
    /// neither 0 nor 1, or a count larger than the remaining payload).
    InvalidValue {
        /// Which field was being decoded.
        what: &'static str,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// The underlying transport failed while reading or writing a frame.
    Io(io::Error),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { got: [a, b] } => {
                write!(f, "bad frame magic {a:#04x} {b:#04x}")
            }
            Self::UnsupportedVersion { got } => {
                write!(f, "unsupported protocol version {got}")
            }
            Self::FrameTooLarge { len } => {
                write!(f, "declared payload of {len} bytes exceeds the frame limit")
            }
            Self::BadCrc { expected, got } => {
                write!(
                    f,
                    "frame CRC mismatch: computed {expected:#04x}, frame carried {got:#04x}"
                )
            }
            Self::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, had {available}")
            }
            Self::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete message")
            }
            Self::UnknownTag { what, tag } => {
                write!(f, "unknown {what} tag {tag:#04x}")
            }
            Self::InvalidValue { what } => write!(f, "invalid value for {what}"),
            Self::BadUtf8 => write!(f, "length-prefixed string is not valid UTF-8"),
            Self::Io(err) => write!(f, "transport error: {err}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}
