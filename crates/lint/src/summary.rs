//! Function summaries: interprocedural interval contracts (DESIGN.md §16).
//!
//! PR 8's interval prover is intraprocedural — a bound established inside
//! one function is invisible to its callers. This module lifts it one
//! level: each function gets an optional **return contract** (how its
//! result relates to its parameters) and an optional **index
//! requirement** (a parameter used as an unguarded index into another
//! parameter). Contracts are derived bottom-up over the call graph with a
//! depth cap; recursion cycles are cut conservatively (no contract).
//!
//! Consumption happens in two places:
//!
//! * `flow::collect_facts` instantiates a callee's return contract with
//!   the call's arguments (`let k = clamp(i, n);` with `clamp: ret < n`
//!   yields `k < n` for the caller) — pure proof pressure relief, never a
//!   new finding.
//! * [`summary_pass`] flags **`flow.summary`** where a call passes a
//!   constant index into a function that unconditionally indexes one of
//!   its parameters with it, and the caller's facts prove the indexed
//!   sequence is too short — a definite cross-function out-of-bounds.
//!
//! Everything unresolvable (ambiguous bare names, `self`-form mismatch,
//! any `return` inside a body, patterns the derivation does not model)
//! drops the contract — the summary layer only ever strengthens proofs,
//! so a missed contract is conservative, never unsound.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::flow::{
    call_arg_range, collect_facts, const_expr, last_segment, len_minus_expr, matching,
    path_ending_at, path_starting_at, prove_index, statement_end, tok_ident, tok_int, tok_punct,
    Fact, Proof,
};
use crate::lexer::Token;
use crate::parser::{FnItem, ParsedFile};
use crate::rules::{index_site, violation, Violation};
use crate::workspace::SourceFile;

/// How a function's return value relates to its arguments. Parameter
/// indices are argument positions — a `self` receiver is not counted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetContract {
    /// `ret < args[k]` (a value-bound: `i % n`, or a tail call into such).
    LtParam(usize),
    /// `ret < args[k].len()`.
    LtLenOfParam(usize),
    /// `ret <= c` (a trailing `.min(c)` clamp).
    LeConst(u64),
    /// The returned `Vec`'s every element is `< args[k]` (built as
    /// `(0..n).collect()` and only permuted/shrunk afterwards).
    ElemsLtParam(usize),
}

/// A parameter that unconditionally indexes another parameter:
/// `fn f(xs: &[T], i: usize) { .. xs[i] .. }` with no guard the
/// intraprocedural prover recognises.
#[derive(Debug, Clone)]
pub struct IndexRequirement {
    /// Argument position of the index value.
    pub index_param: usize,
    /// Argument position of the indexed sequence.
    pub slice_param: usize,
    /// Parameter names, for diagnostics.
    pub index_name: String,
    pub slice_name: String,
}

/// One function's derived summary plus the call-form it resolves under.
#[derive(Debug, Clone, Default)]
struct FnSummary {
    contract: Option<RetContract>,
    requires: Option<IndexRequirement>,
    /// Derived from a method (`self` receiver): call sites must use the
    /// `recv.name(..)` form for argument positions to line up.
    has_self: bool,
}

/// Workspace-wide function summaries, keyed by bare function name.
/// Only functions whose bare name is unique across the workspace are
/// published — an ambiguous name could bind the wrong contract.
#[derive(Debug, Clone, Default)]
pub struct Summaries {
    by_name: BTreeMap<String, FnSummary>,
}

impl Summaries {
    /// Resolves a call path (`helper`, `plan::helper`, `self.helper`) to
    /// a published summary, enforcing the `self`-form rule: method
    /// summaries only bind to `recv.name(..)` call syntax (where the
    /// receiver is not an argument), free/associated functions only to
    /// non-method syntax.
    fn resolve(&self, call_path: &str) -> Option<&FnSummary> {
        let s = self.by_name.get(last_segment(call_path))?;
        let method_form = call_path.contains('.');
        (s.has_self == method_form).then_some(s)
    }

    /// Return contract for a call path, if published.
    pub fn ret_contract(&self, call_path: &str) -> Option<&RetContract> {
        self.resolve(call_path)?.contract.as_ref()
    }

    /// `Some(k)` when the callee promises every yielded element `< args[k]`.
    pub(crate) fn elems_lt_param(&self, call_path: &str) -> Option<usize> {
        match self.ret_contract(call_path)? {
            RetContract::ElemsLtParam(k) => Some(*k),
            _ => None,
        }
    }

    fn requirement(&self, call_path: &str) -> Option<&IndexRequirement> {
        self.resolve(call_path)?.requires.as_ref()
    }

    /// Number of published summaries carrying a contract (report metric).
    pub fn contract_count(&self) -> usize {
        self.by_name
            .values()
            .filter(|s| s.contract.is_some())
            .count()
    }
}

/// Vec methods that permute or shrink but never introduce new element
/// values — the whitelist under which `(0..n).collect()` keeps its
/// "every element < n" property.
const ELEM_PRESERVING: &[&str] = &[
    "swap",
    "truncate",
    "pop",
    "remove",
    "retain",
    "reverse",
    "rotate_left",
    "rotate_right",
    "dedup",
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_unstable_by",
    "shuffle",
];

/// Maximum tail-call substitution depth before a chain is cut.
const MAX_DEPTH: usize = 32;

/// Derives summaries for every uniquely-named function in the workspace,
/// bottom-up over tail calls.
pub fn compute_summaries(sources: &[SourceFile], parsed: &[ParsedFile]) -> Summaries {
    // Index every function by bare name; ambiguous names are dropped.
    let mut by_name: BTreeMap<String, Option<(usize, usize)>> = BTreeMap::new();
    for (fi, pf) in parsed.iter().enumerate() {
        for (gi, f) in pf.fns.iter().enumerate() {
            by_name
                .entry(last_segment(&f.name).to_string())
                .and_modify(|e| *e = None)
                .or_insert(Some((fi, gi)));
        }
    }
    let unique: BTreeMap<String, (usize, usize)> = by_name
        .into_iter()
        .filter_map(|(k, v)| v.map(|v| (k, v)))
        .collect();

    let mut out = Summaries::default();
    for (name, (fi, gi)) in &unique {
        let (Some(sf), Some(pf)) = (sources.get(*fi), parsed.get(*fi)) else {
            continue;
        };
        let Some(f) = pf.fns.get(*gi) else { continue };
        let tokens = &sf.tokens;
        let (params, has_self) = param_names(tokens, f);
        let contract = derive_contract(sources, parsed, &unique, *fi, *gi, 0);
        let requires = derive_requirement(tokens, f, &params);
        if contract.is_some() || requires.is_some() {
            out.by_name.insert(
                name.clone(),
                FnSummary {
                    contract,
                    requires,
                    has_self,
                },
            );
        }
    }
    out
}

/// Argument-position parameter names (a `self` receiver is dropped but
/// remembered). Unnameable patterns keep their position as `""`.
pub(crate) fn param_names(tokens: &[Token], f: &FnItem) -> (Vec<String>, bool) {
    let mut names = Vec::new();
    let mut has_self = false;
    // First `(` at angle-bracket depth 0 inside the signature.
    let mut angle = 0i64;
    let mut open = None;
    for j in f.sig.clone() {
        match tokens.get(j) {
            Some(t) if t.is_punct('<') => angle += 1,
            Some(t) if t.is_punct('>') => angle -= 1,
            Some(t) if t.is_punct('(') && angle == 0 => {
                open = Some(j);
                break;
            }
            _ => {}
        }
    }
    let Some(open) = open else {
        return (names, false);
    };
    let Some(close) = matching(tokens, open) else {
        return (names, false);
    };
    let mut start = open + 1;
    let mut depth = 0i64;
    let mut j = open + 1;
    while j <= close {
        let split = j == close
            || match tokens.get(j) {
                Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') => {
                    depth += 1;
                    false
                }
                Some(t) if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') => {
                    depth -= 1;
                    false
                }
                Some(t) => t.is_punct(',') && depth == 0,
                None => false,
            };
        if split {
            let part = start..j;
            if !part.is_empty() {
                let mut p = part.start;
                while tok_punct(tokens, p, '&')
                    || tok_ident(tokens, p) == Some("mut")
                    || matches!(
                        tokens.get(p).map(|t| &t.kind),
                        Some(crate::lexer::TokenKind::Lifetime(_))
                    )
                {
                    p += 1;
                }
                if tok_ident(tokens, p) == Some("self") {
                    has_self = true;
                } else if let Some(name) = tok_ident(tokens, p) {
                    if tok_punct(tokens, p + 1, ':') {
                        names.push(name.to_string());
                    } else {
                        names.push(String::new());
                    }
                } else {
                    names.push(String::new());
                }
            }
            start = j + 1;
        }
        j += 1;
    }
    (names, has_self)
}

/// Position of a bare parameter name in the argument-position list.
fn param_index(params: &[String], name: &str) -> Option<usize> {
    params.iter().position(|p| !p.is_empty() && p == name)
}

/// Derives the return contract for one function (memo-free DFS with a
/// depth cap — the cap bounds recursion and cuts cycles conservatively).
fn derive_contract(
    sources: &[SourceFile],
    parsed: &[ParsedFile],
    unique: &BTreeMap<String, (usize, usize)>,
    fi: usize,
    gi: usize,
    depth: usize,
) -> Option<RetContract> {
    if depth > MAX_DEPTH {
        return None;
    }
    let (sf, pf) = (sources.get(fi)?, parsed.get(fi)?);
    let f = pf.fns.get(gi)?;
    let tokens = &sf.tokens;
    let (params, _) = param_names(tokens, f);
    let inner = f.body.start + 1..f.body.end.saturating_sub(1);
    if inner.is_empty() {
        return None;
    }
    // Any explicit `return` makes the tail expression non-exhaustive.
    for j in inner.clone() {
        if tok_ident(tokens, j) == Some("return") {
            return None;
        }
    }
    // `(0..P).collect()` vector construction, only permuted afterwards.
    if let Some(k) = elems_contract(tokens, &inner, &params) {
        return Some(RetContract::ElemsLtParam(k));
    }
    // Tail expression: after the last depth-0 `;`.
    let mut d = 0i64;
    let mut last_semi = None;
    for j in inner.clone() {
        match tokens.get(j) {
            Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => d += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => d -= 1,
            Some(t) if t.is_punct(';') && d == 0 => last_semi = Some(j),
            _ => {}
        }
    }
    let tail = match last_semi {
        Some(s) => s + 1..inner.end,
        None => inner.clone(),
    };
    if tail.is_empty() {
        return None;
    }

    // `E % P` / `E % P.len()` — the remainder is strictly below the
    // divisor (or panics at the `%`, before any return).
    if let Some(m) = last_percent(tokens, &tail) {
        let rhs = m + 1..tail.end;
        if let Some(name) = tok_ident(tokens, rhs.start) {
            if rhs.start + 1 == rhs.end {
                if let Some(k) = param_index(&params, name) {
                    return Some(RetContract::LtParam(k));
                }
            }
        }
        if let Some((p, 0)) = len_minus_expr(tokens, &rhs) {
            if let Some(k) = param_index(&params, &p) {
                return Some(RetContract::LtLenOfParam(k));
            }
        }
        return None;
    }
    // Trailing `.min(c)` constant clamp.
    if tok_punct(tokens, tail.end.wrapping_sub(1), ')') {
        let mut k = tail.start;
        while k + 3 < tail.end {
            if tok_punct(tokens, k, '.') && tok_ident(tokens, k + 1) == Some("min") {
                if let Some(close) = matching(tokens, k + 2) {
                    if close + 1 == tail.end {
                        if let Some(c) = const_expr(tokens, &(k + 3..close)) {
                            return Some(RetContract::LeConst(c));
                        }
                    }
                }
            }
            k += 1;
        }
    }
    // Tail call `g(args)` — substitute `g`'s contract through the
    // argument mapping.
    let (path, after) = path_starting_at(tokens, tail.start)?;
    if !tok_punct(tokens, after, '(') || matching(tokens, after).map(|c| c + 1) != Some(tail.end) {
        return None;
    }
    if path.contains('.') {
        return None; // method tail calls: receiver/arg alignment unknown
    }
    let (cfi, cgi) = *unique.get(last_segment(&path))?;
    let close = matching(tokens, after)?;
    let sub = derive_contract(sources, parsed, unique, cfi, cgi, depth + 1)?;
    let map_arg = |j: usize| -> Option<usize> {
        let r = call_arg_range(tokens, after + 1, close, j)?;
        let name = tok_ident(tokens, r.start)?;
        (r.start + 1 == r.end).then(|| param_index(&params, name))?
    };
    match sub {
        RetContract::LtParam(j) => map_arg(j).map(RetContract::LtParam),
        RetContract::LtLenOfParam(j) => map_arg(j).map(RetContract::LtLenOfParam),
        RetContract::LeConst(c) => Some(RetContract::LeConst(c)),
        RetContract::ElemsLtParam(j) => map_arg(j).map(RetContract::ElemsLtParam),
    }
}

/// Matches a body of the shape `let [mut] X .. = (0..P).collect..(); ..`
/// where every later use of `X` is an element-preserving method call and
/// the tail expression is `X` itself. Returns `P`'s parameter position.
fn elems_contract(tokens: &[Token], inner: &Range<usize>, params: &[String]) -> Option<usize> {
    let mut at = inner.start;
    let (x, k, stmt_end) = loop {
        if at >= inner.end {
            return None;
        }
        if tok_ident(tokens, at) == Some("let") {
            let mut j = at + 1;
            if tok_ident(tokens, j) == Some("mut") {
                j += 1;
            }
            if let Some(x) = tok_ident(tokens, j) {
                // Skip an optional `: Type` annotation to the `=`.
                let mut eq = j + 1;
                let mut d = 0i64;
                let mut found = false;
                while eq < inner.end {
                    match tokens.get(eq) {
                        Some(t) if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') => d += 1,
                        Some(t) if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') => d -= 1,
                        Some(t) if t.is_punct('=') && d == 0 => {
                            found = true;
                            break;
                        }
                        Some(t) if t.is_punct(';') && d == 0 => break,
                        _ => {}
                    }
                    eq += 1;
                }
                if found {
                    let r = eq + 1;
                    if let Some(k) = collect_of_range(tokens, r, params) {
                        let end = statement_end(tokens, r, inner)?;
                        if collect_call_end(tokens, r) == Some(end) {
                            break (x.to_string(), k, end);
                        }
                    }
                }
            }
        }
        at += 1;
    };
    // Validate every later use of `x`.
    let mut saw_tail = false;
    let mut j = stmt_end + 1;
    while j < inner.end {
        if tok_ident(tokens, j) == Some(x.as_str())
            && !tok_punct(tokens, j.wrapping_sub(1), '.')
            && !tok_punct(tokens, j.wrapping_sub(1), ':')
        {
            if tok_punct(tokens, j + 1, '.')
                && matches!(tok_ident(tokens, j + 2), Some(m) if ELEM_PRESERVING.contains(&m))
                && tok_punct(tokens, j + 3, '(')
            {
                // fine: permutation/shrink only
            } else if j + 1 == inner.end {
                saw_tail = true;
            } else {
                return None;
            }
        }
        j += 1;
    }
    saw_tail.then_some(k)
}

/// Matches `( 0 . . P )` at `r` where `P` is a bare parameter; returns
/// the parameter position.
fn collect_of_range(tokens: &[Token], r: usize, params: &[String]) -> Option<usize> {
    if !tok_punct(tokens, r, '(')
        || tok_int(tokens, r + 1) != Some(0)
        || !tok_punct(tokens, r + 2, '.')
        || !tok_punct(tokens, r + 3, '.')
        || !tok_punct(tokens, r + 5, ')')
    {
        return None;
    }
    param_index(params, tok_ident(tokens, r + 4)?)
}

/// For an RHS starting with `(0..P)` at `r`, the position one past a
/// `.collect()` / `.collect::<..>()` call ending the statement.
fn collect_call_end(tokens: &[Token], r: usize) -> Option<usize> {
    let mut k = r + 6; // past `( 0 . . P )`
    if !tok_punct(tokens, k, '.') || tok_ident(tokens, k + 1) != Some("collect") {
        return None;
    }
    k += 2;
    if tok_punct(tokens, k, ':') && tok_punct(tokens, k + 1, ':') && tok_punct(tokens, k + 2, '<') {
        let mut d = 0i64;
        let mut j = k + 2;
        loop {
            match tokens.get(j) {
                Some(t) if t.is_punct('<') => d += 1,
                Some(t) if t.is_punct('>') => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                None => return None,
                _ => {}
            }
            j += 1;
        }
        k = j + 1;
    }
    (tok_punct(tokens, k, '(') && tok_punct(tokens, k + 1, ')')).then_some(k + 2)
}

/// An unguarded `param_s[param_i]` site anywhere in the body — the
/// requirement callers must discharge.
fn derive_requirement(tokens: &[Token], f: &FnItem, params: &[String]) -> Option<IndexRequirement> {
    let facts = collect_facts(tokens, f, &Summaries::default());
    let mut i = f.body.start;
    while i < f.body.end {
        if index_site(tokens, i) {
            if let (Some(close), Some(seq)) = (matching(tokens, i), path_ending_at(tokens, i - 1)) {
                let expr = i + 1..close;
                if let (Some(sp), Some(ix)) = (
                    param_index(params, &seq),
                    tok_ident(tokens, expr.start)
                        .filter(|_| expr.start + 1 == expr.end)
                        .and_then(|n| param_index(params, n)),
                ) {
                    if matches!(prove_index(tokens, &expr, &seq, &facts, i), Proof::Unknown) {
                        return Some(IndexRequirement {
                            index_param: ix,
                            slice_param: sp,
                            index_name: params.get(ix).cloned().unwrap_or_default(),
                            slice_name: params.get(sp).cloned().unwrap_or_default(),
                        });
                    }
                }
                i = close;
            }
        }
        i += 1;
    }
    None
}

fn last_percent(tokens: &[Token], range: &Range<usize>) -> Option<usize> {
    let mut depth = 0i64;
    let mut found = None;
    for j in range.start..range.end {
        match tokens.get(j) {
            Some(t) if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => depth += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => depth -= 1,
            Some(t) if depth == 0 && t.is_punct('%') && j > range.start => found = Some(j),
            _ => {}
        }
    }
    found
}

/// Flags `flow.summary`: a call passing a constant index into a function
/// whose summary says that argument unconditionally indexes another
/// argument — when the caller's own facts prove the passed sequence is
/// too short, the out-of-bounds is definite across the function boundary.
pub fn summary_pass(
    sources: &[SourceFile],
    parsed: &[ParsedFile],
    summaries: &Summaries,
    out: &mut Vec<Violation>,
) {
    for (sf, pf) in sources.iter().zip(parsed) {
        for f in &pf.fns {
            let mut facts = None;
            let mut i = f.body.start;
            while i < f.body.end {
                if tok_punct(&sf.tokens, i, '(') {
                    if let Some(path) = path_ending_at(&sf.tokens, i.wrapping_sub(1)) {
                        if let Some(req) = summaries.requirement(&path) {
                            check_call(sf, f, summaries, &mut facts, i, &path, req, out);
                        }
                    }
                }
                i += 1;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_call(
    sf: &SourceFile,
    f: &FnItem,
    summaries: &Summaries,
    facts: &mut Option<Vec<crate::flow::ScopedFact>>,
    open: usize,
    path: &str,
    req: &IndexRequirement,
    out: &mut Vec<Violation>,
) {
    let tokens = &sf.tokens;
    let Some(close) = matching(tokens, open) else {
        return;
    };
    let Some(ix_range) = call_arg_range(tokens, open + 1, close, req.index_param) else {
        return;
    };
    let Some(c) = const_expr(tokens, &ix_range) else {
        return;
    };
    let Some(sl_range) = call_arg_range(tokens, open + 1, close, req.slice_param) else {
        return;
    };
    let mut s = sl_range.start;
    if tok_punct(tokens, s, '&') {
        s += 1;
        if tok_ident(tokens, s) == Some("mut") {
            s += 1;
        }
    }
    let Some((slice_path, after)) = path_starting_at(tokens, s) else {
        return;
    };
    if after != sl_range.end {
        return;
    }
    let facts = facts.get_or_insert_with(|| collect_facts(tokens, f, summaries));
    let too_short = facts.iter().find_map(|a| {
        if !a.scope.contains(&open) {
            return None;
        }
        match &a.fact {
            Fact::ExactLen { seq, len } if *seq == slice_path && *len <= c => Some(*len),
            _ => None,
        }
    });
    if let Some(len) = too_short {
        let line = tokens.get(open).map(|t| t.line).unwrap_or(f.line);
        out.push(violation(
            &sf.path,
            line,
            "flow.summary",
            format!(
                "call passes index {c} to `{callee}`, whose `{ix}` parameter unconditionally \
                 indexes `{sl}` — but `{slice_path}` has exactly {len} element(s)",
                callee = last_segment(path),
                ix = req.index_name,
                sl = req.slice_name,
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn setup(src: &str) -> (Vec<SourceFile>, Vec<ParsedFile>, Summaries) {
        let sf = SourceFile {
            path: "test.rs".to_string(),
            tokens: lex(src),
        };
        let pf = parse_file("test.rs", &sf.tokens);
        let sources = vec![sf];
        let parsed = vec![pf];
        let summaries = compute_summaries(&sources, &parsed);
        (sources, parsed, summaries)
    }

    #[test]
    fn modulo_param_gives_lt_param() {
        let (_, _, s) = setup("fn wrap(i: usize, n: usize) -> usize { i % n }");
        assert_eq!(s.ret_contract("wrap"), Some(&RetContract::LtParam(1)));
    }

    #[test]
    fn modulo_len_gives_lt_len_of_param() {
        let (_, _, s) = setup("fn wrap(i: usize, xs: &[u8]) -> usize { i % xs.len() }");
        assert_eq!(s.ret_contract("wrap"), Some(&RetContract::LtLenOfParam(1)));
    }

    #[test]
    fn min_const_clamp_gives_le_const() {
        let (_, _, s) = setup("fn cap(i: usize) -> usize { (i * 2).min(64) }");
        assert_eq!(s.ret_contract("cap"), Some(&RetContract::LeConst(64)));
    }

    #[test]
    fn tail_call_substitutes_through() {
        let (_, _, s) = setup(
            "fn wrap(i: usize, n: usize) -> usize { i % n }\n\
             fn outer(a: usize, b: usize) -> usize { wrap(a, b) }",
        );
        assert_eq!(s.ret_contract("outer"), Some(&RetContract::LtParam(1)));
    }

    #[test]
    fn explicit_return_defeats_contract() {
        let (_, _, s) =
            setup("fn wrap(i: usize, n: usize) -> usize { if n == 0 { return 0; } i % n }");
        assert_eq!(s.ret_contract("wrap"), None);
    }

    #[test]
    fn recursion_is_cut() {
        let (_, _, s) = setup("fn spin(i: usize, n: usize) -> usize { spin(i, n) }");
        assert_eq!(s.ret_contract("spin"), None);
    }

    #[test]
    fn ambiguous_bare_name_is_dropped() {
        let (_, _, s) = setup(
            "fn wrap(i: usize, n: usize) -> usize { i % n }\n\
             mod other { fn wrap(i: usize, n: usize) -> usize { i % n } }",
        );
        assert_eq!(s.ret_contract("wrap"), None);
    }

    #[test]
    fn collect_permute_gives_elems_contract() {
        let (_, _, s) = setup(
            "fn choose(n: usize, k: usize) -> Vec<usize> { \
               let mut idx: Vec<usize> = (0..n).collect(); \
               idx.swap(0, 1); idx.truncate(k); idx }",
        );
        assert_eq!(
            s.ret_contract("choose"),
            Some(&RetContract::ElemsLtParam(0))
        );
    }

    #[test]
    fn push_defeats_elems_contract() {
        let (_, _, s) = setup(
            "fn choose(n: usize) -> Vec<usize> { \
               let mut idx: Vec<usize> = (0..n).collect(); \
               idx.push(n + 7); idx }",
        );
        assert_eq!(s.ret_contract("choose"), None);
    }

    #[test]
    fn unguarded_param_index_flagged_against_short_array() {
        let (sources, parsed, s) = setup(
            "fn pick(xs: &[u32], i: usize) -> u32 { xs[i] }\n\
             fn caller() -> u32 { let a = [0u32; 4]; pick(&a, 9) }",
        );
        let mut out = Vec::new();
        summary_pass(&sources, &parsed, &s, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "flow.summary");
    }

    #[test]
    fn in_bounds_constant_not_flagged() {
        let (sources, parsed, s) = setup(
            "fn pick(xs: &[u32], i: usize) -> u32 { xs[i] }\n\
             fn caller() -> u32 { let a = [0u32; 4]; pick(&a, 3) }",
        );
        let mut out = Vec::new();
        summary_pass(&sources, &parsed, &s, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn guarded_callee_has_no_requirement() {
        let (sources, parsed, s) = setup(
            "fn pick(xs: &[u32], i: usize) -> u32 { if i < xs.len() { xs[i] } else { 0 } }\n\
             fn caller() -> u32 { let a = [0u32; 4]; pick(&a, 9) }",
        );
        let mut out = Vec::new();
        summary_pass(&sources, &parsed, &s, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }
}
