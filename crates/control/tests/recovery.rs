//! Fault-injection recovery suite: seeded scenarios driven through a
//! live loopback station, asserting that the closed loop restores
//! effective yield to at least 90% of the pre-fault baseline within the
//! observation budget — and that two runs of the same seeded scenario
//! produce bit-identical action traces.

#![allow(clippy::unwrap_used)] // tests unwrap idiomatically

use bsa_control::scenario::{baseline_drift, channel_loss, dead_pixels, ScenarioReport};
use bsa_control::trace::TraceEvent;
use bsa_station::{Station, StationConfig, StationHandle};

fn start_station() -> StationHandle {
    Station::bind(StationConfig::default()).expect("bind loopback station")
}

const SEED: u64 = 0xC0_17_20_05;

fn assert_recovered(report: &ScenarioReport) {
    assert!(
        report.recovered,
        "{}: yield not restored within budget (trace: {})",
        report.name,
        report.trace.to_json()
    );
    // The acceptance bar: final yield within 90% of the pre-fault
    // baseline.
    assert!(
        u64::from(report.final_yield_permille) * 10 >= u64::from(report.pre_yield_permille) * 9,
        "{}: final yield {} vs baseline {}",
        report.name,
        report.final_yield_permille,
        report.pre_yield_permille
    );
    // The fault must actually have degraded the chip before recovery:
    // the first observation sits below the recovery target.
    let first_observed = report.trace.events.iter().find_map(|e| match e {
        TraceEvent::Observed { yield_permille, .. } => Some(*yield_permille),
        _ => None,
    });
    let first = first_observed.expect("trace records an observation");
    assert!(
        u64::from(first) * 10 < u64::from(report.pre_yield_permille) * 9,
        "{}: fault did not degrade yield (first observed {} vs baseline {})",
        report.name,
        first,
        report.pre_yield_permille
    );
}

fn executed_actions(report: &ScenarioReport) -> Vec<String> {
    report
        .trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Executed { action, ok, .. } => {
                assert!(*ok, "{}: action {action} failed", report.name);
                Some(action.clone())
            }
            _ => None,
        })
        .collect()
}

#[test]
fn dead_pixels_recover_by_masking() {
    let station = start_station();
    let report = dead_pixels(station.addr(), SEED).expect("scenario runs");
    assert_recovered(&report);
    let actions = executed_actions(&report);
    assert!(
        actions.iter().any(|a| a.starts_with("mask_pixels(")),
        "expected a mask action, got {actions:?}"
    );
    station.shutdown();
}

#[test]
fn channel_loss_recovers_by_reattach() {
    let station = start_station();
    let report = channel_loss(station.addr(), SEED).expect("scenario runs");
    assert_recovered(&report);
    let actions = executed_actions(&report);
    assert!(
        actions.iter().any(|a| a == "reattach"),
        "expected a reattach action, got {actions:?}"
    );
    // The first observation must have seen the lost channels.
    assert!(
        report.trace.events.iter().any(|e| matches!(
            e,
            TraceEvent::Observed { condition, .. } if condition == "channel_loss"
        )),
        "trace never classified channel loss: {}",
        report.trace.to_json()
    );
    station.shutdown();
}

#[test]
fn baseline_drift_recovers_by_recalibration() {
    let station = start_station();
    let report = baseline_drift(station.addr(), SEED).expect("scenario runs");
    assert_recovered(&report);
    let actions = executed_actions(&report);
    assert!(
        actions.iter().any(|a| a == "recalibrate"),
        "expected a recalibrate action, got {actions:?}"
    );
    assert!(
        !actions.iter().any(|a| a == "reattach"),
        "drift should be repaired in place, got {actions:?}"
    );
    station.shutdown();
}

/// Two runs of the same seeded scenario — fresh station, fresh
/// connection, fresh controller — replay bit-identically.
#[test]
fn seeded_scenarios_replay_bit_identically() {
    for scenario in [dead_pixels, channel_loss, baseline_drift] {
        let station_a = start_station();
        let run_a = scenario(station_a.addr(), SEED).expect("first run");
        station_a.shutdown();

        let station_b = start_station();
        let run_b = scenario(station_b.addr(), SEED).expect("second run");
        station_b.shutdown();

        assert_eq!(
            run_a.trace.to_json(),
            run_b.trace.to_json(),
            "{}: traces diverged",
            run_a.name
        );
        assert_eq!(run_a.recovered, run_b.recovered);
        assert_eq!(run_a.final_yield_permille, run_b.final_yield_permille);
    }
}

/// A different seed changes the scenario (placement, chip noise) but
/// recovery still holds — the controller is not tuned to one trace.
#[test]
fn recovery_holds_across_seeds() {
    for seed in [1u64, 0xDEAD_BEEF, 0x5EED_0006] {
        let station = start_station();
        let report = dead_pixels(station.addr(), seed).expect("scenario runs");
        assert_recovered(&report);
        station.shutdown();
    }
}
