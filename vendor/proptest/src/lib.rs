//! Offline vendored subset of the `proptest` API.
//!
//! Implements the slice of proptest this workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! range/tuple/`Just`/`prop_oneof!`/`prop::collection::vec` strategies and
//! `.prop_map`. Cases are generated from a deterministic per-test RNG; on
//! failure the offending inputs are reported. Unlike upstream there is no
//! shrinking — the failing case is printed as drawn.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `prop::` namespace mirroring upstream module paths.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::strategy::collection_vec as vec;
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Canonical strategy for a type's full value domain.
    pub fn any<T: crate::strategy::Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Asserts a condition inside a property test, failing the current case
/// (with its inputs reported) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case (it is redrawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strategy:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strategy,)+);
            $crate::test_runner::run_cases(
                stringify!($name),
                &config,
                &strategy,
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    (($config:expr);) => {};
}
