//! The `quantity!` macro generating unit newtypes.

/// Defines a unit newtype over `f64` with the full arithmetic and trait
/// surface shared by all quantities in this crate.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $symbol:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a raw value in base units.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in base units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Creates a quantity from a value given in units of 10⁻¹⁵.
            #[inline]
            pub fn from_femto(v: f64) -> Self {
                Self(v * 1e-15)
            }

            /// Creates a quantity from a value given in units of 10⁻¹².
            #[inline]
            pub fn from_pico(v: f64) -> Self {
                Self(v * 1e-12)
            }

            /// Creates a quantity from a value given in units of 10⁻⁹.
            #[inline]
            pub fn from_nano(v: f64) -> Self {
                Self(v * 1e-9)
            }

            /// Creates a quantity from a value given in units of 10⁻⁶.
            #[inline]
            pub fn from_micro(v: f64) -> Self {
                Self(v * 1e-6)
            }

            /// Creates a quantity from a value given in units of 10⁻³.
            #[inline]
            pub fn from_milli(v: f64) -> Self {
                Self(v * 1e-3)
            }

            /// Creates a quantity from a value given in units of 10³.
            #[inline]
            pub fn from_kilo(v: f64) -> Self {
                Self(v * 1e3)
            }

            /// Creates a quantity from a value given in units of 10⁶.
            #[inline]
            pub fn from_mega(v: f64) -> Self {
                Self(v * 1e6)
            }

            /// Raw value expressed in units of 10⁻¹⁵.
            #[inline]
            pub fn as_femto(self) -> f64 {
                self.0 * 1e15
            }

            /// Raw value expressed in units of 10⁻¹².
            #[inline]
            pub fn as_pico(self) -> f64 {
                self.0 * 1e12
            }

            /// Raw value expressed in units of 10⁻⁹.
            #[inline]
            pub fn as_nano(self) -> f64 {
                self.0 * 1e9
            }

            /// Raw value expressed in units of 10⁻⁶.
            #[inline]
            pub fn as_micro(self) -> f64 {
                self.0 * 1e6
            }

            /// Raw value expressed in units of 10⁻³.
            #[inline]
            pub fn as_milli(self) -> f64 {
                self.0 * 1e3
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the quantity to `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` if the underlying value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// `true` if the quantity equals zero exactly.
            #[inline]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns the value sign: -1.0, 0.0, or 1.0.
            #[inline]
            pub fn signum(self) -> f64 {
                if self.0 == 0.0 {
                    0.0
                } else {
                    self.0.signum()
                }
            }

            /// The unit symbol used by `Display`.
            pub const SYMBOL: &'static str = $symbol;
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                f.write_str(&$crate::fmt::format_eng(self.0, $symbol))
            }
        }

        impl ::std::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl ::std::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl ::std::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl ::std::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl ::std::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl ::std::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl ::std::ops::MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl ::std::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl ::std::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl ::std::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl ::std::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> ::std::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl ::std::str::FromStr for $name {
            type Err = $crate::parse::ParseQuantityError;
            fn from_str(s: &str) -> Result<Self, Self::Err> {
                $crate::parse::parse_eng(s, $symbol).map(Self)
            }
        }
    };
}

/// Defines `Lhs * Rhs = Out` and the commuted form.
macro_rules! cross_mul {
    ($lhs:ty, $rhs:ty, $out:ty) => {
        impl ::std::ops::Mul<$rhs> for $lhs {
            type Output = $out;
            #[inline]
            fn mul(self, rhs: $rhs) -> $out {
                <$out>::new(self.value() * rhs.value())
            }
        }

        impl ::std::ops::Mul<$lhs> for $rhs {
            type Output = $out;
            #[inline]
            fn mul(self, rhs: $lhs) -> $out {
                <$out>::new(self.value() * rhs.value())
            }
        }
    };
}

/// Defines `Num / Den = Out`.
macro_rules! cross_div {
    ($num:ty, $den:ty, $out:ty) => {
        impl ::std::ops::Div<$den> for $num {
            type Output = $out;
            #[inline]
            fn div(self, rhs: $den) -> $out {
                <$out>::new(self.value() / rhs.value())
            }
        }
    };
}

pub(crate) use {cross_div, cross_mul, quantity};
