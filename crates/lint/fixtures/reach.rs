//! Seeded call-graph panic-reachability violations (semantic lint fixture
//! — lexed and parsed, never compiled). Tilde-comment markers sit on the
//! public entry points whose panic sites are only visible transitively.

pub fn calibrated_offset(raw: &str) -> f64 { //~ reach.panic
    parse_offset(raw)
}

fn parse_offset(raw: &str) -> f64 {
    raw.parse().unwrap()
}

pub fn settled_bias(code: u16) -> f64 { //~ reach.panic
    bias_step(code)
}

fn bias_step(code: u16) -> f64 {
    bias_leaf(code)
}

fn bias_leaf(code: u16) -> f64 {
    table_entry(code).expect("code within table")
}

pub struct FrameDecoder;

impl FrameDecoder {
    pub fn first_sample(&self, frame: &[u8]) -> u8 { //~ reach.panic
        self.header_byte(frame)
    }

    fn header_byte(&self, frame: &[u8]) -> u8 {
        frame[0]
    }
}

/// A direct panic site is the lexical rules' territory: `reach.panic`
/// stays silent here (`panic.unwrap` owns this line, but this fixture
/// runs only the reachability pass).
pub fn directly_panicking(raw: &str) -> f64 {
    raw.parse().unwrap()
}

/// Clean chain: nothing to report on either fn.
pub fn safe_gain(x: f64) -> f64 {
    doubled(x)
}

fn doubled(x: f64) -> f64 {
    x * 2.0
}
