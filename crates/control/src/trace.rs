//! Recovery traces: the controller's decision log, replayable
//! bit-identically for the same seeded scenario.
//!
//! Traces carry no wall-clock timestamps — only logical tick numbers —
//! so two runs of the same scenario serialize to identical JSON. Yields
//! are recorded as integer permille to keep the encoding exact.

/// One entry in a recovery trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The classifier's verdict for a tick.
    Observed {
        /// Logical tick number (0-based).
        tick: u32,
        /// The classified chip condition, as a stable label.
        condition: String,
        /// Effective yield in permille (`0..=1000`).
        yield_permille: u32,
    },
    /// The policy picked an action this tick.
    Decided {
        /// Logical tick number.
        tick: u32,
        /// Stable label of the chosen action.
        action: String,
    },
    /// The controller executed an action through the link.
    Executed {
        /// Logical tick number.
        tick: u32,
        /// Stable label of the executed action.
        action: String,
        /// Whether the link call succeeded.
        ok: bool,
    },
    /// A deadline-bounded request timed out and was retried.
    Retried {
        /// Logical tick number.
        tick: u32,
        /// Retry attempt number (0-based).
        attempt: u32,
        /// Backoff delay before this retry, in milliseconds.
        delay_ms: u64,
    },
    /// Yield crossed back over the recovery target.
    Recovered {
        /// Logical tick number.
        tick: u32,
        /// Effective yield in permille at recovery.
        yield_permille: u32,
    },
}

/// An ordered decision log for one scenario run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryTrace {
    /// Scenario name the trace belongs to.
    pub scenario: String,
    /// Events in the order they happened.
    pub events: Vec<TraceEvent>,
}

impl RecoveryTrace {
    /// An empty trace for the named scenario.
    #[must_use]
    pub fn new(scenario: impl Into<String>) -> Self {
        Self {
            scenario: scenario.into(),
            events: Vec::new(),
        }
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Serializes the trace as deterministic JSON: no timestamps, no
    /// map iteration order, fields always in the same order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"scenario\":");
        push_json_string(&mut out, &self.scenario);
        out.push_str(",\"events\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_event(&mut out, event);
        }
        out.push_str("]}");
        out
    }
}

fn push_event(out: &mut String, event: &TraceEvent) {
    use std::fmt::Write as _;
    match event {
        TraceEvent::Observed {
            tick,
            condition,
            yield_permille,
        } => {
            out.push_str("{\"type\":\"observed\",\"tick\":");
            let _ = write!(out, "{tick}");
            out.push_str(",\"condition\":");
            push_json_string(out, condition);
            let _ = write!(out, ",\"yield_permille\":{yield_permille}}}");
        }
        TraceEvent::Decided { tick, action } => {
            out.push_str("{\"type\":\"decided\",\"tick\":");
            let _ = write!(out, "{tick}");
            out.push_str(",\"action\":");
            push_json_string(out, action);
            out.push('}');
        }
        TraceEvent::Executed { tick, action, ok } => {
            out.push_str("{\"type\":\"executed\",\"tick\":");
            let _ = write!(out, "{tick}");
            out.push_str(",\"action\":");
            push_json_string(out, action);
            let _ = write!(out, ",\"ok\":{ok}}}");
        }
        TraceEvent::Retried {
            tick,
            attempt,
            delay_ms,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"retried\",\"tick\":{tick},\"attempt\":{attempt},\"delay_ms\":{delay_ms}}}"
            );
        }
        TraceEvent::Recovered {
            tick,
            yield_permille,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"recovered\",\"tick\":{tick},\"yield_permille\":{yield_permille}}}"
            );
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn push_json_string(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Converts a `0..=1` yield fraction to integer permille, clamped.
#[must_use]
pub fn permille(fraction: f64) -> u32 {
    if !fraction.is_finite() || fraction <= 0.0 {
        return 0;
    }
    let scaled = (fraction * 1000.0).round();
    if scaled >= 1000.0 {
        1000
    } else {
        scaled as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_escaped() {
        let mut trace = RecoveryTrace::new("dead \"pixels\"");
        trace.push(TraceEvent::Observed {
            tick: 0,
            condition: "dead_pixels".into(),
            yield_permille: 879,
        });
        trace.push(TraceEvent::Decided {
            tick: 0,
            action: "mask_pixels(123)".into(),
        });
        trace.push(TraceEvent::Recovered {
            tick: 1,
            yield_permille: 1000,
        });
        let json = trace.to_json();
        assert_eq!(
            json,
            "{\"scenario\":\"dead \\\"pixels\\\"\",\"events\":[\
             {\"type\":\"observed\",\"tick\":0,\"condition\":\"dead_pixels\",\"yield_permille\":879},\
             {\"type\":\"decided\",\"tick\":0,\"action\":\"mask_pixels(123)\"},\
             {\"type\":\"recovered\",\"tick\":1,\"yield_permille\":1000}]}"
        );
        // Serialization is a pure function of the trace.
        assert_eq!(json, trace.to_json());
    }

    #[test]
    fn permille_clamps_and_rounds() {
        assert_eq!(permille(0.8794), 879);
        assert_eq!(permille(1.2), 1000);
        assert_eq!(permille(-0.5), 0);
        assert_eq!(permille(f64::NAN), 0);
    }
}
